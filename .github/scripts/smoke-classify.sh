#!/usr/bin/env bash
# Smoke-checks a running serve instance: classify one image, verify the
# metrics endpoint, then exercise graceful shutdown via the admin endpoint.
# Run under with-serve.sh, which owns the server lifecycle.
set -euo pipefail

ADDR=${1:-127.0.0.1:7979}

python3 - "$ADDR" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
image = [((i * 31) % 13) / 13.0 - 0.5 for i in range(3 * 32 * 32)]
body = json.dumps({"image": image}).encode()
req = urllib.request.Request(
    f"http://{addr}/v1/classify", data=body,
    headers={"Content-Type": "application/json"})
with urllib.request.urlopen(req, timeout=30) as resp:
    assert resp.status == 200, resp.status
    answer = json.load(resp)
assert isinstance(answer["class"], int), answer
assert len(answer["scores"]) == 10, answer
print("classify ok:", answer["class"])
EOF

# /metrics must be a parseable Prometheus exposition, not just non-empty:
# obs-report --check-prom exits nonzero on any malformed line.
METRICS_SCRAPE=$(mktemp)
trap 'rm -f "$METRICS_SCRAPE"' EXIT
curl -sf "http://$ADDR/metrics" > "$METRICS_SCRAPE"
grep -q serve_classify_ok "$METRICS_SCRAPE"
./target/release/obs-report --check-prom "$METRICS_SCRAPE"
curl -sf -X POST "http://$ADDR/admin/shutdown" > /dev/null
