#!/usr/bin/env bash
# Runs a command against a live `serve` instance and guarantees the
# background server is reaped no matter how the command exits.
#
# Usage: with-serve.sh <artifact> <host:port> <command...>
#
# Extra serve flags can be passed via $SERVE_FLAGS (word-split
# deliberately), e.g. SERVE_FLAGS="--drift-test-hooks" for the drift smoke.
#
# The EXIT trap fixes two bugs the old inline steps had: a failing middle
# step used to leak the background server (no trap), and an unconditional
# `kill -TERM $PID; wait $PID` could race a server that had already exited
# gracefully (kill of a reaped PID fails under `set -e`).
set -euo pipefail

if [ "$#" -lt 3 ]; then
  echo "usage: $0 <artifact> <host:port> <command...>" >&2
  exit 2
fi

ARTIFACT=$1
ADDR=$2
shift 2

SERVE_PID=""
cleanup() {
  status=$?
  if [ -n "$SERVE_PID" ]; then
    # TERM only if still alive (it may have shut down gracefully already);
    # then reap. Neither step may clobber the command's exit status.
    kill -0 "$SERVE_PID" 2>/dev/null && kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  exit "$status"
}
trap cleanup EXIT

# shellcheck disable=SC2086  # $SERVE_FLAGS is a flag list, splitting is the point
./target/release/serve --artifact "$ARTIFACT" --addr "$ADDR" ${SERVE_FLAGS:-} &
SERVE_PID=$!

for _ in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > /dev/null; then
    exec_ready=1
    break
  fi
  sleep 0.2
done
if [ -z "${exec_ready:-}" ]; then
  echo "error: serve did not become healthy on $ADDR" >&2
  exit 1
fi

"$@"
