#!/usr/bin/env bash
# Runs a command against a live `serve` instance and guarantees the
# background server is reaped no matter how the command exits.
#
# Usage: with-serve.sh [--wait-ready SECS] <artifact> <host:port> <command...>
#
# `--wait-ready` bounds the /healthz readiness poll (default 10 s): the
# server is given that long to come up before the command runs, so callers
# never need fixed sleeps, and a slow artifact load (a big model on a cold
# cache) just needs a larger deadline, not a guessed-at sleep.
#
# Extra serve flags can be passed via $SERVE_FLAGS (word-split
# deliberately), e.g. SERVE_FLAGS="--drift-test-hooks" for the drift smoke.
#
# The EXIT trap fixes two bugs the old inline steps had: a failing middle
# step used to leak the background server (no trap), and an unconditional
# `kill -TERM $PID; wait $PID` could race a server that had already exited
# gracefully (kill of a reaped PID fails under `set -e`).
set -euo pipefail

WAIT_READY=10
if [ "${1:-}" = "--wait-ready" ]; then
  if [ "$#" -lt 2 ]; then
    echo "error: --wait-ready needs a seconds value" >&2
    exit 2
  fi
  WAIT_READY=$2
  shift 2
fi

if [ "$#" -lt 3 ]; then
  echo "usage: $0 [--wait-ready SECS] <artifact> <host:port> <command...>" >&2
  exit 2
fi

ARTIFACT=$1
ADDR=$2
shift 2

SERVE_PID=""
cleanup() {
  status=$?
  if [ -n "$SERVE_PID" ]; then
    # TERM only if still alive (it may have shut down gracefully already);
    # then reap. Neither step may clobber the command's exit status.
    kill -0 "$SERVE_PID" 2>/dev/null && kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  exit "$status"
}
trap cleanup EXIT

# shellcheck disable=SC2086  # $SERVE_FLAGS is a flag list, splitting is the point
./target/release/serve --artifact "$ARTIFACT" --addr "$ADDR" ${SERVE_FLAGS:-} &
SERVE_PID=$!

# Poll /healthz until the deadline. Health is answered from the event
# loop's fast path (never shed by admission control), so readiness here
# means "accepting and serving", not just "socket bound". Also bail as
# soon as the server process dies: a crashed server should fail the run
# immediately, not after the full deadline.
SECONDS=0
until curl -sf "http://$ADDR/healthz" > /dev/null; do
  if [ "$SECONDS" -ge "$WAIT_READY" ]; then
    echo "error: serve did not become healthy on $ADDR within ${WAIT_READY}s" >&2
    exit 1
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "error: serve exited before becoming healthy" >&2
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
    exit 1
  fi
  sleep 0.1
done
echo "serve ready on $ADDR after ${SECONDS}s" >&2

"$@"
