#!/usr/bin/env bash
# Exercises the fidelity tiers of a running serve instance backed by a
# tiered bundle: /v1/model must advertise all three tiers plus the embedded
# surrogate's validation record, one classify per tier must succeed and
# echo its tier, an unknown tier must be a 400, and each per-tier request
# counter must move by exactly one. Run under with-serve.sh, which owns the
# server lifecycle.
set -euo pipefail

ADDR=${1:-127.0.0.1:7979}

python3 - "$ADDR" <<'EOF'
import json, sys, urllib.error, urllib.request
addr = sys.argv[1]
TIERS = ("exact", "surrogate", "ideal")

def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=30) as resp:
        return resp.read().decode()

model = json.loads(get("/v1/model"))
assert model["fidelity_tier"] == "exact", model
assert model["available_tiers"] == list(TIERS), model
assert model["surrogate_val_max_err"] > 0, model
assert model["surrogate_val_rms_err"] > 0, model
print("model ok: tiers", model["available_tiers"],
      "val_max_err", model["surrogate_val_max_err"])

def tier_counters():
    out = {}
    for line in get("/metrics").splitlines():
        for tier in TIERS:
            if line.startswith(f"serve_classify_tier_{tier} "):
                out[tier] = float(line.split()[1])
    return out

def classify(body):
    req = urllib.request.Request(
        f"http://{addr}/v1/classify", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.status == 200, resp.status
        return json.load(resp)

before = tier_counters()
image = [((i * 31) % 13) / 13.0 - 0.5 for i in range(3 * 32 * 32)]
for tier in TIERS:
    answer = classify({"tier": tier, "image": image})
    assert answer["tier"] == tier, answer
    assert isinstance(answer["class"], int), answer
    print(f"classify {tier} ok:", answer["class"])

try:
    classify({"tier": "turbo", "image": image})
    raise AssertionError("unknown tier must be rejected")
except urllib.error.HTTPError as e:
    assert e.code == 400, e.code
    print("unknown tier rejected with 400")

after = tier_counters()
for tier in TIERS:
    moved = after.get(tier, 0) - before.get(tier, 0)
    assert moved == 1, (tier, before, after)
print("tier counters moved:", after)
EOF

curl -sf -X POST "http://$ADDR/admin/shutdown" > /dev/null
