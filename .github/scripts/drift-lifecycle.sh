#!/usr/bin/env bash
# Drift-lifecycle smoke against a running serve instance started with
# --drift-test-hooks (and a fast tau range, e.g. --drift-tau-fast 10
# --drift-tau-slow 100000). Run under with-serve.sh, which owns the server
# lifecycle. Exercises the whole ladder:
#
#   1. the background health sweep fires on its own (serve_health_sweeps);
#   2. /admin/advance-time fast-forwards the drift clock until a sweep
#      reports a refresh rung (1 or 2) with cells actually rewritten;
#   3. /admin/reload hot-swaps in-place while concurrent classifies are in
#      flight — every single request must answer 200.
set -euo pipefail

ADDR=${1:-127.0.0.1:7979}

python3 - "$ADDR" <<'EOF'
import json, re, sys, threading, time, urllib.request

addr = sys.argv[1]

def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=30) as resp:
        assert resp.status == 200, (path, resp.status)
        return resp.read().decode()

def post(path, payload=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        f"http://{addr}{path}", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.load(resp)

def metric(text, name):
    m = re.search(rf"^{name}\s+([0-9.eE+-]+)$", text, re.M)
    return float(m.group(1)) if m else 0.0

# 1. Drift fields are live and the background sweep fires by itself.
health = json.loads(get("/healthz"))
assert "probe_accuracy" in health and "mitigation_rung" in health, health
for _ in range(100):
    if metric(get("/metrics"), "serve_health_sweeps") >= 1:
        break
    time.sleep(0.2)
else:
    raise AssertionError("background health sweep never fired")
print("background sweep ok")

# 2. Fast-forward until a sweep crosses a refresh rung. The background
# sweep races the synchronous one we request, so success is judged by the
# cumulative refresh counters, not by which sweep caught the drift.
rewritten = 0.0
seconds, elapsed_budget = 20.0, 3.0e6
while seconds <= elapsed_budget:
    status, body = post("/admin/advance-time",
                        {"seconds": seconds, "sweep": True})
    assert status == 200, body
    sweep = body["sweep"]
    assert sweep["post_accuracy"] >= sweep["pre_accuracy"] - 1e-9, sweep
    metrics = get("/metrics")
    rewritten = metric(metrics, "serve_drift_refreshed_cells") + \
        metric(metrics, "serve_drift_remapped_columns")
    if rewritten > 0:
        break
    seconds *= 2
assert rewritten > 0, "no refresh rung triggered across the escalation"
health = json.loads(get("/healthz"))
assert health["health_sweeps"] >= 1 and health["last_sweep_unix_s"], health
print(f"mitigation ok: {rewritten:.0f} cells/columns rewritten "
      f"after {seconds:.0f}s drift")

# 3. Hot reload under load: no in-flight classify may fail.
image = [((i * 31) % 13) / 13.0 - 0.5 for i in range(3 * 32 * 32)]
stop, failures, okay = threading.Event(), [], [0]

def hammer(seed):
    while not stop.is_set():
        try:
            status, body = post("/v1/classify", {"image": image})
            if status != 200:
                failures.append((status, body))
            else:
                okay[0] += 1
        except Exception as e:  # connection drop = dropped request
            failures.append(("exception", repr(e)))

threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
for t in threads:
    t.start()
time.sleep(0.5)
status, body = post("/admin/reload")
assert status == 200 and body["status"] == "reloaded", body
time.sleep(0.5)
stop.set()
for t in threads:
    t.join()
assert not failures, f"dropped requests during reload: {failures[:3]}"
assert okay[0] > 0, "no classify traffic flowed during the reload"
health = json.loads(get("/healthz"))
assert health["mitigation_rung"] == 0, health
print(f"hot reload ok: {okay[0]} in-flight classifies, zero failures")
EOF
