//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the *exact* API surface it consumes from `rand 0.8` — `StdRng`
//! seeded with [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`distributions::Uniform`], and
//! [`seq::SliceRandom::shuffle`] — implemented here from scratch on a
//! xoshiro256++ core (Blackman & Vigna) seeded via SplitMix64.
//!
//! Streams are deterministic per seed but **not** bit-compatible with the
//! real `rand` crate; all in-repo golden values were produced against this
//! generator.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of the type's canonical "standard" distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 like the reference
    /// implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let x = self.start + u * (self.end - self.start);
                // Guard against rounding landing exactly on the excluded end.
                if x >= self.end {
                    // Largest representable value below `end`.
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    x
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range_impls!(usize, isize, u64, i64, u32, i32, u16, i16, u8, i8);

pub mod distributions {
    use super::{RngCore, SampleRange};

    /// Mirror of `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Mirror of `rand::distributions::Uniform` for the numeric types the
    /// workspace samples.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        lo: X,
        hi: X,
        inclusive: bool,
    }

    impl<X: Copy + PartialOrd> Uniform<X> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: X, hi: X) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: X, hi: X) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<X> Distribution<X> for Uniform<X>
    where
        X: Copy,
        std::ops::Range<X>: SampleRange<X>,
        std::ops::RangeInclusive<X>: SampleRange<X>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            if self.inclusive {
                (self.lo..=self.hi).sample_in(rng)
            } else {
                (self.lo..self.hi).sample_in(rng)
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Mirror of `rand::seq::SliceRandom` (shuffle only).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let k = rng.gen_range(0usize..5);
            assert!(k < 5);
            let s = rng.gen_range(-3isize..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_distribution_matches_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(2.0f64, 4.0);
        let di = Uniform::new_inclusive(-2isize, 2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
            let k = di.sample(&mut rng);
            assert!((-2..=2).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order");
    }
}
