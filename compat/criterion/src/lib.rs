//! Hermetic stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so `cargo bench` links this
//! minimal runner instead: it auto-calibrates an iteration count per
//! benchmark (targeting ~200 ms of measurement), reports mean wall-clock
//! time per iteration on stdout, and implements exactly the API surface the
//! workspace's benches use (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros).
//!
//! No statistics, plots, or saved baselines — for those, run the real
//! criterion in an environment with registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement time target per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Mirror of `criterion::BatchSize` (only the variants the benches name).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Mirror of `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Identifier accepted by `bench_function`/`bench_with_input`.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Mirror of `criterion::Bencher`: runs the routine and records timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

fn run_benchmark(label: &str, mut body: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one batch takes long enough
    // to time meaningfully, then scale to the measurement target.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        body(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break b.elapsed / iters.max(1) as u32;
        }
        iters *= 4;
    };
    let measure_iters = if per_iter.is_zero() {
        iters
    } else {
        (TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };
    let mut b = Bencher {
        iters: measure_iters,
        elapsed: Duration::ZERO,
    };
    body(&mut b);
    let mean = b.elapsed / measure_iters.max(1) as u32;
    println!("bench {label:<40} {mean:>12.3?}/iter ({measure_iters} iters)");
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoLabel,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into_label()), body);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into_label()), |b| {
            body(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoLabel,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into_label(), body);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_all_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || std::thread::sleep(Duration::from_millis(2)),
            |()| (),
            BatchSize::SmallInput,
        );
        assert!(b.elapsed < Duration::from_millis(3), "setup time leaked in");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 64).to_string(), "solve/64");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
