//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this crate reimplements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], weighted [`prop_oneof!`],
//! [`ProptestConfig::with_cases`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics: each test runs `cases` iterations against a deterministic
//! per-test RNG (seeded from the test name, overridable with
//! `PROPTEST_SEED`). There is **no shrinking** — a failure reports the case
//! number and message only. That trades minimal counterexamples for zero
//! dependencies; the seed makes failures reproducible.

/// Runner internals: the deterministic RNG handed to strategies.
pub mod test_runner {
    /// xoshiro256++ seeded via SplitMix64 from a test-name hash.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Deterministic per-test seed: FNV-1a of the test name, XORed with
        /// `PROPTEST_SEED` when set (for reproducing CI failures locally).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.trim().parse::<u64>() {
                    h ^= extra;
                }
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`, 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below zero bound");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Failure raised by `prop_assert!` family; carried as `Err` to the runner.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Mirror of `proptest::prelude::ProptestConfig` (cases only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values. Object-safe: combinators are `Self: Sized`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Constant strategy, mirror of `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let x = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if x >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    x
                }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
int_strategies!(usize, isize, u64, i64, u32, i32, u16, i16, u8, i8);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Weighted union used by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size spec for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {} (set PROPTEST_SEED to vary sampling)",
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![3 => Just(1u32), 1 => Just(0u32)];
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        let ones: u32 = (0..10_000).map(|_| s.sample(&mut rng)).sum();
        let rate = ones as f64 / 10_000.0;
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn vec_strategy_honours_exact_and_ranged_sizes() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        let exact = crate::collection::vec(0.0f32..1.0, 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
        let ranged = crate::collection::vec(0.0f32..1.0, 1..30);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((1..30).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns_and_ranges((a, b) in ((0usize..10), (0usize..10)), x in 0.0f64..1.0) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(n), n))) {
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v[0]);
        }
    }
}
