//! # xbar-repro
//!
//! Umbrella crate for the reproduction of *"Examining and Mitigating the
//! Impact of Crossbar Non-idealities for Accurate Implementation of Sparse
//! Deep Neural Networks"* (DATE 2022).
//!
//! This crate re-exports every workspace crate under one roof so the
//! examples under `examples/` and the integration tests under `tests/` can
//! exercise the full pipeline with a single dependency:
//!
//! * [`tensor`] — N-d `f32` tensors, matmul, im2col;
//! * [`linalg`] — dense/sparse solvers for the crossbar circuit equations;
//! * [`nn`] — trainable DNNs (VGG11/VGG16) with manual backprop;
//! * [`data`] — deterministic synthetic CIFAR-like datasets;
//! * [`prune`] — structured pruning (C/F, XCS, XRS) and the T transformation;
//! * [`sim`] — the non-ideal crossbar circuit simulator;
//! * [`core`] — the Fig. 2 evaluation pipeline plus the R and WCT mitigations.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

// Compile the README's code examples as doctests so they can never rot.
#[doc = include_str!("../README.md")]
mod readme_doctests {}

pub use xbar_core as core;
pub use xbar_data as data;
pub use xbar_linalg as linalg;
pub use xbar_nn as nn;
pub use xbar_prune as prune;
pub use xbar_sim as sim;
pub use xbar_tensor as tensor;
