//! Property-based tests for the crossbar simulator's physical invariants.

use proptest::prelude::*;
use xbar_sim::conductance::{
    conductances_to_weights, weights_to_conductances, ConductanceMatrix, MappingScale,
};
use xbar_sim::drift::{DriftModel, ProgrammedPair};
use xbar_sim::faults::FaultModel;
use xbar_sim::params::CrossbarParams;
use xbar_sim::quantize::{quantization_error_bound, quantize_conductances};
use xbar_sim::solve::{NonIdealSolver, SolveMethod};
use xbar_sim::tile::simulate_tile;
use xbar_tensor::Tensor;

fn weight_tile() -> impl Strategy<Value = Tensor> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec(-1.5f32..1.5, n * n)
            .prop_map(move |data| Tensor::from_vec(data, &[n, n]).expect("consistent"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_round_trip_and_bounds(tile in weight_tile()) {
        let params = CrossbarParams::with_size(tile.rows());
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params);
        for g in pair.pos.as_slice().iter().chain(pair.neg.as_slice()) {
            prop_assert!(*g >= params.g_min() - 1e-15 && *g <= params.g_max() + 1e-15);
        }
        let back = conductances_to_weights(&pair, &params);
        for (a, b) in tile.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-5 * tile.abs_max().max(1.0));
        }
    }

    #[test]
    fn non_ideal_tile_never_amplifies(tile in weight_tile(), seed in 0u64..100) {
        let mut params = CrossbarParams::with_size(tile.rows());
        params.sigma_variation = 0.0;
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            seed,
        )
        .unwrap();
        // Each array only loses current, so |weight| cannot grow beyond a
        // small differential-pair asymmetry: a zero weight sits at Gmin on
        // both arrays, and the two arrays' IR drops differ by at most
        // NF·Gmin/(Gmax−Gmin) of the reference scale (≈1% here).
        for (orig, noisy) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            prop_assert!(
                noisy.abs() <= orig.abs() + 0.02 * tile.abs_max().max(1.0),
                "{} grew to {}",
                orig,
                noisy
            );
        }
        prop_assert!(out.nf() >= 0.0);
    }

    #[test]
    fn quantization_error_respects_bound(
        values in proptest::collection::vec(1e-6f64..1e-5, 1..50),
        levels in 2u32..33,
    ) {
        let (g_min, g_max) = (1e-6f64, 1e-5f64);
        let bound = quantization_error_bound(g_min, g_max, levels);
        let n = values.len();
        let mut g = ConductanceMatrix::from_vec(1, n, values.clone());
        quantize_conductances(&mut g, g_min, g_max, levels);
        for (q, v) in g.as_slice().iter().zip(&values) {
            prop_assert!((q - v).abs() <= bound + 1e-18);
            prop_assert!(*q >= g_min - 1e-18 && *q <= g_max + 1e-18);
        }
    }

    #[test]
    fn fault_injection_rates_are_statistically_sane(rate in 0.0f64..0.4, seed in 0u64..50) {
        let fm = FaultModel {
            stuck_at_gmin: rate,
            stuck_at_gmax: 0.0,
        };
        let mut g = ConductanceMatrix::filled(40, 40, 5e-6);
        let n = fm.inject(&mut g, 1e-6, 1e-5, seed);
        let frac = n as f64 / 1600.0;
        // Binomial(1600, rate): allow 5 sigma.
        let sigma = (rate * (1.0 - rate) / 1600.0).sqrt();
        prop_assert!((frac - rate).abs() <= 5.0 * sigma + 1e-9, "{} vs {}", frac, rate);
    }

    #[test]
    fn drift_is_seed_deterministic(tile in weight_tile(), seed in 0u64..1000, dt in 1.0f64..1e6) {
        let params = CrossbarParams::with_size(tile.rows());
        let model = DriftModel::new(10.0, 1e5);
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params);
        let mut a = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed).unwrap();
        let mut b = ProgrammedPair::new(pair, model, params.g_min(), seed).unwrap();
        a.advance_time(dt);
        b.advance_time(dt);
        prop_assert_eq!(a.current(), b.current());
        prop_assert_eq!(a.mean_decay(), b.mean_decay());
    }

    #[test]
    fn advance_time_composes_and_is_order_independent_across_tiles(
        tile in weight_tile(),
        seed in 0u64..1000,
        a in 1.0f64..1e5,
        b in 1.0f64..1e5,
    ) {
        let params = CrossbarParams::with_size(tile.rows());
        let model = DriftModel::new(10.0, 1e5);
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params);
        // advance(a); advance(b) on one tile == advance(a + b) in one step.
        let mut two_steps = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed).unwrap();
        two_steps.advance_time(a);
        two_steps.advance_time(b);
        let mut one_step = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed).unwrap();
        one_step.advance_time(a + b);
        prop_assert_eq!(two_steps.current(), one_step.current());
        // Interleaving order across independent tiles does not matter: tile
        // x advanced before tile y reads the same as y before x.
        let mut x1 = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed).unwrap();
        let mut y1 = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed ^ 1).unwrap();
        x1.advance_time(a);
        y1.advance_time(b);
        let mut y2 = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed ^ 1).unwrap();
        let mut x2 = ProgrammedPair::new(pair, model, params.g_min(), seed).unwrap();
        y2.advance_time(b);
        x2.advance_time(a);
        prop_assert_eq!(x1.current(), x2.current());
        prop_assert_eq!(y1.current(), y2.current());
    }

    #[test]
    fn zero_dt_is_bit_identical_to_undrifted(tile in weight_tile(), seed in 0u64..1000) {
        // Mirrors the max_retries=0 contract from program-and-verify: the
        // degenerate setting must be indistinguishable from the feature
        // being absent, down to the bit.
        let params = CrossbarParams::with_size(tile.rows());
        let model = DriftModel::new(10.0, 1e5);
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params);
        let mut pp = ProgrammedPair::new(pair.clone(), model, params.g_min(), seed).unwrap();
        pp.advance_time(0.0);
        prop_assert_eq!(pp.current(), pair.clone());
        prop_assert!(pp.is_pristine());
        prop_assert_eq!(pp.mean_decay(), 0.0);
        // And a disabled model never drifts regardless of elapsed time.
        let mut off = ProgrammedPair::new(pair.clone(), DriftModel::disabled(), params.g_min(), seed).unwrap();
        off.advance_time(1e9);
        prop_assert_eq!(off.current(), pair);
    }

    #[test]
    fn solver_is_monotone_in_parasitics(level in 0.1f64..1.0, n in 4usize..12) {
        // Doubling every parasitic resistance can only lose more current.
        let mild = {
            let mut p = CrossbarParams::with_size(n);
            p.sigma_variation = 0.0;
            p
        };
        let harsh = {
            let mut p = mild;
            p.r_driver *= 2.0;
            p.r_sense *= 2.0;
            p.r_wire_row *= 2.0;
            p.r_wire_col *= 2.0;
            p
        };
        let g_val = mild.g_min() + level * (mild.g_max() - mild.g_min());
        let g = ConductanceMatrix::filled(n, n, g_val);
        let v = vec![mild.v_read; n];
        let i_mild = NonIdealSolver::new(mild, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .unwrap();
        let i_harsh = NonIdealSolver::new(harsh, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .unwrap();
        for (a, b) in i_mild.col_currents.iter().zip(&i_harsh.col_currents) {
            prop_assert!(b <= a, "harsher parasitics must not gain current");
        }
    }
}
