//! Closed-form first-order NF estimation.
//!
//! Several crossbar papers estimate IR-drop loss without a circuit solve by
//! treating each parasitic as a small perturbation: the relative current
//! loss of column `j` is approximately the sum of
//!
//! * the driver drop seen by each row, `R_driver · I_row(i)`;
//! * the row-wire drop accumulated up to the column's position,
//!   `R_wire_row · Σ_k I_seg(k)`;
//! * the column-wire plus sense drop, `(R_sense + i·R_wire_col) · I_col(j)`
//!   accumulated along the column;
//!
//! each divided by the read voltage. The estimate is `O(R·C)` instead of a
//! circuit solve and is accurate to a few percent for the parameter ranges
//! used here (validated against [`crate::solve::NonIdealSolver`] in tests).
//! It is the quantitative backbone of the R-transformation analysis: the
//! driver and sense terms are visibly invariant to column permutations,
//! only the row-wire term depends on column order.

use crate::conductance::ConductanceMatrix;
use crate::params::CrossbarParams;

/// First-order per-column NF estimate for a crossbar holding `g` driven at
/// `v_read` on every row.
///
/// # Panics
///
/// Panics if the matrix is empty.
#[allow(clippy::needless_range_loop)] // parallel indexing of row/col aggregates
pub fn estimate_column_nf(g: &ConductanceMatrix, params: &CrossbarParams) -> Vec<f64> {
    let (rows, cols) = (g.rows(), g.cols());
    assert!(rows > 0 && cols > 0, "crossbar must be non-empty");
    let v = params.v_read;
    // Row currents and per-segment currents (current to the right of k).
    let row_current: Vec<f64> = (0..rows)
        .map(|i| (0..cols).map(|j| g.at(i, j) * v).sum())
        .collect();
    // Column currents.
    let col_current: Vec<f64> = (0..cols)
        .map(|j| (0..rows).map(|i| g.at(i, j) * v).sum())
        .collect();
    let mut nf = vec![0.0f64; cols];
    for j in 0..cols {
        if col_current[j] <= 0.0 {
            continue;
        }
        // Weighted (by synapse current share) voltage loss over the column's
        // devices.
        let mut weighted_loss = 0.0f64;
        for i in 0..rows {
            let share = g.at(i, j) * v / col_current[j];
            // Driver drop for row i.
            let mut drop = params.r_driver * row_current[i];
            // Row-wire drop: segments 0..j each carry the current of columns
            // ≥ segment position; approximate with the row current decaying
            // linearly across columns.
            let seg_current = |k: usize| -> f64 {
                // Current beyond column k of row i.
                (k..cols).map(|c| g.at(i, c) * v).sum()
            };
            let mut wire = 0.0;
            for k in 0..=j {
                wire += params.r_wire_row * seg_current(k);
            }
            drop += wire;
            // Column-side: the synapse current of rows above i also flows
            // through segment i..; approximate the column path as the full
            // column current through (rows − i) segments plus the sense.
            let col_drop =
                (params.r_sense + (rows - i) as f64 * params.r_wire_col) * col_current[j];
            weighted_loss += share * (drop + col_drop);
        }
        nf[j] = (weighted_loss / v).min(1.0);
    }
    nf
}

/// Mean of [`estimate_column_nf`].
pub fn estimate_mean_nf(g: &ConductanceMatrix, params: &CrossbarParams) -> f64 {
    let nf = estimate_column_nf(g, params);
    if nf.is_empty() {
        0.0
    } else {
        nf.iter().sum::<f64>() / nf.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::mean_nf;
    use crate::solve::{NonIdealSolver, SolveMethod};

    fn uniform(n: usize, level: f64, params: &CrossbarParams) -> ConductanceMatrix {
        ConductanceMatrix::filled(
            n,
            n,
            params.g_min() + level * (params.g_max() - params.g_min()),
        )
    }

    fn circuit_nf(g: &ConductanceMatrix, params: &CrossbarParams) -> f64 {
        let solver = NonIdealSolver::new(*params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; g.rows()];
        mean_nf(&solver.effective_conductances(g, &v).expect("solves"))
    }

    #[test]
    fn estimate_tracks_circuit_within_factor_two() {
        for n in [8usize, 16, 32] {
            let mut params = CrossbarParams::with_size(n);
            params.sigma_variation = 0.0;
            let g = uniform(n, 0.3, &params);
            let est = estimate_mean_nf(&g, &params);
            let exact = circuit_nf(&g, &params);
            assert!(
                est > 0.5 * exact && est < 2.0 * exact,
                "{n}x{n}: estimate {est} vs circuit {exact}"
            );
        }
    }

    #[test]
    fn estimate_grows_with_size_and_conductance() {
        let mut p16 = CrossbarParams::with_size(16);
        p16.sigma_variation = 0.0;
        let mut p64 = CrossbarParams::with_size(64);
        p64.sigma_variation = 0.0;
        assert!(
            estimate_mean_nf(&uniform(64, 0.5, &p64), &p64)
                > estimate_mean_nf(&uniform(16, 0.5, &p16), &p16)
        );
        assert!(
            estimate_mean_nf(&uniform(16, 0.9, &p16), &p16)
                > estimate_mean_nf(&uniform(16, 0.1, &p16), &p16)
        );
    }

    #[test]
    fn zero_column_is_skipped() {
        let params = CrossbarParams::with_size(4);
        let mut g = uniform(4, 0.5, &params);
        for i in 0..4 {
            g.set(i, 2, 0.0);
        }
        let nf = estimate_column_nf(&g, &params);
        assert_eq!(nf[2], 0.0);
        assert!(nf[0] > 0.0);
    }

    #[test]
    fn driver_and_sense_terms_are_column_order_invariant() {
        // Swap two columns: each column's own NF estimate moves only through
        // the row-wire term, so the change is bounded by its share.
        let params = CrossbarParams::with_size(8);
        let mut g = ConductanceMatrix::filled(8, 8, params.g_min());
        for i in 0..8 {
            g.set(i, 0, params.g_max()); // one dark column at the driver end
        }
        let near = estimate_column_nf(&g, &params)[0];
        // Move the dark column to the far end.
        let mut g2 = ConductanceMatrix::filled(8, 8, params.g_min());
        for i in 0..8 {
            g2.set(i, 7, params.g_max());
        }
        let far = estimate_column_nf(&g2, &params)[7];
        assert!(
            far > near,
            "far column accumulates more row wire: {near} vs {far}"
        );
        // But the gap is a minority of the total NF (driver+sense dominate).
        assert!((far - near) / far < 0.5);
    }
}
