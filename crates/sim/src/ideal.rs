//! Ideal (parasitic-free) crossbar MAC, the software reference.

use crate::conductance::ConductanceMatrix;

/// Ideal column currents `I_j = Σ_i G_ij·V_i`.
///
/// # Panics
///
/// Panics if `v.len() != g.rows()`.
pub fn ideal_currents(g: &ConductanceMatrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(v.len(), g.rows(), "voltage count must match rows");
    (0..g.cols())
        .map(|j| (0..g.rows()).map(|i| g.at(i, j) * v[i]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_weighted_column_sums() {
        let mut g = ConductanceMatrix::filled(2, 2, 0.0);
        g.set(0, 0, 1.0);
        g.set(1, 0, 2.0);
        g.set(0, 1, 3.0);
        g.set(1, 1, 4.0);
        let i = ideal_currents(&g, &[1.0, 0.5]);
        assert_eq!(i, vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "voltage count")]
    fn wrong_voltage_count_panics() {
        ideal_currents(&ConductanceMatrix::filled(2, 2, 1.0), &[1.0]);
    }
}
