//! Weight ↔ conductance mapping.
//!
//! Signed weights map to a *differential pair* of crossbars: `w > 0`
//! programs the positive array to `Gmin + |w|/w_ref·(Gmax−Gmin)` and the
//! negative array to `Gmin` (and vice versa); the analog output is the
//! difference of the two column currents. Zero (pruned) weights sit at
//! `Gmin` on both arrays — the "low conductance synapses" whose proportion
//! the paper's mitigations try to maximise.
//!
//! The reference scale `w_ref` is the crux of the WCT mitigation (see
//! `DESIGN.md`): [`MappingScale::Fixed`] keeps the baseline model's scale so
//! a weight-clamped network genuinely occupies lower conductances, while
//! [`MappingScale::PerTileMax`]/[`MappingScale::PerLayerMax`] renormalise.

use crate::params::CrossbarParams;
use xbar_tensor::Tensor;

/// How the weight→conductance reference scale `w_ref` is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingScale {
    /// `w_ref` = max |w| of the tile being mapped.
    PerTileMax,
    /// `w_ref` = max |w| of the whole layer (passed per layer).
    PerLayerMax,
    /// Fixed `w_ref` (e.g. the unclamped baseline's max |w|); weights above
    /// it saturate at `Gmax`.
    Fixed(f32),
}

impl MappingScale {
    /// Resolves the scale for a tile, given the layer-level maximum.
    ///
    /// Falls back to `1.0` if the resolved scale would be zero (an all-zero
    /// tile), so mapping stays well-defined.
    pub fn resolve(&self, tile_abs_max: f32, layer_abs_max: f32) -> f32 {
        let w = match self {
            MappingScale::PerTileMax => tile_abs_max,
            MappingScale::PerLayerMax => layer_abs_max,
            MappingScale::Fixed(w) => *w,
        };
        if w > 0.0 {
            w
        } else {
            1.0
        }
    }
}

/// A dense matrix of synaptic conductances (Siemens), row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ConductanceMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl ConductanceMatrix {
    /// All-`value` matrix.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "conductance buffer length");
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Mean conductance.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Fraction of devices within `tol` of `g_min` — the paper's "proportion
    /// of low conductance synapses".
    pub fn low_conductance_fraction(&self, g_min: f64, tol: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let n = self.data.iter().filter(|&&g| g <= g_min + tol).count();
        n as f64 / self.data.len() as f64
    }
}

/// A differential pair of conductance arrays encoding signed weights.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialPair {
    /// Array carrying positive weights.
    pub pos: ConductanceMatrix,
    /// Array carrying negative weights.
    pub neg: ConductanceMatrix,
    /// The reference scale used, needed to invert the mapping.
    pub w_ref: f32,
}

/// Maps a weight tile to a differential conductance pair.
///
/// Weights with `|w| > w_ref` saturate at `Gmax`.
///
/// # Panics
///
/// Panics if `tile` is not 2-D.
pub fn weights_to_conductances(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
) -> DifferentialPair {
    assert_eq!(tile.ndim(), 2, "weight tile must be 2-D");
    let (rows, cols) = (tile.rows(), tile.cols());
    let w_ref = scale.resolve(tile.abs_max(), layer_abs_max);
    let (g_min, g_max) = (params.g_min(), params.g_max());
    let span = g_max - g_min;
    let mut pos = ConductanceMatrix::filled(rows, cols, g_min);
    let mut neg = ConductanceMatrix::filled(rows, cols, g_min);
    for r in 0..rows {
        for (c, &w) in tile.row(r).iter().enumerate() {
            let mag = (w.abs() / w_ref).min(1.0) as f64;
            let g = g_min + mag * span;
            if w > 0.0 {
                pos.set(r, c, g);
            } else if w < 0.0 {
                neg.set(r, c, g);
            }
        }
    }
    DifferentialPair { pos, neg, w_ref }
}

/// Inverts the mapping: converts a (possibly non-ideal) differential pair
/// back into signed weights.
///
/// # Panics
///
/// Panics if the pair's arrays have different shapes.
pub fn conductances_to_weights(pair: &DifferentialPair, params: &CrossbarParams) -> Tensor {
    assert_eq!(
        (pair.pos.rows(), pair.pos.cols()),
        (pair.neg.rows(), pair.neg.cols()),
        "differential pair shape mismatch"
    );
    let (rows, cols) = (pair.pos.rows(), pair.pos.cols());
    let (g_min, g_max) = (params.g_min(), params.g_max());
    let span = g_max - g_min;
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        for c in 0..cols {
            let diff = pair.pos.at(r, c) - pair.neg.at(r, c);
            // Effective conductances can dip below Gmin from IR drop; the
            // difference maps linearly back to a weight.
            let w = (diff / span) as f32 * pair.w_ref;
            out.set2(r, c, w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CrossbarParams {
        CrossbarParams::with_size(4)
    }

    #[test]
    fn zero_weights_sit_at_gmin_on_both_arrays() {
        let tile = Tensor::zeros(&[2, 2]);
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params());
        let g_min = params().g_min();
        assert!(pair.pos.as_slice().iter().all(|&g| g == g_min));
        assert!(pair.neg.as_slice().iter().all(|&g| g == g_min));
        assert_eq!(pair.pos.low_conductance_fraction(g_min, 1e-12), 1.0);
    }

    #[test]
    fn max_weight_hits_gmax() {
        let tile = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params());
        assert!((pair.pos.at(0, 0) - params().g_max()).abs() < 1e-12);
        assert!((pair.neg.at(0, 0) - params().g_min()).abs() < 1e-12);
        assert!((pair.neg.at(0, 1) - params().g_max()).abs() < 1e-12);
    }

    #[test]
    fn round_trip_is_identity() {
        let tile = Tensor::from_vec(vec![0.5, -0.25, 0.0, 1.0, -1.0, 0.125], &[2, 3]).unwrap();
        let pair = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params());
        let back = conductances_to_weights(&pair, &params());
        for (a, b) in tile.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn fixed_scale_saturates_large_weights() {
        let tile = Tensor::from_vec(vec![2.0], &[1, 1]).unwrap();
        let pair = weights_to_conductances(&tile, MappingScale::Fixed(1.0), 99.0, &params());
        assert!((pair.pos.at(0, 0) - params().g_max()).abs() < 1e-12);
        // Round trip clamps to w_ref.
        let back = conductances_to_weights(&pair, &params());
        assert!((back.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_scale_lowers_conductances_of_small_weights() {
        // The WCT effect: same weight, smaller relative to a fixed w_ref →
        // lower conductance than per-tile normalisation would give.
        let tile = Tensor::from_vec(vec![0.1], &[1, 1]).unwrap();
        let per_tile = weights_to_conductances(&tile, MappingScale::PerTileMax, 1.0, &params());
        let fixed = weights_to_conductances(&tile, MappingScale::Fixed(1.0), 1.0, &params());
        assert!(fixed.pos.at(0, 0) < per_tile.pos.at(0, 0));
    }

    #[test]
    fn scale_resolution() {
        assert_eq!(MappingScale::PerTileMax.resolve(0.5, 2.0), 0.5);
        assert_eq!(MappingScale::PerLayerMax.resolve(0.5, 2.0), 2.0);
        assert_eq!(MappingScale::Fixed(3.0).resolve(0.5, 2.0), 3.0);
        // Degenerate all-zero tile falls back to 1.0.
        assert_eq!(MappingScale::PerTileMax.resolve(0.0, 0.0), 1.0);
    }

    #[test]
    fn conductance_matrix_stats() {
        let m = ConductanceMatrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.low_conductance_fraction(1.0, 0.5), 0.25);
    }
}
