//! Content-addressed cache of tile circuit solves.
//!
//! Benchmark sweeps re-map near-identical models over and over — the faults
//! bench re-simulates the rate-0 baseline per scenario, rearrange A/B maps
//! the same weights twice, WCT re-maps between epochs. Each of those pays
//! the full line-relaxation cost for crossbar arrays whose *programmed
//! conductances are byte-for-byte identical*. This module memoises solved
//! node voltages keyed by everything that determines the solve:
//!
//! * the programmed conductance matrix (all `f64` bit patterns),
//! * the input voltage vector,
//! * the circuit parameters that enter the nodal equations (`Rdriver`,
//!   `Rwire_row`, `Rwire_col`, `Rsense`),
//! * the solve method, tolerance and sweep cap.
//!
//! Two keys being equal therefore implies the solves are identical, so a
//! hit can never change results — only skip work. Keys are 128-bit FNV-1a
//! hashes; at that width accidental collisions are out of reach of any
//! realistic workload.
//!
//! Reuse comes in two flavours ([`CacheMode`]):
//!
//! * [`CacheMode::Full`] (the default) replays the stored node voltages
//!   through the pure extraction step — **bit-identical** to the cold solve
//!   that populated the entry, including its [`SolveStats`].
//! * [`CacheMode::Seed`] warm-starts a fresh solve from the stored voltages
//!   with verify semantics (see [`crate::solve::Warm`]): the weights are
//!   bit-identical whenever the verifying sweep confirms the seed, while
//!   the stats honestly report the ~1 sweep of work actually done. This
//!   mode exists to exercise and validate the warm-start path; `Full` is
//!   strictly cheaper.
//!
//! Hits and misses are counted in the `sim/solve_cache_hits` /
//! `sim/solve_cache_misses` metrics (`xbar-obs`).
//!
//! The store is process-global and bounded by stored voltage volume
//! (FIFO eviction), so long sweeps cannot grow it without limit.
//!
//! [`SolveStats`]: xbar_linalg::SolveStats

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::conductance::ConductanceMatrix;
use crate::solve::{NodeVoltages, NonIdealSolver, SolveMethod};

/// How [`crate::tile::simulate_tile`] uses the solve cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching: every array is solved cold.
    Off,
    /// Hits replay the stored cold solve — bit-identical results and stats.
    Full,
    /// Hits warm-start a verifying solve from the stored voltages
    /// (bit-identical weights, honest ~1-sweep stats).
    Seed,
}

const MODE_UNSET: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_FULL: u8 = 2;
const MODE_SEED: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Total `f64`-equivalents the cache may hold before FIFO eviction kicks
/// in (~64 MiB). Each entry is charged its voltage payload *plus*
/// [`ENTRY_OVERHEAD_F64S`], so the bound covers what the process actually
/// holds, not just the voltages.
const MAX_CACHED_F64S: usize = 8_000_000;

/// Per-entry bookkeeping charged on top of the voltage payload, in f64
/// units (8 bytes each): the 16-byte key stored twice (map + FIFO order),
/// the `SolveStats`/fallback fields, two `Vec` headers, and the hash-map
/// bucket. Slightly generous on purpose — the original accounting counted
/// only `vr.len() + vc.len()` and quietly undershot the "~64 MiB" bound.
const ENTRY_OVERHEAD_F64S: usize = 24;

/// The charged size of one entry: voltage payload plus fixed overhead.
fn entry_f64s(nodes: &NodeVoltages) -> usize {
    nodes.vr.len() + nodes.vc.len() + ENTRY_OVERHEAD_F64S
}

struct Store {
    entries: HashMap<u128, CachedSolve>,
    order: VecDeque<u128>,
    held_f64s: usize,
}

/// A memoised array solve: the node voltages of the cold solve that
/// populated the entry, and whether that solve needed the extended-sweep
/// fallback (so a replay reports the same outcome).
#[derive(Clone)]
pub(crate) struct CachedSolve {
    pub nodes: NodeVoltages,
    pub fallback: bool,
}

static STORE: Mutex<Option<Store>> = Mutex::new(None);

/// The active cache mode. Defaults to [`CacheMode::Full`]; the
/// `XBAR_SOLVE_CACHE` environment variable (`off` / `full` / `seed`)
/// overrides the default until [`set_solve_cache_mode`] is called.
pub fn solve_cache_mode() -> CacheMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => CacheMode::Off,
        MODE_FULL => CacheMode::Full,
        MODE_SEED => CacheMode::Seed,
        _ => {
            let mode = match std::env::var("XBAR_SOLVE_CACHE").as_deref() {
                Ok("off") | Ok("0") => CacheMode::Off,
                Ok("seed") => CacheMode::Seed,
                _ => CacheMode::Full,
            };
            MODE.store(encode(mode), Ordering::Relaxed);
            mode
        }
    }
}

/// Sets the cache mode for the whole process. Switching modes does not
/// drop stored entries; use [`clear_solve_cache`] for that.
pub fn set_solve_cache_mode(mode: CacheMode) {
    MODE.store(encode(mode), Ordering::Relaxed);
}

fn encode(mode: CacheMode) -> u8 {
    match mode {
        CacheMode::Off => MODE_OFF,
        CacheMode::Full => MODE_FULL,
        CacheMode::Seed => MODE_SEED,
    }
}

/// Drops every cached solve (hit/miss counters in `xbar-obs` are
/// cumulative and unaffected).
pub fn clear_solve_cache() {
    let mut guard = STORE.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// Number of array solves currently cached.
pub fn solve_cache_len() -> usize {
    let guard = STORE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map_or(0, |s| s.entries.len())
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

#[inline]
fn fnv_eat(h: &mut u128, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u128::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// 128-bit FNV-1a over everything that determines an array solve *except*
/// the input-voltage vector: method, shape, circuit parameters, solver
/// knobs, and all conductance bit patterns. A batch of solves through one
/// conductance matrix shares this prefix and only pays per-element hashing
/// for its voltage vectors ([`solve_keys_batch`]).
pub(crate) fn solve_key_prefix(solver: &NonIdealSolver, g: &ConductanceMatrix) -> u128 {
    let mut h = FNV_OFFSET;
    let tag: u8 = match solver.method() {
        SolveMethod::DenseExact => 1,
        SolveMethod::LineRelaxation => 2,
    };
    fnv_eat(&mut h, &[tag]);
    let p = solver.params();
    fnv_eat(&mut h, &(g.rows() as u64).to_le_bytes());
    fnv_eat(&mut h, &(g.cols() as u64).to_le_bytes());
    for r in [p.r_driver, p.r_wire_row, p.r_wire_col, p.r_sense] {
        fnv_eat(&mut h, &r.to_bits().to_le_bytes());
    }
    fnv_eat(&mut h, &solver.tolerance.to_bits().to_le_bytes());
    fnv_eat(&mut h, &(solver.max_sweeps as u64).to_le_bytes());
    for &x in g.as_slice() {
        fnv_eat(&mut h, &x.to_bits().to_le_bytes());
    }
    h
}

/// Continues a [`solve_key_prefix`] with one input-voltage vector.
pub(crate) fn extend_key(prefix: u128, v: &[f64]) -> u128 {
    let mut h = prefix;
    for &x in v {
        fnv_eat(&mut h, &x.to_bits().to_le_bytes());
    }
    h
}

/// 128-bit FNV-1a over everything that determines an array solve.
pub(crate) fn solve_key(solver: &NonIdealSolver, g: &ConductanceMatrix, v: &[f64]) -> u128 {
    extend_key(solve_key_prefix(solver, g), v)
}

/// Cache keys for a whole batch of solves through one conductance matrix:
/// the conductance/parameter prefix is hashed once and extended per
/// element.
pub(crate) fn solve_keys_batch(
    solver: &NonIdealSolver,
    g: &ConductanceMatrix,
    vs: &[Vec<f64>],
) -> Vec<u128> {
    let prefix = solve_key_prefix(solver, g);
    vs.iter().map(|v| extend_key(prefix, v)).collect()
}

pub(crate) fn lookup(key: u128) -> Option<CachedSolve> {
    let guard = STORE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref()?.entries.get(&key).cloned()
}

pub(crate) fn insert(key: u128, nodes: NodeVoltages, fallback: bool) {
    let size = entry_f64s(&nodes);
    if size > MAX_CACHED_F64S {
        return;
    }
    let mut guard = STORE.lock().unwrap_or_else(|e| e.into_inner());
    let store = guard.get_or_insert_with(|| Store {
        entries: HashMap::new(),
        order: VecDeque::new(),
        held_f64s: 0,
    });
    if store.entries.contains_key(&key) {
        return;
    }
    while store.held_f64s + size > MAX_CACHED_F64S {
        let Some(oldest) = store.order.pop_front() else {
            break;
        };
        if let Some(evicted) = store.entries.remove(&oldest) {
            store.held_f64s -= entry_f64s(&evicted.nodes);
        }
    }
    store.held_f64s += size;
    store.order.push_back(key);
    store.entries.insert(key, CachedSolve { nodes, fallback });
}

/// Charged cache volume in f64-equivalents (payload + per-entry overhead);
/// test hook for the eviction bound.
#[cfg(test)]
fn solve_cache_held_f64s() -> usize {
    let guard = STORE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map_or(0, |s| s.held_f64s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CrossbarParams;

    fn solver(n: usize) -> NonIdealSolver {
        NonIdealSolver::new(CrossbarParams::with_size(n), SolveMethod::LineRelaxation)
    }

    #[test]
    fn key_is_content_addressed() {
        let s = solver(4);
        let g = ConductanceMatrix::filled(4, 4, 1e-5);
        let v = vec![0.25; 4];
        assert_eq!(solve_key(&s, &g, &v), solve_key(&s, &g, &v));
        // Any perturbation of the conductances changes the key.
        let mut g2 = g.clone();
        g2.set(2, 3, 1.0000001e-5);
        assert_ne!(solve_key(&s, &g, &v), solve_key(&s, &g2, &v));
        // ... as does the voltage vector ...
        let v2 = vec![0.3; 4];
        assert_ne!(solve_key(&s, &g, &v), solve_key(&s, &g, &v2));
        // ... the circuit parameters ...
        let mut p = CrossbarParams::with_size(4);
        p.r_wire_row *= 2.0;
        let s2 = NonIdealSolver::new(p, SolveMethod::LineRelaxation);
        assert_ne!(solve_key(&s, &g, &v), solve_key(&s2, &g, &v));
        // ... and the method.
        let sd = NonIdealSolver::new(CrossbarParams::with_size(4), SolveMethod::DenseExact);
        assert_ne!(solve_key(&s, &g, &v), solve_key(&sd, &g, &v));
    }

    #[test]
    fn shape_enters_the_key() {
        // A 2×8 and an 8×2 array can share the same flat data; their solves
        // differ, so their keys must too.
        let p = {
            let mut p = CrossbarParams::with_size(8);
            p.rows = 8;
            p.cols = 8;
            p
        };
        let s = NonIdealSolver::new(p, SolveMethod::LineRelaxation);
        let wide = ConductanceMatrix::filled(2, 8, 1e-5);
        let tall = ConductanceMatrix::filled(8, 2, 1e-5);
        assert_ne!(
            solve_key(&s, &wide, &[0.25; 2]),
            solve_key(&s, &tall, &[0.25; 8])
        );
    }

    #[test]
    fn eviction_keeps_volume_bounded() {
        clear_solve_cache();
        let nodes = |k: u64, len: usize| NodeVoltages {
            vr: vec![k as f64; len],
            vc: vec![k as f64; len],
            stats: Default::default(),
        };
        // Exactly-half-payload entries: with the per-entry overhead charged,
        // two of them exceed the budget — the original accounting (payload
        // only) would have kept both and quietly overshot the bound.
        for k in 0..5u64 {
            insert(u128::from(k), nodes(k, MAX_CACHED_F64S / 4), false);
        }
        assert_eq!(
            solve_cache_len(),
            1,
            "overhead must count against the bound"
        );
        assert!(lookup(0).is_none(), "oldest entries must be evicted");
        assert!(lookup(4).is_some());
        assert!(solve_cache_held_f64s() <= MAX_CACHED_F64S);
        // Entries that leave room for the overhead: two fit at a time.
        clear_solve_cache();
        let len = MAX_CACHED_F64S / 4 - ENTRY_OVERHEAD_F64S;
        for k in 0..5u64 {
            insert(u128::from(k), nodes(k, len), false);
        }
        assert_eq!(solve_cache_len(), 2);
        assert!(lookup(3).is_some() && lookup(4).is_some());
        assert!(solve_cache_held_f64s() <= MAX_CACHED_F64S);
        // Accounting stays exact through eviction churn: an empty cache
        // holds zero charged volume again.
        clear_solve_cache();
        assert_eq!(solve_cache_len(), 0);
        assert_eq!(solve_cache_held_f64s(), 0);
    }

    #[test]
    fn batch_keys_match_per_element_keys() {
        let s = solver(4);
        let g = ConductanceMatrix::filled(4, 4, 1e-5);
        let vs: Vec<Vec<f64>> = vec![
            vec![0.25; 4],
            vec![0.1, 0.2, 0.3, 0.4],
            vec![0.25; 4], // duplicate of element 0 — identical key expected
        ];
        let batch = solve_keys_batch(&s, &g, &vs);
        for (k, v) in batch.iter().zip(&vs) {
            assert_eq!(*k, solve_key(&s, &g, v));
        }
        assert_eq!(batch[0], batch[2]);
        assert_ne!(batch[0], batch[1]);
    }
}
