//! Non-ideal crossbar circuit solving.
//!
//! The equivalent circuit (paper Fig. 1(a)) has two nodes per crosspoint:
//! a row-wire node `vr(i,j)` and a column-wire node `vc(i,j)`, connected by
//! the synapse conductance `G_ij`. Row nodes chain through `Rwire_row`
//! segments back to the driver (`Rdriver`, behind the input voltage `V_i`);
//! column nodes chain through `Rwire_col` segments down to the sense
//! resistance `Rsense` at the bottom. Kirchhoff's current law at every node
//! yields a sparse SPD system.
//!
//! Two solvers are provided:
//!
//! * [`SolveMethod::DenseExact`] assembles the full nodal matrix and LU-solves
//!   it — exact, used for small tiles and validation;
//! * [`SolveMethod::LineRelaxation`] alternates exact tridiagonal solves
//!   along rows and columns (block Gauss–Seidel with tridiagonal blocks).
//!   Because wire conductances exceed synaptic ones by ~10³, the inter-line
//!   coupling is weak and a handful of sweeps reaches circuit accuracy.

use crate::conductance::ConductanceMatrix;
use crate::params::{CrossbarParams, InvalidParams};
use xbar_linalg::dense::LuDecomposition;
use xbar_linalg::sparse::CooBuilder;
use xbar_linalg::tridiagonal::solve_tridiagonal_into;
use xbar_linalg::{Result, SolveError, SolveStats};

/// Conductance used for a zero-resistance (ideal) parasitic element.
const IDEAL_CONDUCTANCE: f64 = 1e9;

fn g_of(r: f64) -> f64 {
    if r <= 0.0 {
        IDEAL_CONDUCTANCE
    } else {
        1.0 / r
    }
}

/// Which circuit solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Exact dense LU over the full nodal system (O(n³); small tiles only).
    DenseExact,
    /// Alternating row/column tridiagonal relaxation (fast, validated
    /// against `DenseExact`).
    LineRelaxation,
}

/// The crosspoint node voltages produced by a circuit solve, plus the work
/// it took. Node order is row-major: `vr[i·cols + j]` / `vc[i·cols + j]`.
///
/// Voltages are the solver's *state*: handing them back to a later solve as
/// a [`Warm`] start lets that solve resume where this one left off (the 4×
/// fallback retry) or verify-and-reuse a converged solution (cached
/// re-solves, repair re-simulation) instead of rediscovering everything
/// from the cold initial guess.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeVoltages {
    /// Row-wire node voltages.
    pub vr: Vec<f64>,
    /// Column-wire node voltages.
    pub vc: Vec<f64>,
    /// Work and quality of the solve that produced these voltages;
    /// `converged == false` means the sweep cap was hit and the voltages
    /// are a partial (but deterministic) state, usable as a resume seed.
    pub stats: SolveStats,
}

impl NodeVoltages {
    /// Borrows these voltages as a warm start. `converged_seed` follows the
    /// stats: a converged solution is offered for verified reuse, a partial
    /// one for plain resumption.
    pub fn warm(&self) -> Warm<'_> {
        Warm {
            vr: &self.vr,
            vc: &self.vc,
            converged_seed: self.stats.converged,
        }
    }
}

/// A warm start for [`SolveMethod::LineRelaxation`]: initial node voltages
/// taken from a prior solve.
///
/// Two seed kinds, distinguished by `converged_seed`:
///
/// * `false` — *resume*: relaxation starts from the seed state and runs the
///   normal sweep loop. Because line relaxation is deterministic, resuming
///   from the state of an abandoned attempt reproduces **bit-for-bit** the
///   trajectory a cold solve with a larger sweep budget would have taken.
/// * `true` — *verify*: the seed claims to be a converged solution. One
///   trial sweep is run; if it moves no node by more than the tolerance,
///   the seed itself is returned unchanged (bit-identical reuse, 1 sweep of
///   work). Otherwise relaxation simply continues from the swept state.
///
/// [`SolveMethod::DenseExact`] ignores warm starts (it is direct).
#[derive(Debug, Clone, Copy)]
pub struct Warm<'a> {
    /// Seed row-wire node voltages (`rows·cols` entries).
    pub vr: &'a [f64],
    /// Seed column-wire node voltages (`rows·cols` entries).
    pub vc: &'a [f64],
    /// Whether the seed is a previously converged solution (verify-and-reuse
    /// semantics) rather than a partial state (resume semantics).
    pub converged_seed: bool,
}

/// Result of a non-ideal solve at a fixed input-voltage vector.
#[derive(Debug, Clone)]
pub struct EffectiveSolve {
    /// Effective per-synapse conductances `G'_ij = I_syn,ij / V_i`.
    pub g_eff: ConductanceMatrix,
    /// Non-ideal column currents through the sense resistors, A.
    pub col_currents: Vec<f64>,
    /// Ideal column currents `Σ_i G_ij·V_i`, A.
    pub ideal_currents: Vec<f64>,
    /// Solver work and quality ([`SolveStats::direct`] for the dense solver).
    pub stats: SolveStats,
}

/// A crossbar circuit solver bound to fixed parameters.
#[derive(Debug, Clone, Copy)]
pub struct NonIdealSolver {
    params: CrossbarParams,
    method: SolveMethod,
    /// Convergence tolerance of line relaxation (max voltage delta relative
    /// to read voltage).
    pub tolerance: f64,
    /// Sweep cap for line relaxation.
    pub max_sweeps: usize,
}

impl NonIdealSolver {
    /// Creates a solver, validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`InvalidParams`] message if `params` is physically
    /// inconsistent — worker threads deep in the mapping pipeline surface
    /// this as a descriptive error instead of panicking.
    pub fn try_new(
        params: CrossbarParams,
        method: SolveMethod,
    ) -> std::result::Result<Self, InvalidParams> {
        params.validate()?;
        Ok(Self {
            params,
            method,
            tolerance: 1e-9,
            max_sweeps: 500,
        })
    }

    /// Creates a solver.
    ///
    /// # Panics
    ///
    /// Panics if `params` is physically inconsistent; callers that accept
    /// untrusted configuration should use [`NonIdealSolver::try_new`] (or
    /// run [`CrossbarParams::validate`] first) and surface the error.
    pub fn new(params: CrossbarParams, method: SolveMethod) -> Self {
        match Self::try_new(params, method) {
            Ok(solver) => solver,
            Err(e) => panic!("{e}"),
        }
    }

    /// The bound parameters.
    pub fn params(&self) -> &CrossbarParams {
        &self.params
    }

    /// The bound solve method.
    pub fn method(&self) -> SolveMethod {
        self.method
    }

    /// Solves the circuit for conductances `g` under input voltages `v` and
    /// extracts effective conductances and column currents.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if `v.len() != g.rows()` or any voltage is
    ///   non-positive (effective conductances need `V_i > 0`);
    /// * solver errors from the underlying factorisation/relaxation.
    pub fn effective_conductances(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
    ) -> Result<EffectiveSolve> {
        let rows = g.rows();
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        if v.iter().any(|&x| x <= 0.0) {
            return Err(SolveError::Dimension(
                "effective-conductance extraction requires positive read voltages".into(),
            ));
        }
        let nodes = self.solve_nodes(g, v, None)?;
        if !nodes.stats.converged {
            return Err(SolveError::NoConvergence {
                iterations: nodes.stats.iterations,
                residual: nodes.stats.residual,
            });
        }
        self.extract(g, v, &nodes)
    }

    /// Solves the circuit's node voltages, optionally warm-started.
    ///
    /// Unlike [`NonIdealSolver::effective_conductances`], hitting the sweep
    /// cap is *not* an error here: the partial state comes back with
    /// `stats.converged == false` so callers can resume it (the fallback
    /// retry path) instead of throwing the work away.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if `v.len() != g.rows()` or a warm
    ///   start's vectors do not have `rows·cols` entries;
    /// * factorisation errors from the dense solver.
    pub fn solve_nodes(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        warm: Option<Warm<'_>>,
    ) -> Result<NodeVoltages> {
        let rows = g.rows();
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        match self.method {
            SolveMethod::DenseExact => {
                let (vr, vc) = self.solve_dense(g, v)?;
                Ok(NodeVoltages {
                    vr,
                    vc,
                    stats: SolveStats::direct(),
                })
            }
            SolveMethod::LineRelaxation => {
                let (vr, vc, stats) = self.solve_lines(g, v, warm)?;
                Ok(NodeVoltages { vr, vc, stats })
            }
        }
    }

    /// Extracts effective conductances and column currents from solved node
    /// voltages (the pure read-out step of
    /// [`NonIdealSolver::effective_conductances`]).
    ///
    /// # Errors
    ///
    /// [`SolveError::Dimension`] on shape mismatch or non-positive read
    /// voltages (the per-synapse division needs `V_i > 0`).
    pub fn extract(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        nodes: &NodeVoltages,
    ) -> Result<EffectiveSolve> {
        let (rows, cols) = (g.rows(), g.cols());
        if v.len() != rows || nodes.vr.len() != rows * cols || nodes.vc.len() != rows * cols {
            return Err(SolveError::Dimension(
                "node voltages do not match the crossbar shape".into(),
            ));
        }
        if v.iter().any(|&x| x <= 0.0) {
            return Err(SolveError::Dimension(
                "effective-conductance extraction requires positive read voltages".into(),
            ));
        }
        let (vr, vc) = (&nodes.vr, &nodes.vc);
        let mut g_eff = ConductanceMatrix::filled(rows, cols, 0.0);
        for i in 0..rows {
            for j in 0..cols {
                let i_syn = g.at(i, j) * (vr[i * cols + j] - vc[i * cols + j]);
                g_eff.set(i, j, i_syn / v[i]);
            }
        }
        let g_sense = g_of(self.params.r_sense);
        let col_currents: Vec<f64> = (0..cols)
            .map(|j| vc[(rows - 1) * cols + j] * g_sense)
            .collect();
        let ideal_currents: Vec<f64> = (0..cols)
            .map(|j| (0..rows).map(|i| g.at(i, j) * v[i]).sum())
            .collect();
        Ok(EffectiveSolve {
            g_eff,
            col_currents,
            ideal_currents,
            stats: nodes.stats,
        })
    }

    /// Exact non-ideal column currents for an arbitrary non-negative input
    /// vector (activations after ReLU are non-negative). Unlike
    /// [`NonIdealSolver::effective_conductances`], no per-synapse division
    /// by `V_i` is needed, so zero inputs are fine.
    ///
    /// This is the ground truth against which the paper's methodology —
    /// folding non-idealities into effective conductances `G'` extracted at
    /// the nominal read voltage — is validated (ablation A6 in
    /// `xbar-bench`).
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if `v.len() != g.rows()` or any voltage
    ///   is negative;
    /// * solver errors from the underlying relaxation.
    pub fn column_currents(&self, g: &ConductanceMatrix, v: &[f64]) -> Result<Vec<f64>> {
        let (rows, cols) = (g.rows(), g.cols());
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        if v.iter().any(|&x| x < 0.0) {
            return Err(SolveError::Dimension(
                "column currents require non-negative input voltages".into(),
            ));
        }
        let nodes = self.solve_nodes(g, v, None)?;
        if !nodes.stats.converged {
            return Err(SolveError::NoConvergence {
                iterations: nodes.stats.iterations,
                residual: nodes.stats.residual,
            });
        }
        let g_sense = g_of(self.params.r_sense);
        Ok((0..cols)
            .map(|j| nodes.vc[(rows - 1) * cols + j] * g_sense)
            .collect())
    }

    /// Dense nodal assembly + LU. Node order: all row nodes (`i·cols + j`)
    /// then all column nodes (`rows·cols + i·cols + j`).
    fn solve_dense(&self, g: &ConductanceMatrix, v: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let n = 2 * rows * cols;
        let (g_drv, g_wr, g_wc, g_sns) = (
            g_of(p.r_driver),
            g_of(p.r_wire_row),
            g_of(p.r_wire_col),
            g_of(p.r_sense),
        );
        let mut builder = CooBuilder::new(n);
        let mut b = vec![0.0f64; n];
        let rnode = |i: usize, j: usize| i * cols + j;
        let cnode = |i: usize, j: usize| rows * cols + i * cols + j;
        for i in 0..rows {
            for j in 0..cols {
                // Synapse between row and column nodes.
                builder.stamp_conductance(Some(rnode(i, j)), Some(cnode(i, j)), g.at(i, j));
                // Row wire to the right neighbour.
                if j + 1 < cols {
                    builder.stamp_conductance(Some(rnode(i, j)), Some(rnode(i, j + 1)), g_wr);
                }
                // Column wire to the node below.
                if i + 1 < rows {
                    builder.stamp_conductance(Some(cnode(i, j)), Some(cnode(i + 1, j)), g_wc);
                }
            }
            // Driver at the left end of the row: conductance to the source.
            builder.stamp_conductance(Some(rnode(i, 0)), None, g_drv);
            b[rnode(i, 0)] += g_drv * v[i];
        }
        for j in 0..cols {
            // Sense resistor to ground at the bottom of the column.
            builder.stamp_conductance(Some(cnode(rows - 1, j)), None, g_sns);
        }
        let dense = builder.build().to_dense();
        let x = LuDecomposition::new(&dense)?.solve(&b)?;
        let (vr, vc) = x.split_at(rows * cols);
        Ok((vr.to_vec(), vc.to_vec()))
    }

    /// Alternating tridiagonal line solves, optionally warm-started.
    ///
    /// Never errors on hitting the sweep cap: the partial state is returned
    /// with `converged == false` so the caller can resume it.
    fn solve_lines(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        warm: Option<Warm<'_>>,
    ) -> Result<(Vec<f64>, Vec<f64>, SolveStats)> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let (g_drv, g_wr, g_wc, g_sns) = (
            g_of(p.r_driver),
            g_of(p.r_wire_row),
            g_of(p.r_wire_col),
            g_of(p.r_sense),
        );
        let (mut vr, mut vc, verify_seed): (Vec<f64>, Vec<f64>, bool) = match warm {
            Some(w) => {
                if w.vr.len() != rows * cols || w.vc.len() != rows * cols {
                    return Err(SolveError::Dimension(format!(
                        "warm start has {}+{} node voltages but the crossbar needs {} each",
                        w.vr.len(),
                        w.vc.len(),
                        rows * cols
                    )));
                }
                (w.vr.to_vec(), w.vc.to_vec(), w.converged_seed)
            }
            // Cold initial guess: full source voltage on rows, ground on
            // columns.
            None => (
                (0..rows * cols).map(|k| v[k / cols]).collect(),
                vec![0.0f64; rows * cols],
                false,
            ),
        };
        // Kept so a verified seed can be returned unchanged (bit-identical
        // reuse) when the trial sweep confirms it still meets tolerance.
        let seed = if verify_seed {
            Some((vr.clone(), vc.clone()))
        } else {
            None
        };
        let tol = self.tolerance * p.v_read;
        let mut sweeps = 0usize;
        // Line buffers reused across every line of every sweep: bands, the
        // tridiagonal solution, and its elimination scratch.
        let n = rows.max(cols);
        let mut sub = vec![0.0f64; n];
        let mut diag = vec![0.0f64; n];
        let mut sup = vec![0.0f64; n];
        let mut rhs = vec![0.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut scratch = vec![0.0f64; n];
        loop {
            sweeps += 1;
            let mut max_delta = 0.0f64;
            // Row lines: unknowns vr(i, 0..cols), with vc held fixed.
            for i in 0..rows {
                for j in 0..cols {
                    let left = if j == 0 { g_drv } else { g_wr };
                    let right = if j + 1 < cols { g_wr } else { 0.0 };
                    diag[j] = left + right + g.at(i, j);
                    sub[j] = if j == 0 { 0.0 } else { -g_wr };
                    sup[j] = if j + 1 < cols { -g_wr } else { 0.0 };
                    rhs[j] =
                        g.at(i, j) * vc[i * cols + j] + if j == 0 { g_drv * v[i] } else { 0.0 };
                }
                solve_tridiagonal_into(
                    &sub[..cols],
                    &diag[..cols],
                    &sup[..cols],
                    &rhs[..cols],
                    &mut x[..cols],
                    &mut scratch[..cols],
                )?;
                for (j, &val) in x[..cols].iter().enumerate() {
                    max_delta = max_delta.max((val - vr[i * cols + j]).abs());
                    vr[i * cols + j] = val;
                }
            }
            // Column lines: unknowns vc(0..rows, j), with vr held fixed.
            for j in 0..cols {
                for i in 0..rows {
                    let up = if i == 0 { 0.0 } else { g_wc };
                    let down = if i + 1 < rows { g_wc } else { g_sns };
                    diag[i] = up + down + g.at(i, j);
                    sub[i] = if i == 0 { 0.0 } else { -g_wc };
                    sup[i] = if i + 1 < rows { -g_wc } else { 0.0 };
                    rhs[i] = g.at(i, j) * vr[i * cols + j];
                }
                solve_tridiagonal_into(
                    &sub[..rows],
                    &diag[..rows],
                    &sup[..rows],
                    &rhs[..rows],
                    &mut x[..rows],
                    &mut scratch[..rows],
                )?;
                for (i, &val) in x[..rows].iter().enumerate() {
                    max_delta = max_delta.max((val - vc[i * cols + j]).abs());
                    vc[i * cols + j] = val;
                }
            }
            if max_delta < tol {
                let stats = SolveStats {
                    iterations: sweeps,
                    residual: max_delta / p.v_read,
                    converged: true,
                };
                if sweeps == 1 {
                    if let Some((seed_vr, seed_vc)) = seed {
                        // The verified seed moved less than the tolerance
                        // under a full sweep — it is still a fixed point by
                        // the same criterion a cold solve uses, so hand it
                        // back unchanged.
                        return Ok((seed_vr, seed_vc, stats));
                    }
                }
                return Ok((vr, vc, stats));
            }
            if sweeps >= self.max_sweeps {
                let stats = SolveStats {
                    iterations: sweeps,
                    residual: max_delta / p.v_read,
                    converged: false,
                };
                return Ok((vr, vc, stats));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_g(rows: usize, cols: usize, params: &CrossbarParams) -> ConductanceMatrix {
        ConductanceMatrix::filled(rows, cols, params.g_max())
    }

    #[test]
    fn ideal_crossbar_reproduces_dot_product() {
        let params = CrossbarParams::with_size(4).ideal();
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![0.25; 4];
        let out = solver.effective_conductances(&g, &v).unwrap();
        for (i_n, i_i) in out.col_currents.iter().zip(&out.ideal_currents) {
            assert!((i_n - i_i).abs() / i_i < 1e-5, "{i_n} vs {i_i}");
        }
        for (e, p) in out.g_eff.as_slice().iter().zip(g.as_slice()) {
            assert!((e - p).abs() / p < 1e-5);
        }
    }

    #[test]
    fn line_relaxation_matches_dense_exact() {
        let params = CrossbarParams::with_size(6);
        let mut g = ConductanceMatrix::filled(6, 6, 0.0);
        let mut s = 9u64;
        for i in 0..6 {
            for j in 0..6 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let frac = (s % 1000) as f64 / 1000.0;
                g.set(
                    i,
                    j,
                    params.g_min() + frac * (params.g_max() - params.g_min()),
                );
            }
        }
        let v = vec![params.v_read; 6];
        let exact = NonIdealSolver::new(params, SolveMethod::DenseExact)
            .effective_conductances(&g, &v)
            .unwrap();
        let lines = NonIdealSolver::new(params, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .unwrap();
        for (a, b) in exact.g_eff.as_slice().iter().zip(lines.g_eff.as_slice()) {
            assert!((a - b).abs() / a.abs().max(1e-12) < 1e-5, "{a} vs {b}");
        }
        for (a, b) in exact.col_currents.iter().zip(&lines.col_currents) {
            assert!((a - b).abs() / a < 1e-5);
        }
    }

    #[test]
    fn parasitics_always_lose_current() {
        let params = CrossbarParams::with_size(16);
        let g = uniform_g(16, 16, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 16];
        let out = solver.effective_conductances(&g, &v).unwrap();
        for (i_n, i_i) in out.col_currents.iter().zip(&out.ideal_currents) {
            assert!(i_n < i_i, "non-ideal current must be below ideal");
            assert!(*i_n > 0.0);
        }
    }

    #[test]
    fn larger_crossbars_have_larger_relative_drop() {
        let mut drops = Vec::new();
        for n in [8usize, 16, 32] {
            let params = CrossbarParams::with_size(n);
            let g = uniform_g(n, n, &params);
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            let v = vec![params.v_read; n];
            let out = solver.effective_conductances(&g, &v).unwrap();
            let nf: f64 = out
                .col_currents
                .iter()
                .zip(&out.ideal_currents)
                .map(|(n, i)| (i - n) / i)
                .sum::<f64>()
                / n as f64;
            drops.push(nf);
        }
        assert!(drops[0] < drops[1] && drops[1] < drops[2], "{drops:?}");
    }

    #[test]
    fn low_conductance_reduces_drop() {
        let params = CrossbarParams::with_size(16);
        let dense_g = uniform_g(16, 16, &params);
        let sparse_g = ConductanceMatrix::filled(16, 16, params.g_min());
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 16];
        let nf = |g: &ConductanceMatrix| {
            let out = solver.effective_conductances(g, &v).unwrap();
            out.col_currents
                .iter()
                .zip(&out.ideal_currents)
                .map(|(n, i)| (i - n) / i)
                .sum::<f64>()
                / 16.0
        };
        assert!(
            nf(&sparse_g) < nf(&dense_g),
            "low-G crossbar must suffer less IR drop"
        );
    }

    #[test]
    fn column_currents_accept_zero_inputs() {
        let params = CrossbarParams::with_size(6);
        let g = uniform_g(6, 6, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![0.0, 0.25, 0.0, 0.25, 0.0, 0.25];
        let currents = solver.column_currents(&g, &v).unwrap();
        assert!(currents.iter().all(|&i| i > 0.0));
        // Negative inputs rejected.
        assert!(solver.column_currents(&g, &[-0.1; 6]).is_err());
    }

    #[test]
    fn column_currents_match_effective_solve_at_nominal_input() {
        let params = CrossbarParams::with_size(8);
        let g = uniform_g(8, 8, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 8];
        let exact = solver.column_currents(&g, &v).unwrap();
        let eff = solver.effective_conductances(&g, &v).unwrap();
        for (a, b) in exact.iter().zip(&eff.col_currents) {
            assert!((a - b).abs() / a < 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn effective_g_approximation_is_close_for_varied_inputs() {
        // The paper's methodology folds non-idealities into G' extracted at
        // the nominal read voltage; for a different input pattern the
        // approximation error should be small but non-zero.
        let params = CrossbarParams::with_size(8);
        let g = uniform_g(8, 8, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let nominal = vec![params.v_read; 8];
        let eff = solver.effective_conductances(&g, &nominal).unwrap();
        // Half the rows active.
        let v: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { params.v_read } else { 0.0 })
            .collect();
        let exact = solver.column_currents(&g, &v).unwrap();
        for j in 0..8 {
            let approx: f64 = (0..8).map(|i| eff.g_eff.at(i, j) * v[i]).sum();
            let rel = (approx - exact[j]).abs() / exact[j];
            assert!(rel < 0.05, "approximation should be within 5%: {rel}");
        }
    }

    fn random_g(n: usize, params: &CrossbarParams, mut s: u64) -> ConductanceMatrix {
        let mut g = ConductanceMatrix::filled(n, n, 0.0);
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let frac = (s % 1000) as f64 / 1000.0;
                g.set(
                    i,
                    j,
                    params.g_min() + frac * (params.g_max() - params.g_min()),
                );
            }
        }
        g
    }

    #[test]
    fn warm_resume_reproduces_cold_trajectory_bitwise() {
        let params = CrossbarParams::with_size(12);
        let g = random_g(12, &params, 21);
        let v = vec![params.v_read; 12];
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let cold = solver.solve_nodes(&g, &v, None).unwrap();
        assert!(cold.stats.converged);
        let total = cold.stats.iterations;
        assert!(total >= 2);
        // Stop partway, then resume: line relaxation is deterministic, so
        // the resumed trajectory must land on the cold answer bit-for-bit.
        let mut partial_solver = solver;
        partial_solver.max_sweeps = total - 1;
        let partial = partial_solver.solve_nodes(&g, &v, None).unwrap();
        assert!(!partial.stats.converged);
        let resumed = solver.solve_nodes(&g, &v, Some(partial.warm())).unwrap();
        assert!(resumed.stats.converged);
        assert_eq!(resumed.vr, cold.vr);
        assert_eq!(resumed.vc, cold.vc);
        assert_eq!(
            partial.stats.iterations + resumed.stats.iterations,
            total,
            "split trajectory must cover the cold sweep count exactly"
        );
    }

    #[test]
    fn verified_seed_is_returned_unchanged() {
        let params = CrossbarParams::with_size(10);
        let g = random_g(10, &params, 33);
        let v = vec![params.v_read; 10];
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let cold = solver.solve_nodes(&g, &v, None).unwrap();
        assert!(cold.stats.converged);
        let reused = solver.solve_nodes(&g, &v, Some(cold.warm())).unwrap();
        // One verifying sweep, then the seed handed back bit-identical.
        assert_eq!(reused.stats.iterations, 1);
        assert_eq!(reused.vr, cold.vr);
        assert_eq!(reused.vc, cold.vc);
    }

    #[test]
    fn warm_start_with_wrong_shape_is_rejected() {
        let params = CrossbarParams::with_size(4);
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let short = vec![0.0; 7];
        let warm = Warm {
            vr: &short,
            vc: &short,
            converged_seed: false,
        };
        assert!(matches!(
            solver.solve_nodes(&g, &[0.25; 4], Some(warm)),
            Err(SolveError::Dimension(_))
        ));
    }

    #[test]
    fn try_new_rejects_invalid_params() {
        let mut params = CrossbarParams::with_size(4);
        params.r_driver = -1.0;
        assert!(NonIdealSolver::try_new(params, SolveMethod::LineRelaxation).is_err());
        assert!(
            NonIdealSolver::try_new(CrossbarParams::with_size(4), SolveMethod::LineRelaxation)
                .is_ok()
        );
    }

    #[test]
    fn input_validation() {
        let params = CrossbarParams::with_size(4);
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        assert!(solver.effective_conductances(&g, &[0.25; 3]).is_err());
        assert!(solver
            .effective_conductances(&g, &[0.25, 0.25, 0.25, 0.0])
            .is_err());
    }

    #[test]
    fn effective_conductances_follow_ir_drop_gradient() {
        // Rows farther along the column (higher i) see less degradation at
        // the sense end... but more wire in between; the clear invariant is
        // that all effective conductances are below programmed ones.
        let params = CrossbarParams::with_size(8);
        let g = uniform_g(8, 8, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 8];
        let out = solver.effective_conductances(&g, &v).unwrap();
        for (e, p) in out.g_eff.as_slice().iter().zip(g.as_slice()) {
            assert!(e < p);
            assert!(*e > 0.0);
        }
    }
}
