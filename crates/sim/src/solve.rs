//! Non-ideal crossbar circuit solving.
//!
//! The equivalent circuit (paper Fig. 1(a)) has two nodes per crosspoint:
//! a row-wire node `vr(i,j)` and a column-wire node `vc(i,j)`, connected by
//! the synapse conductance `G_ij`. Row nodes chain through `Rwire_row`
//! segments back to the driver (`Rdriver`, behind the input voltage `V_i`);
//! column nodes chain through `Rwire_col` segments down to the sense
//! resistance `Rsense` at the bottom. Kirchhoff's current law at every node
//! yields a sparse SPD system.
//!
//! Two solvers are provided:
//!
//! * [`SolveMethod::DenseExact`] assembles the full nodal matrix and LU-solves
//!   it — exact, used for small tiles and validation;
//! * [`SolveMethod::LineRelaxation`] alternates exact tridiagonal solves
//!   along rows and columns (block Gauss–Seidel with tridiagonal blocks).
//!   Because wire conductances exceed synaptic ones by ~10³, the inter-line
//!   coupling is weak and a handful of sweeps reaches circuit accuracy.
//!
//! Line relaxation comes in three bit-identical flavours:
//!
//! * the **scalar oracle** ([`NonIdealSolver::solve_nodes_scalar`]) — one
//!   Thomas solve per line per sweep, the reference implementation;
//! * the **vectorized path** (the default behind
//!   [`NonIdealSolver::solve_nodes`]) — the independent line solves of each
//!   sweep phase are laid out contiguously and processed in manual
//!   [`LANES`]-wide f64 chunks, with the per-line Thomas factorisations
//!   (which depend only on the conductances, never on the right-hand side)
//!   hoisted out of the sweep loop;
//! * the **batched path** ([`NonIdealSolver::solve_nodes_batch`]) — many
//!   input vectors solve through the same conductance matrix in one pass,
//!   lanes running across batch elements and the factorisation shared by
//!   the whole batch.
//!
//! All three perform the same IEEE-754 operations in the same order per
//! element, so their results are bit-identical (pinned by unit tests here
//! and proptests in `tests/proptests.rs`). On x86-64 the sweep kernels are
//! additionally compiled for AVX2 and dispatched at runtime; FMA is
//! deliberately *not* enabled, as contraction would change roundings.

use crate::conductance::ConductanceMatrix;
use crate::params::{CrossbarParams, InvalidParams};
use xbar_linalg::dense::LuDecomposition;
use xbar_linalg::sparse::CooBuilder;
use xbar_linalg::tridiagonal::solve_tridiagonal_into;
use xbar_linalg::{Result, SolveError, SolveStats};
use xbar_obs::names;

/// Conductance used for a zero-resistance (ideal) parasitic element.
const IDEAL_CONDUCTANCE: f64 = 1e9;

fn g_of(r: f64) -> f64 {
    if r <= 0.0 {
        IDEAL_CONDUCTANCE
    } else {
        1.0 / r
    }
}

/// Which circuit solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Exact dense LU over the full nodal system (O(n³); small tiles only).
    DenseExact,
    /// Alternating row/column tridiagonal relaxation (fast, validated
    /// against `DenseExact`).
    LineRelaxation,
}

/// The crosspoint node voltages produced by a circuit solve, plus the work
/// it took. Node order is row-major: `vr[i·cols + j]` / `vc[i·cols + j]`.
///
/// Voltages are the solver's *state*: handing them back to a later solve as
/// a [`Warm`] start lets that solve resume where this one left off (the 4×
/// fallback retry) or verify-and-reuse a converged solution (cached
/// re-solves, repair re-simulation) instead of rediscovering everything
/// from the cold initial guess.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeVoltages {
    /// Row-wire node voltages.
    pub vr: Vec<f64>,
    /// Column-wire node voltages.
    pub vc: Vec<f64>,
    /// Work and quality of the solve that produced these voltages;
    /// `converged == false` means the sweep cap was hit and the voltages
    /// are a partial (but deterministic) state, usable as a resume seed.
    pub stats: SolveStats,
}

impl NodeVoltages {
    /// Borrows these voltages as a warm start. `converged_seed` follows the
    /// stats: a converged solution is offered for verified reuse, a partial
    /// one for plain resumption.
    pub fn warm(&self) -> Warm<'_> {
        Warm {
            vr: &self.vr,
            vc: &self.vc,
            converged_seed: self.stats.converged,
        }
    }
}

/// A warm start for [`SolveMethod::LineRelaxation`]: initial node voltages
/// taken from a prior solve.
///
/// Two seed kinds, distinguished by `converged_seed`:
///
/// * `false` — *resume*: relaxation starts from the seed state and runs the
///   normal sweep loop. Because line relaxation is deterministic, resuming
///   from the state of an abandoned attempt reproduces **bit-for-bit** the
///   trajectory a cold solve with a larger sweep budget would have taken.
/// * `true` — *verify*: the seed claims to be a converged solution. One
///   trial sweep is run; if it moves no node by more than the tolerance,
///   the seed itself is returned unchanged (bit-identical reuse, 1 sweep of
///   work). Otherwise relaxation simply continues from the swept state.
///
/// [`SolveMethod::DenseExact`] ignores warm starts (it is direct).
#[derive(Debug, Clone, Copy)]
pub struct Warm<'a> {
    /// Seed row-wire node voltages (`rows·cols` entries).
    pub vr: &'a [f64],
    /// Seed column-wire node voltages (`rows·cols` entries).
    pub vc: &'a [f64],
    /// Whether the seed is a previously converged solution (verify-and-reuse
    /// semantics) rather than a partial state (resume semantics).
    pub converged_seed: bool,
}

/// Result of a non-ideal solve at a fixed input-voltage vector.
#[derive(Debug, Clone)]
pub struct EffectiveSolve {
    /// Effective per-synapse conductances `G'_ij = I_syn,ij / V_i`.
    pub g_eff: ConductanceMatrix,
    /// Non-ideal column currents through the sense resistors, A.
    pub col_currents: Vec<f64>,
    /// Ideal column currents `Σ_i G_ij·V_i`, A.
    pub ideal_currents: Vec<f64>,
    /// Solver work and quality ([`SolveStats::direct`] for the dense solver).
    pub stats: SolveStats,
}

/// A crossbar circuit solver bound to fixed parameters.
#[derive(Debug, Clone, Copy)]
pub struct NonIdealSolver {
    params: CrossbarParams,
    method: SolveMethod,
    /// Convergence tolerance of line relaxation (max voltage delta relative
    /// to read voltage).
    pub tolerance: f64,
    /// Sweep cap for line relaxation.
    pub max_sweeps: usize,
}

impl NonIdealSolver {
    /// Creates a solver, validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`InvalidParams`] message if `params` is physically
    /// inconsistent — worker threads deep in the mapping pipeline surface
    /// this as a descriptive error instead of panicking.
    pub fn try_new(
        params: CrossbarParams,
        method: SolveMethod,
    ) -> std::result::Result<Self, InvalidParams> {
        params.validate()?;
        Ok(Self {
            params,
            method,
            tolerance: 1e-9,
            max_sweeps: 500,
        })
    }

    /// Creates a solver.
    ///
    /// # Panics
    ///
    /// Panics if `params` is physically inconsistent; callers that accept
    /// untrusted configuration should use [`NonIdealSolver::try_new`] (or
    /// run [`CrossbarParams::validate`] first) and surface the error.
    pub fn new(params: CrossbarParams, method: SolveMethod) -> Self {
        match Self::try_new(params, method) {
            Ok(solver) => solver,
            Err(e) => panic!("{e}"),
        }
    }

    /// The bound parameters.
    pub fn params(&self) -> &CrossbarParams {
        &self.params
    }

    /// The bound solve method.
    pub fn method(&self) -> SolveMethod {
        self.method
    }

    /// Solves the circuit for conductances `g` under input voltages `v` and
    /// extracts effective conductances and column currents.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if `v.len() != g.rows()` or any voltage is
    ///   non-positive (effective conductances need `V_i > 0`);
    /// * solver errors from the underlying factorisation/relaxation.
    pub fn effective_conductances(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
    ) -> Result<EffectiveSolve> {
        let rows = g.rows();
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        if v.iter().any(|&x| x <= 0.0) {
            return Err(SolveError::Dimension(
                "effective-conductance extraction requires positive read voltages".into(),
            ));
        }
        let nodes = self.solve_nodes(g, v, None)?;
        if !nodes.stats.converged {
            return Err(SolveError::NoConvergence {
                iterations: nodes.stats.iterations,
                residual: nodes.stats.residual,
            });
        }
        self.extract(g, v, &nodes)
    }

    /// Solves the circuit's node voltages, optionally warm-started.
    ///
    /// Unlike [`NonIdealSolver::effective_conductances`], hitting the sweep
    /// cap is *not* an error here: the partial state comes back with
    /// `stats.converged == false` so callers can resume it (the fallback
    /// retry path) instead of throwing the work away.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if `v.len() != g.rows()` or a warm
    ///   start's vectors do not have `rows·cols` entries;
    /// * factorisation errors from the dense solver.
    pub fn solve_nodes(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        warm: Option<Warm<'_>>,
    ) -> Result<NodeVoltages> {
        let rows = g.rows();
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        match self.method {
            SolveMethod::DenseExact => {
                let (vr, vc) = self.solve_dense(g, v)?;
                Ok(NodeVoltages {
                    vr,
                    vc,
                    stats: SolveStats::direct(),
                })
            }
            SolveMethod::LineRelaxation => {
                let (vr, vc, stats) = self.solve_lines_vec(g, v, warm)?;
                Ok(NodeVoltages { vr, vc, stats })
            }
        }
    }

    /// The scalar reference implementation of [`NonIdealSolver::solve_nodes`]
    /// — one Thomas solve per line per sweep, no lane chunking, no hoisted
    /// factorisation. This is the bit-identity oracle the vectorized and
    /// batched paths are validated against; it is never faster, only
    /// simpler.
    ///
    /// # Errors
    ///
    /// Identical to [`NonIdealSolver::solve_nodes`].
    pub fn solve_nodes_scalar(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        warm: Option<Warm<'_>>,
    ) -> Result<NodeVoltages> {
        let rows = g.rows();
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        match self.method {
            SolveMethod::DenseExact => {
                let (vr, vc) = self.solve_dense(g, v)?;
                Ok(NodeVoltages {
                    vr,
                    vc,
                    stats: SolveStats::direct(),
                })
            }
            SolveMethod::LineRelaxation => {
                let (vr, vc, stats) = self.solve_lines(g, v, warm)?;
                Ok(NodeVoltages { vr, vc, stats })
            }
        }
    }

    /// Solves the circuit for many input vectors against the *same*
    /// conductance matrix in one pass, amortizing setup across the batch.
    ///
    /// For [`SolveMethod::LineRelaxation`] the per-line Thomas
    /// factorisations are computed once and shared by every element, and
    /// each sweep runs lane-parallel across batch elements; every element's
    /// trajectory is bit-identical to a cold
    /// [`NonIdealSolver::solve_nodes`] (and therefore to the scalar oracle)
    /// on that element alone. For [`SolveMethod::DenseExact`] the nodal
    /// matrix is factorised once and back-substituted per element.
    ///
    /// Batched solves are always cold: elements that need warm starts
    /// should use the single-vector path. Elements that hit the sweep cap
    /// come back with `stats.converged == false`, exactly like
    /// [`NonIdealSolver::solve_nodes`].
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if any element's length differs from
    ///   `g.rows()`;
    /// * factorisation errors from either solver.
    pub fn solve_nodes_batch(
        &self,
        g: &ConductanceMatrix,
        vs: &[Vec<f64>],
    ) -> Result<Vec<NodeVoltages>> {
        let rows = g.rows();
        for (idx, v) in vs.iter().enumerate() {
            if v.len() != rows {
                return Err(SolveError::Dimension(format!(
                    "crossbar has {rows} rows but batch element {idx} carries {} input voltages",
                    v.len()
                )));
            }
        }
        if vs.is_empty() {
            return Ok(Vec::new());
        }
        let out = match self.method {
            SolveMethod::DenseExact => self.solve_dense_batch(g, vs)?,
            SolveMethod::LineRelaxation => self.solve_lines_batch(g, vs)?,
        };
        xbar_obs::metrics::counter_add(names::SIM_SOLVE_BATCH_CALLS, 1);
        xbar_obs::metrics::histogram_record(
            names::SIM_SOLVE_BATCH_SIZE,
            vs.len() as f64,
            BATCH_SIZE_BOUNDS,
        );
        for nodes in &out {
            xbar_obs::metrics::histogram_record(
                names::SIM_SOLVE_BATCH_SWEEPS,
                nodes.stats.iterations as f64,
                BATCH_SWEEP_BOUNDS,
            );
        }
        Ok(out)
    }

    /// Exact non-ideal column currents for a whole batch of non-negative
    /// input vectors through the same conductance matrix — the batched
    /// sibling of [`NonIdealSolver::column_currents`], bit-identical to
    /// calling it once per element.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] on a length mismatch or a negative
    ///   voltage in any element;
    /// * [`SolveError::NoConvergence`] if any element hits the sweep cap.
    pub fn column_currents_batch(
        &self,
        g: &ConductanceMatrix,
        vs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>> {
        let rows = g.rows();
        for (idx, v) in vs.iter().enumerate() {
            if v.len() != rows {
                return Err(SolveError::Dimension(format!(
                    "crossbar has {rows} rows but batch element {idx} carries {} input voltages",
                    v.len()
                )));
            }
            if v.iter().any(|&x| x < 0.0) {
                return Err(SolveError::Dimension(format!(
                    "column currents require non-negative input voltages (batch element {idx})"
                )));
            }
        }
        let solved = self.solve_nodes_batch(g, vs)?;
        solved
            .into_iter()
            .map(|nodes| {
                if !nodes.stats.converged {
                    return Err(SolveError::NoConvergence {
                        iterations: nodes.stats.iterations,
                        residual: nodes.stats.residual,
                    });
                }
                self.currents_of(g, &nodes)
            })
            .collect()
    }

    /// Column currents read off already-solved node voltages — the pure
    /// sense-resistor read-out shared by [`NonIdealSolver::column_currents`]
    /// and the cache-replay path (no per-synapse division, so it accepts
    /// any input sign).
    ///
    /// # Errors
    ///
    /// [`SolveError::Dimension`] if `nodes` does not match `g`'s shape.
    pub fn currents_of(&self, g: &ConductanceMatrix, nodes: &NodeVoltages) -> Result<Vec<f64>> {
        let (rows, cols) = (g.rows(), g.cols());
        if nodes.vr.len() != rows * cols || nodes.vc.len() != rows * cols {
            return Err(SolveError::Dimension(
                "node voltages do not match the crossbar shape".into(),
            ));
        }
        let g_sense = g_of(self.params.r_sense);
        Ok((0..cols)
            .map(|j| nodes.vc[(rows - 1) * cols + j] * g_sense)
            .collect())
    }

    /// Extracts effective conductances and column currents from solved node
    /// voltages (the pure read-out step of
    /// [`NonIdealSolver::effective_conductances`]).
    ///
    /// # Errors
    ///
    /// [`SolveError::Dimension`] on shape mismatch or non-positive read
    /// voltages (the per-synapse division needs `V_i > 0`).
    pub fn extract(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        nodes: &NodeVoltages,
    ) -> Result<EffectiveSolve> {
        let (rows, cols) = (g.rows(), g.cols());
        if v.len() != rows || nodes.vr.len() != rows * cols || nodes.vc.len() != rows * cols {
            return Err(SolveError::Dimension(
                "node voltages do not match the crossbar shape".into(),
            ));
        }
        if v.iter().any(|&x| x <= 0.0) {
            return Err(SolveError::Dimension(
                "effective-conductance extraction requires positive read voltages".into(),
            ));
        }
        let (vr, vc) = (&nodes.vr, &nodes.vc);
        let mut g_eff = ConductanceMatrix::filled(rows, cols, 0.0);
        for i in 0..rows {
            for j in 0..cols {
                let i_syn = g.at(i, j) * (vr[i * cols + j] - vc[i * cols + j]);
                g_eff.set(i, j, i_syn / v[i]);
            }
        }
        let g_sense = g_of(self.params.r_sense);
        let col_currents: Vec<f64> = (0..cols)
            .map(|j| vc[(rows - 1) * cols + j] * g_sense)
            .collect();
        let ideal_currents: Vec<f64> = (0..cols)
            .map(|j| (0..rows).map(|i| g.at(i, j) * v[i]).sum())
            .collect();
        Ok(EffectiveSolve {
            g_eff,
            col_currents,
            ideal_currents,
            stats: nodes.stats,
        })
    }

    /// Exact non-ideal column currents for an arbitrary non-negative input
    /// vector (activations after ReLU are non-negative). Unlike
    /// [`NonIdealSolver::effective_conductances`], no per-synapse division
    /// by `V_i` is needed, so zero inputs are fine.
    ///
    /// This is the ground truth against which the paper's methodology —
    /// folding non-idealities into effective conductances `G'` extracted at
    /// the nominal read voltage — is validated (ablation A6 in
    /// `xbar-bench`).
    ///
    /// # Errors
    ///
    /// * [`SolveError::Dimension`] if `v.len() != g.rows()` or any voltage
    ///   is negative;
    /// * solver errors from the underlying relaxation.
    pub fn column_currents(&self, g: &ConductanceMatrix, v: &[f64]) -> Result<Vec<f64>> {
        let (rows, cols) = (g.rows(), g.cols());
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but {} input voltages given",
                v.len()
            )));
        }
        if v.iter().any(|&x| x < 0.0) {
            return Err(SolveError::Dimension(
                "column currents require non-negative input voltages".into(),
            ));
        }
        let nodes = self.solve_nodes(g, v, None)?;
        if !nodes.stats.converged {
            return Err(SolveError::NoConvergence {
                iterations: nodes.stats.iterations,
                residual: nodes.stats.residual,
            });
        }
        let g_sense = g_of(self.params.r_sense);
        Ok((0..cols)
            .map(|j| nodes.vc[(rows - 1) * cols + j] * g_sense)
            .collect())
    }

    /// Dense nodal assembly + LU. Node order: all row nodes (`i·cols + j`)
    /// then all column nodes (`rows·cols + i·cols + j`).
    fn solve_dense(&self, g: &ConductanceMatrix, v: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let n = 2 * rows * cols;
        let (g_drv, g_wr, g_wc, g_sns) = (
            g_of(p.r_driver),
            g_of(p.r_wire_row),
            g_of(p.r_wire_col),
            g_of(p.r_sense),
        );
        let mut builder = CooBuilder::new(n);
        let mut b = vec![0.0f64; n];
        let rnode = |i: usize, j: usize| i * cols + j;
        let cnode = |i: usize, j: usize| rows * cols + i * cols + j;
        for i in 0..rows {
            for j in 0..cols {
                // Synapse between row and column nodes.
                builder.stamp_conductance(Some(rnode(i, j)), Some(cnode(i, j)), g.at(i, j));
                // Row wire to the right neighbour.
                if j + 1 < cols {
                    builder.stamp_conductance(Some(rnode(i, j)), Some(rnode(i, j + 1)), g_wr);
                }
                // Column wire to the node below.
                if i + 1 < rows {
                    builder.stamp_conductance(Some(cnode(i, j)), Some(cnode(i + 1, j)), g_wc);
                }
            }
            // Driver at the left end of the row: conductance to the source.
            builder.stamp_conductance(Some(rnode(i, 0)), None, g_drv);
            b[rnode(i, 0)] += g_drv * v[i];
        }
        for j in 0..cols {
            // Sense resistor to ground at the bottom of the column.
            builder.stamp_conductance(Some(cnode(rows - 1, j)), None, g_sns);
        }
        let dense = builder.build().to_dense();
        let x = LuDecomposition::new(&dense)?.solve(&b)?;
        let (vr, vc) = x.split_at(rows * cols);
        Ok((vr.to_vec(), vc.to_vec()))
    }

    /// Batched dense solve: the nodal matrix depends only on `g`, so it is
    /// assembled and LU-factorised once and back-substituted per element —
    /// bit-identical to running [`NonIdealSolver::solve_dense`] per element
    /// (same matrix, same factorisation, same substitutions).
    fn solve_dense_batch(
        &self,
        g: &ConductanceMatrix,
        vs: &[Vec<f64>],
    ) -> Result<Vec<NodeVoltages>> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let n = 2 * rows * cols;
        let (g_drv, g_wr, g_wc, g_sns) = (
            g_of(p.r_driver),
            g_of(p.r_wire_row),
            g_of(p.r_wire_col),
            g_of(p.r_sense),
        );
        let mut builder = CooBuilder::new(n);
        let rnode = |i: usize, j: usize| i * cols + j;
        let cnode = |i: usize, j: usize| rows * cols + i * cols + j;
        for i in 0..rows {
            for j in 0..cols {
                builder.stamp_conductance(Some(rnode(i, j)), Some(cnode(i, j)), g.at(i, j));
                if j + 1 < cols {
                    builder.stamp_conductance(Some(rnode(i, j)), Some(rnode(i, j + 1)), g_wr);
                }
                if i + 1 < rows {
                    builder.stamp_conductance(Some(cnode(i, j)), Some(cnode(i + 1, j)), g_wc);
                }
            }
            builder.stamp_conductance(Some(rnode(i, 0)), None, g_drv);
        }
        for j in 0..cols {
            builder.stamp_conductance(Some(cnode(rows - 1, j)), None, g_sns);
        }
        let dense = builder.build().to_dense();
        let lu = LuDecomposition::new(&dense)?;
        vs.iter()
            .map(|v| {
                let mut b = vec![0.0f64; n];
                for i in 0..rows {
                    b[rnode(i, 0)] += g_drv * v[i];
                }
                let x = lu.solve(&b)?;
                let (vr, vc) = x.split_at(rows * cols);
                Ok(NodeVoltages {
                    vr: vr.to_vec(),
                    vc: vc.to_vec(),
                    stats: SolveStats::direct(),
                })
            })
            .collect()
    }

    /// Vectorized line relaxation: the default implementation behind
    /// [`NonIdealSolver::solve_nodes`]. Same warm-start semantics, same
    /// convergence bookkeeping, and bit-identical trajectories to the
    /// scalar [`NonIdealSolver::solve_lines`] oracle — the per-line Thomas
    /// factorisations are hoisted out of the sweep loop (they depend only
    /// on `g` and the parameters) and each sweep phase runs its independent
    /// lines in contiguous lane chunks.
    fn solve_lines_vec(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        warm: Option<Warm<'_>>,
    ) -> Result<(Vec<f64>, Vec<f64>, SolveStats)> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let (mut vr, mut vc, verify_seed): (Vec<f64>, Vec<f64>, bool) = match warm {
            Some(w) => {
                if w.vr.len() != rows * cols || w.vc.len() != rows * cols {
                    return Err(SolveError::Dimension(format!(
                        "warm start has {}+{} node voltages but the crossbar needs {} each",
                        w.vr.len(),
                        w.vc.len(),
                        rows * cols
                    )));
                }
                (w.vr.to_vec(), w.vc.to_vec(), w.converged_seed)
            }
            None => (
                (0..rows * cols).map(|k| v[k / cols]).collect(),
                vec![0.0f64; rows * cols],
                false,
            ),
        };
        let seed = if verify_seed {
            Some((vr.clone(), vc.clone()))
        } else {
            None
        };
        // The scalar oracle re-derives every line's elimination
        // coefficients each sweep and would surface a singular pivot during
        // sweep 1; factorising up front hits the identical pivot (the bands
        // never change between sweeps).
        let factors = LineFactors::new(g, p)?;
        let tol = self.tolerance * p.v_read;
        let gs = g.as_slice();
        let mut work = vec![0.0f64; rows * cols];
        let mut sweeps = 0usize;
        loop {
            sweeps += 1;
            let max_delta = sweep_lines(&factors, rows, cols, gs, v, &mut vr, &mut vc, &mut work);
            if max_delta < tol {
                let stats = SolveStats {
                    iterations: sweeps,
                    residual: max_delta / p.v_read,
                    converged: true,
                };
                if sweeps == 1 {
                    if let Some((seed_vr, seed_vc)) = seed {
                        return Ok((seed_vr, seed_vc, stats));
                    }
                }
                return Ok((vr, vc, stats));
            }
            if sweeps >= self.max_sweeps {
                let stats = SolveStats {
                    iterations: sweeps,
                    residual: max_delta / p.v_read,
                    converged: false,
                };
                return Ok((vr, vc, stats));
            }
        }
    }

    /// Batched line relaxation: lanes run across batch elements, which all
    /// share one conductance matrix and therefore one set of per-line
    /// Thomas factorisations. Each element's operation sequence is exactly
    /// the scalar oracle's, so trajectories are bit-identical per element;
    /// elements converge (and are snapshotted) individually, and the sweep
    /// loop keeps running until every element converged or hit the cap.
    fn solve_lines_batch(
        &self,
        g: &ConductanceMatrix,
        vs: &[Vec<f64>],
    ) -> Result<Vec<NodeVoltages>> {
        let factors = LineFactors::new(g, &self.params)?;
        // Elements are independent lanes — the sweep never mixes them — so
        // the batch is processed in LANES-wide sub-batches. That caps the
        // interleaved working set at LANES·rows·cols voltages per array
        // (L2-resident for 64×64 tiles) instead of scaling with the caller's
        // batch, while each element's trajectory stays bit-identical to a
        // solo solve whatever the chunking.
        let (rows, cols) = (g.rows(), g.cols());
        let n = rows * cols;
        // One scratch arena shared by every sub-batch: each chunk rewrites
        // the state it reads (vct is re-zeroed below), so reuse is invisible
        // — and it avoids faulting in ~half a megabyte of fresh pages per
        // chunk.
        let mut scratch = BatchScratch {
            vt: vec![0.0f64; rows * LANES],
            vrt: vec![0.0f64; n * LANES],
            vct: vec![0.0f64; n * LANES],
            work: vec![0.0f64; ILINES * rows.max(cols) * LANES],
        };
        let mut out = Vec::with_capacity(vs.len());
        for chunk in vs.chunks(LANES) {
            out.extend(self.solve_lines_subbatch(g, &factors, chunk, &mut scratch));
        }
        Ok(out)
    }

    /// One lane-interleaved sub-batch of [`NonIdealSolver::solve_lines_batch`].
    fn solve_lines_subbatch(
        &self,
        g: &ConductanceMatrix,
        factors: &LineFactors,
        vs: &[Vec<f64>],
        scratch: &mut BatchScratch,
    ) -> Vec<NodeVoltages> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let n = rows * cols;
        let nb = vs.len();
        // Lane-interleaved state at a compile-time width: element b of node
        // k lives at [k·LANES + b], so every inner loop over the sub-batch
        // is unit-stride AND fully unrolled (no runtime trip count). A tail
        // sub-batch is padded with copies of element 0 — pad lanes ride
        // along and are discarded, they never touch a real lane.
        let BatchScratch { vt, vrt, vct, work } = scratch;
        for b in 0..LANES {
            let v = &vs[if b < nb { b } else { 0 }];
            for i in 0..rows {
                vt[i * LANES + b] = v[i];
            }
        }
        // Cold guess, as in the scalar path: source voltage on row nodes,
        // ground on column nodes. (`work` needs no reset — every position is
        // written before it is read.)
        vct.fill(0.0);
        for k in 0..n {
            let i = k / cols;
            vrt[k * LANES..(k + 1) * LANES].copy_from_slice(&vt[i * LANES..(i + 1) * LANES]);
        }
        let tol = self.tolerance * p.v_read;
        let gs = g.as_slice();
        let mut md = [0.0f64; LANES];
        let mut out: Vec<Option<NodeVoltages>> = vec![None; nb];
        let mut open = nb;
        let snapshot = |vrt: &[f64], vct: &[f64], b: usize, stats: SolveStats| NodeVoltages {
            vr: (0..n).map(|k| vrt[k * LANES + b]).collect(),
            vc: (0..n).map(|k| vct[k * LANES + b]).collect(),
            stats,
        };
        let mut sweeps = 0usize;
        loop {
            sweeps += 1;
            md.fill(0.0);
            sweep_lines_batch(factors, rows, cols, gs, vt, vrt, vct, work, &mut md);
            for b in 0..nb {
                // Converged elements keep being swept (their lanes ride
                // along harmlessly) but were snapshotted the sweep they
                // first met tolerance — exactly where a solo solve stops.
                if out[b].is_none() && md[b] < tol {
                    let stats = SolveStats {
                        iterations: sweeps,
                        residual: md[b] / p.v_read,
                        converged: true,
                    };
                    out[b] = Some(snapshot(vrt, vct, b, stats));
                    open -= 1;
                }
            }
            if open == 0 {
                break;
            }
            if sweeps >= self.max_sweeps {
                for b in 0..nb {
                    if out[b].is_none() {
                        let stats = SolveStats {
                            iterations: sweeps,
                            residual: md[b] / p.v_read,
                            converged: false,
                        };
                        out[b] = Some(snapshot(vrt, vct, b, stats));
                    }
                }
                break;
            }
        }
        out.into_iter()
            .map(|nodes| nodes.expect("filled"))
            .collect()
    }

    /// Alternating tridiagonal line solves, optionally warm-started.
    ///
    /// Never errors on hitting the sweep cap: the partial state is returned
    /// with `converged == false` so the caller can resume it.
    fn solve_lines(
        &self,
        g: &ConductanceMatrix,
        v: &[f64],
        warm: Option<Warm<'_>>,
    ) -> Result<(Vec<f64>, Vec<f64>, SolveStats)> {
        let p = &self.params;
        let (rows, cols) = (g.rows(), g.cols());
        let (g_drv, g_wr, g_wc, g_sns) = (
            g_of(p.r_driver),
            g_of(p.r_wire_row),
            g_of(p.r_wire_col),
            g_of(p.r_sense),
        );
        let (mut vr, mut vc, verify_seed): (Vec<f64>, Vec<f64>, bool) = match warm {
            Some(w) => {
                if w.vr.len() != rows * cols || w.vc.len() != rows * cols {
                    return Err(SolveError::Dimension(format!(
                        "warm start has {}+{} node voltages but the crossbar needs {} each",
                        w.vr.len(),
                        w.vc.len(),
                        rows * cols
                    )));
                }
                (w.vr.to_vec(), w.vc.to_vec(), w.converged_seed)
            }
            // Cold initial guess: full source voltage on rows, ground on
            // columns.
            None => (
                (0..rows * cols).map(|k| v[k / cols]).collect(),
                vec![0.0f64; rows * cols],
                false,
            ),
        };
        // Kept so a verified seed can be returned unchanged (bit-identical
        // reuse) when the trial sweep confirms it still meets tolerance.
        let seed = if verify_seed {
            Some((vr.clone(), vc.clone()))
        } else {
            None
        };
        let tol = self.tolerance * p.v_read;
        let mut sweeps = 0usize;
        // Line buffers reused across every line of every sweep: bands, the
        // tridiagonal solution, and its elimination scratch.
        let n = rows.max(cols);
        let mut sub = vec![0.0f64; n];
        let mut diag = vec![0.0f64; n];
        let mut sup = vec![0.0f64; n];
        let mut rhs = vec![0.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut scratch = vec![0.0f64; n];
        loop {
            sweeps += 1;
            let mut max_delta = 0.0f64;
            // Row lines: unknowns vr(i, 0..cols), with vc held fixed.
            for i in 0..rows {
                for j in 0..cols {
                    let left = if j == 0 { g_drv } else { g_wr };
                    let right = if j + 1 < cols { g_wr } else { 0.0 };
                    diag[j] = left + right + g.at(i, j);
                    sub[j] = if j == 0 { 0.0 } else { -g_wr };
                    sup[j] = if j + 1 < cols { -g_wr } else { 0.0 };
                    rhs[j] =
                        g.at(i, j) * vc[i * cols + j] + if j == 0 { g_drv * v[i] } else { 0.0 };
                }
                solve_tridiagonal_into(
                    &sub[..cols],
                    &diag[..cols],
                    &sup[..cols],
                    &rhs[..cols],
                    &mut x[..cols],
                    &mut scratch[..cols],
                )?;
                for (j, &val) in x[..cols].iter().enumerate() {
                    max_delta = max_delta.max((val - vr[i * cols + j]).abs());
                    vr[i * cols + j] = val;
                }
            }
            // Column lines: unknowns vc(0..rows, j), with vr held fixed.
            for j in 0..cols {
                for i in 0..rows {
                    let up = if i == 0 { 0.0 } else { g_wc };
                    let down = if i + 1 < rows { g_wc } else { g_sns };
                    diag[i] = up + down + g.at(i, j);
                    sub[i] = if i == 0 { 0.0 } else { -g_wc };
                    sup[i] = if i + 1 < rows { -g_wc } else { 0.0 };
                    rhs[i] = g.at(i, j) * vr[i * cols + j];
                }
                solve_tridiagonal_into(
                    &sub[..rows],
                    &diag[..rows],
                    &sup[..rows],
                    &rhs[..rows],
                    &mut x[..rows],
                    &mut scratch[..rows],
                )?;
                for (i, &val) in x[..rows].iter().enumerate() {
                    max_delta = max_delta.max((val - vc[i * cols + j]).abs());
                    vc[i * cols + j] = val;
                }
            }
            if max_delta < tol {
                let stats = SolveStats {
                    iterations: sweeps,
                    residual: max_delta / p.v_read,
                    converged: true,
                };
                if sweeps == 1 {
                    if let Some((seed_vr, seed_vc)) = seed {
                        // The verified seed moved less than the tolerance
                        // under a full sweep — it is still a fixed point by
                        // the same criterion a cold solve uses, so hand it
                        // back unchanged.
                        return Ok((seed_vr, seed_vc, stats));
                    }
                }
                return Ok((vr, vc, stats));
            }
            if sweeps >= self.max_sweeps {
                let stats = SolveStats {
                    iterations: sweeps,
                    residual: max_delta / p.v_read,
                    converged: false,
                };
                return Ok((vr, vc, stats));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized sweep kernels
// ---------------------------------------------------------------------------

/// f64 lanes per manually chunked vector operation. Eight doubles are two
/// AVX2 registers (or one AVX-512), enough for the autovectorizer to emit
/// full-width code while the remainder loop stays short.
pub const LANES: usize = 8;

/// Bucket bounds for the `sim/solve_batch_size` histogram.
const BATCH_SIZE_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Bucket bounds for the `sim/solve_batch_sweeps` per-element histogram.
const BATCH_SWEEP_BOUNDS: &[f64] = &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// `x[k] /= d[k]` in lane chunks.
#[inline(always)]
fn vdiv(x: &mut [f64], d: &[f64]) {
    let mut xs = x.chunks_exact_mut(LANES);
    let mut ds = d.chunks_exact(LANES);
    for (x, d) in (&mut xs).zip(&mut ds) {
        for l in 0..LANES {
            x[l] /= d[l];
        }
    }
    for (x, d) in xs.into_remainder().iter_mut().zip(ds.remainder()) {
        *x /= *d;
    }
}

/// Forward elimination step `cur[k] = (cur[k] - sub·prev[k]) / d[k]` in
/// lane chunks — the exact expression the scalar Thomas solve evaluates.
#[inline(always)]
fn vfwd(cur: &mut [f64], prev: &[f64], d: &[f64], sub: f64) {
    let mut cs = cur.chunks_exact_mut(LANES);
    let mut ps = prev.chunks_exact(LANES);
    let mut ds = d.chunks_exact(LANES);
    for ((c, p), d) in (&mut cs).zip(&mut ps).zip(&mut ds) {
        for l in 0..LANES {
            c[l] = (c[l] - sub * p[l]) / d[l];
        }
    }
    for ((c, p), d) in cs
        .into_remainder()
        .iter_mut()
        .zip(ps.remainder())
        .zip(ds.remainder())
    {
        *c = (*c - sub * *p) / *d;
    }
}

/// Back-substitution step `cur[k] -= cp[k]·next[k]` in lane chunks.
#[inline(always)]
fn vback(cur: &mut [f64], next: &[f64], cp: &[f64]) {
    let mut cs = cur.chunks_exact_mut(LANES);
    let mut ns = next.chunks_exact(LANES);
    let mut cps = cp.chunks_exact(LANES);
    for ((c, n), cp) in (&mut cs).zip(&mut ns).zip(&mut cps) {
        for l in 0..LANES {
            c[l] -= cp[l] * n[l];
        }
    }
    for ((c, n), cp) in cs
        .into_remainder()
        .iter_mut()
        .zip(ns.remainder())
        .zip(cps.remainder())
    {
        *c -= *cp * *n;
    }
}

/// `out[k] = a[k]·b[k]` in lane chunks.
#[inline(always)]
fn vmul(out: &mut [f64], a: &[f64], b: &[f64]) {
    let mut os = out.chunks_exact_mut(LANES);
    let mut as_ = a.chunks_exact(LANES);
    let mut bs = b.chunks_exact(LANES);
    for ((o, a), b) in (&mut os).zip(&mut as_).zip(&mut bs) {
        for l in 0..LANES {
            o[l] = a[l] * b[l];
        }
    }
    for ((o, a), b) in os
        .into_remainder()
        .iter_mut()
        .zip(as_.remainder())
        .zip(bs.remainder())
    {
        *o = *a * *b;
    }
}

/// Writes `x` over `state` and returns the largest `|x[k] - state[k]|`.
/// NaN deltas are ignored, matching the scalar oracle's `f64::max`
/// accumulation (`0.0.max(NaN) == 0.0`).
#[inline(always)]
fn vdelta_writeback(x: &[f64], state: &mut [f64]) -> f64 {
    let mut md = 0.0f64;
    for (x, s) in x.iter().zip(state.iter_mut()) {
        let d = (*x - *s).abs();
        if d > md {
            md = d;
        }
        *s = *x;
    }
    md
}

/// Scratch buffers for one batched line-relaxation solve, allocated once in
/// [`NonIdealSolver::solve_lines_batch`] and reused by every `LANES`-wide
/// sub-batch (each chunk rewrites everything it reads).
struct BatchScratch {
    /// Lane-interleaved input voltages, `[row·LANES + b]`.
    vt: Vec<f64>,
    /// Lane-interleaved row-node voltages, `[node·LANES + b]`.
    vrt: Vec<f64>,
    /// Lane-interleaved column-node voltages, `[node·LANES + b]`.
    vct: Vec<f64>,
    /// `ILINES` in-flight line solution buffers for the sweep kernel.
    work: Vec<f64>,
}

/// Per-line Thomas factorisations for one conductance matrix, hoisted out
/// of the sweep loop: the tridiagonal bands of every row and column line
/// depend only on the conductances and the circuit parameters, never on
/// the right-hand side, so the forward-elimination denominators and
/// coefficients (`c'`) are sweep-invariant. Stored position-major
/// (`[pos·lines + line]`) so the single-solve kernel reads contiguous
/// lanes across lines and the batch kernel broadcasts one scalar per
/// position.
struct LineFactors {
    /// `g` transposed (`[j·rows + i]`), for contiguous row-phase reads.
    g_t: Vec<f64>,
    /// Row-line elimination denominators, `[j·rows + i]`.
    row_denom: Vec<f64>,
    /// Row-line elimination coefficients `c'`, `[j·rows + i]`.
    row_cp: Vec<f64>,
    /// Column-line elimination denominators, `[i·cols + j]` (row-major).
    col_denom: Vec<f64>,
    /// Column-line elimination coefficients `c'`, `[i·cols + j]`.
    col_cp: Vec<f64>,
    g_drv: f64,
    g_wr: f64,
    g_wc: f64,
}

impl LineFactors {
    /// Mirrors `solve_tridiagonal_into`'s elimination recurrence exactly —
    /// `c'[0] = sup[0]/diag[0]`, `denom[i] = diag[i] - sub[i]·c'[i-1]`,
    /// `c'[i] = sup[i]/denom[i]` — line by line in the scalar oracle's
    /// order (row lines ascending, then column lines ascending), so a
    /// singular pivot surfaces with the identical error.
    fn new(g: &ConductanceMatrix, p: &CrossbarParams) -> Result<Self> {
        let (rows, cols) = (g.rows(), g.cols());
        let n = rows * cols;
        let (g_drv, g_wr, g_wc, g_sns) = (
            g_of(p.r_driver),
            g_of(p.r_wire_row),
            g_of(p.r_wire_col),
            g_of(p.r_sense),
        );
        let gs = g.as_slice();
        let mut g_t = vec![0.0f64; n];
        for i in 0..rows {
            for j in 0..cols {
                g_t[j * rows + i] = gs[i * cols + j];
            }
        }
        let mut row_denom = vec![0.0f64; n];
        let mut row_cp = vec![0.0f64; n];
        for i in 0..rows {
            let right0 = if 1 < cols { g_wr } else { 0.0 };
            let diag0 = g_drv + right0 + gs[i * cols];
            if diag0 == 0.0 {
                return Err(SolveError::Singular { pivot: 0 });
            }
            let sup0 = if 1 < cols { -g_wr } else { 0.0 };
            row_denom[i] = diag0;
            row_cp[i] = sup0 / diag0;
            for j in 1..cols {
                let right = if j + 1 < cols { g_wr } else { 0.0 };
                let diag = g_wr + right + gs[i * cols + j];
                let sub = -g_wr;
                let denom = diag - sub * row_cp[(j - 1) * rows + i];
                if denom == 0.0 {
                    return Err(SolveError::Singular { pivot: j });
                }
                let sup = if j + 1 < cols { -g_wr } else { 0.0 };
                row_denom[j * rows + i] = denom;
                row_cp[j * rows + i] = sup / denom;
            }
        }
        let mut col_denom = vec![0.0f64; n];
        let mut col_cp = vec![0.0f64; n];
        for j in 0..cols {
            let down0 = if 1 < rows { g_wc } else { g_sns };
            let diag0 = 0.0 + down0 + gs[j];
            if diag0 == 0.0 {
                return Err(SolveError::Singular { pivot: 0 });
            }
            let sup0 = if 1 < rows { -g_wc } else { 0.0 };
            col_denom[j] = diag0;
            col_cp[j] = sup0 / diag0;
            for i in 1..rows {
                let down = if i + 1 < rows { g_wc } else { g_sns };
                let diag = g_wc + down + gs[i * cols + j];
                let sub = -g_wc;
                let denom = diag - sub * col_cp[(i - 1) * cols + j];
                if denom == 0.0 {
                    return Err(SolveError::Singular { pivot: i });
                }
                let sup = if i + 1 < rows { -g_wc } else { 0.0 };
                col_denom[i * cols + j] = denom;
                col_cp[i * cols + j] = sup / denom;
            }
        }
        Ok(Self {
            g_t,
            row_denom,
            row_cp,
            col_denom,
            col_cp,
            g_drv,
            g_wr,
            g_wc,
        })
    }
}

/// One Gauss–Seidel sweep of a single solve: the row phase runs all row
/// lines lane-parallel (position-major layout, lanes across rows), the
/// column phase all column lines (row-major layout is already
/// position-major there). Returns the sweep's max voltage delta — the same
/// value the scalar oracle accumulates, since `max` over non-NaN deltas is
/// order-independent.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn sweep_lines_impl(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    v: &[f64],
    vr: &mut [f64],
    vc: &mut [f64],
    work: &mut [f64],
) -> f64 {
    if rows == 0 || cols == 0 {
        return 0.0;
    }
    let mut max_delta = 0.0f64;
    // --- Row phase: unknowns vr(i, ·), vc held fixed -----------------------
    let sub_r = -f.g_wr;
    for j in 0..cols {
        let wj = &mut work[j * rows..(j + 1) * rows];
        let gj = &f.g_t[j * rows..(j + 1) * rows];
        if j == 0 {
            for i in 0..rows {
                wj[i] = gj[i] * vc[i * cols] + f.g_drv * v[i];
            }
        } else {
            // The literal `+ 0.0` matches the scalar oracle's rhs term for
            // j > 0, which normalises a -0.0 product to +0.0.
            for i in 0..rows {
                wj[i] = gj[i] * vc[i * cols + j] + 0.0;
            }
        }
    }
    vdiv(&mut work[..rows], &f.row_denom[..rows]);
    for j in 1..cols {
        let (prev, cur) = work[(j - 1) * rows..(j + 1) * rows].split_at_mut(rows);
        vfwd(cur, prev, &f.row_denom[j * rows..(j + 1) * rows], sub_r);
    }
    for j in (0..cols - 1).rev() {
        let (cur, next) = work[j * rows..(j + 2) * rows].split_at_mut(rows);
        vback(cur, next, &f.row_cp[j * rows..(j + 1) * rows]);
    }
    for j in 0..cols {
        let xj = &work[j * rows..(j + 1) * rows];
        for i in 0..rows {
            let d = (xj[i] - vr[i * cols + j]).abs();
            if d > max_delta {
                max_delta = d;
            }
            vr[i * cols + j] = xj[i];
        }
    }
    // --- Column phase: unknowns vc(·, j), vr held fixed --------------------
    let sub_c = -f.g_wc;
    let n = rows * cols;
    vmul(&mut work[..n], gs, vr);
    vdiv(&mut work[..cols], &f.col_denom[..cols]);
    for i in 1..rows {
        let (prev, cur) = work[(i - 1) * cols..(i + 1) * cols].split_at_mut(cols);
        vfwd(cur, prev, &f.col_denom[i * cols..(i + 1) * cols], sub_c);
    }
    for i in (0..rows - 1).rev() {
        let (cur, next) = work[i * cols..(i + 2) * cols].split_at_mut(cols);
        vback(cur, next, &f.col_cp[i * cols..(i + 1) * cols]);
    }
    let d = vdelta_writeback(&work[..n], vc);
    if d > max_delta {
        max_delta = d;
    }
    max_delta
}

/// One Gauss–Seidel sweep of a batched solve: lanes run across the LANES
/// sub-batch elements (`[node·LANES + b]` interleave), each line's
/// factorisation scalar broadcast over the whole sub-batch. The lane width
/// is a compile-time constant, so every inner lane loop unrolls into
/// straight-line SIMD with no per-loop trip-count overhead. Accumulates
/// each element's max voltage delta into `md`.
// needless_range_loop: the `s in 0..live` loops index a fixed array of
// slot buffers by position on purpose — the interleave order across the
// in-flight lines is the whole point of the kernel.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
#[inline(always)]
fn sweep_lines_batch_impl(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    vt: &[f64],
    vrt: &mut [f64],
    vct: &mut [f64],
    work: &mut [f64],
    md: &mut [f64; LANES],
) {
    if rows == 0 || cols == 0 {
        return;
    }
    let (vtl, _) = vt.as_chunks::<LANES>();
    let (vrl, _) = vrt.as_chunks_mut::<LANES>();
    let (vcl, _) = vct.as_chunks_mut::<LANES>();
    let (wl, _) = work.as_chunks_mut::<LANES>();
    // ILINES independent lines are kept in flight per phase: the Thomas
    // forward sweep is a serial dependency chain with a division at every
    // step, so a single line runs at division *latency*; interleaving the
    // chains of ILINES lines (they never read each other's unknowns within
    // a phase) lets the divider run at *throughput*. Per-element arithmetic
    // is untouched — only the schedule across lines changes.
    let (w0, rest) = wl.split_at_mut(rows.max(cols));
    let (w1, rest) = rest.split_at_mut(rows.max(cols));
    let (w2, rest) = rest.split_at_mut(rows.max(cols));
    let (w3, _) = rest.split_at_mut(rows.max(cols));
    let mut slots = [w0, w1, w2, w3];
    // --- Row phase ---------------------------------------------------------
    let sub_r = -f.g_wr;
    let mut i0 = 0usize;
    while i0 < rows {
        let live = ILINES.min(rows - i0);
        for s in 0..live {
            let i = i0 + s;
            let w = &mut slots[s];
            for j in 0..cols {
                let vcn = &vcl[i * cols + j];
                let gij = gs[i * cols + j];
                if j == 0 {
                    let vi = &vtl[i];
                    for b in 0..LANES {
                        w[j][b] = gij * vcn[b] + f.g_drv * vi[b];
                    }
                } else {
                    // Literal `+ 0.0` as in the scalar oracle's rhs for
                    // j > 0.
                    for b in 0..LANES {
                        w[j][b] = gij * vcn[b] + 0.0;
                    }
                }
            }
            let d0 = f.row_denom[i];
            for x in w[0].iter_mut() {
                *x /= d0;
            }
        }
        for j in 1..cols {
            for s in 0..live {
                let (prev, cur) = slots[s].split_at_mut(j);
                fwd_lanes(
                    &mut cur[0],
                    &prev[j - 1],
                    f.row_denom[j * rows + i0 + s],
                    sub_r,
                );
            }
        }
        for j in (0..cols - 1).rev() {
            for s in 0..live {
                let (cur, next) = slots[s].split_at_mut(j + 1);
                back_lanes(&mut cur[j], &next[0], f.row_cp[j * rows + i0 + s]);
            }
        }
        for s in 0..live {
            let i = i0 + s;
            for j in 0..cols {
                let x = &slots[s][j];
                let dst = &mut vrl[i * cols + j];
                for b in 0..LANES {
                    let d = (x[b] - dst[b]).abs();
                    if d > md[b] {
                        md[b] = d;
                    }
                    dst[b] = x[b];
                }
            }
        }
        i0 += live;
    }
    // --- Column phase ------------------------------------------------------
    let sub_c = -f.g_wc;
    let mut j0 = 0usize;
    while j0 < cols {
        let live = ILINES.min(cols - j0);
        for s in 0..live {
            let j = j0 + s;
            let w = &mut slots[s];
            for i in 0..rows {
                let vrn = &vrl[i * cols + j];
                let gij = gs[i * cols + j];
                for b in 0..LANES {
                    w[i][b] = gij * vrn[b];
                }
            }
            let d0 = f.col_denom[j];
            for x in w[0].iter_mut() {
                *x /= d0;
            }
        }
        for i in 1..rows {
            for s in 0..live {
                let (prev, cur) = slots[s].split_at_mut(i);
                fwd_lanes(
                    &mut cur[0],
                    &prev[i - 1],
                    f.col_denom[i * cols + j0 + s],
                    sub_c,
                );
            }
        }
        for i in (0..rows - 1).rev() {
            for s in 0..live {
                let (cur, next) = slots[s].split_at_mut(i + 1);
                back_lanes(&mut cur[i], &next[0], f.col_cp[i * cols + j0 + s]);
            }
        }
        for s in 0..live {
            let j = j0 + s;
            for i in 0..rows {
                let x = &slots[s][i];
                let dst = &mut vcl[i * cols + j];
                for b in 0..LANES {
                    let d = (x[b] - dst[b]).abs();
                    if d > md[b] {
                        md[b] = d;
                    }
                    dst[b] = x[b];
                }
            }
        }
        j0 += live;
    }
}

/// How many independent tridiagonal lines the batch sweep keeps in flight
/// (see [`sweep_lines_batch_impl`]): enough chains to hide the division
/// latency on every x86-64 generation in use, small enough that the live
/// working set stays register/L1-friendly.
const ILINES: usize = 4;

/// Forward elimination across one position's LANES batch lanes, with the
/// line's broadcast factorisation scalar — `cur = (cur − sub·prev) / d`,
/// the exact expression the scalar Thomas solve evaluates.
#[inline(always)]
fn fwd_lanes(cur: &mut [f64; LANES], prev: &[f64; LANES], d: f64, sub: f64) {
    for b in 0..LANES {
        cur[b] = (cur[b] - sub * prev[b]) / d;
    }
}

/// Back-substitution across one position's LANES batch lanes.
#[inline(always)]
fn back_lanes(cur: &mut [f64; LANES], next: &[f64; LANES], cp: f64) {
    for b in 0..LANES {
        cur[b] -= cp * next[b];
    }
}

/// Runtime-dispatched single-solve sweep: AVX2 build on x86-64 CPUs that
/// support it, portable build elsewhere. Both compile the identical IEEE
/// add/sub/mul/div sequence (FMA stays off), so results are bit-identical
/// across dispatch targets.
#[allow(clippy::too_many_arguments)]
fn sweep_lines(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    v: &[f64],
    vr: &mut [f64],
    vc: &mut [f64],
    work: &mut [f64],
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was verified at runtime just above.
            return unsafe { sweep_lines_avx512(f, rows, cols, gs, v, vr, vc, work) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { sweep_lines_avx2(f, rows, cols, gs, v, vr, vc, work) };
        }
    }
    sweep_lines_impl(f, rows, cols, gs, v, vr, vc, work)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_lines_avx512(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    v: &[f64],
    vr: &mut [f64],
    vc: &mut [f64],
    work: &mut [f64],
) -> f64 {
    sweep_lines_impl(f, rows, cols, gs, v, vr, vc, work)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_lines_avx2(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    v: &[f64],
    vr: &mut [f64],
    vc: &mut [f64],
    work: &mut [f64],
) -> f64 {
    sweep_lines_impl(f, rows, cols, gs, v, vr, vc, work)
}

/// Runtime-dispatched batch sweep; see [`sweep_lines`].
#[allow(clippy::too_many_arguments)]
fn sweep_lines_batch(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    vt: &[f64],
    vrt: &mut [f64],
    vct: &mut [f64],
    work: &mut [f64],
    md: &mut [f64; LANES],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was verified at runtime just above.
            return unsafe { sweep_lines_batch_avx512(f, rows, cols, gs, vt, vrt, vct, work, md) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was verified at runtime just above.
            return unsafe { sweep_lines_batch_avx2(f, rows, cols, gs, vt, vrt, vct, work, md) };
        }
    }
    sweep_lines_batch_impl(f, rows, cols, gs, vt, vrt, vct, work, md)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_lines_batch_avx512(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    vt: &[f64],
    vrt: &mut [f64],
    vct: &mut [f64],
    work: &mut [f64],
    md: &mut [f64; LANES],
) {
    sweep_lines_batch_impl(f, rows, cols, gs, vt, vrt, vct, work, md)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_lines_batch_avx2(
    f: &LineFactors,
    rows: usize,
    cols: usize,
    gs: &[f64],
    vt: &[f64],
    vrt: &mut [f64],
    vct: &mut [f64],
    work: &mut [f64],
    md: &mut [f64; LANES],
) {
    sweep_lines_batch_impl(f, rows, cols, gs, vt, vrt, vct, work, md)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_g(rows: usize, cols: usize, params: &CrossbarParams) -> ConductanceMatrix {
        ConductanceMatrix::filled(rows, cols, params.g_max())
    }

    #[test]
    fn ideal_crossbar_reproduces_dot_product() {
        let params = CrossbarParams::with_size(4).ideal();
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![0.25; 4];
        let out = solver.effective_conductances(&g, &v).unwrap();
        for (i_n, i_i) in out.col_currents.iter().zip(&out.ideal_currents) {
            assert!((i_n - i_i).abs() / i_i < 1e-5, "{i_n} vs {i_i}");
        }
        for (e, p) in out.g_eff.as_slice().iter().zip(g.as_slice()) {
            assert!((e - p).abs() / p < 1e-5);
        }
    }

    #[test]
    fn line_relaxation_matches_dense_exact() {
        let params = CrossbarParams::with_size(6);
        let mut g = ConductanceMatrix::filled(6, 6, 0.0);
        let mut s = 9u64;
        for i in 0..6 {
            for j in 0..6 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let frac = (s % 1000) as f64 / 1000.0;
                g.set(
                    i,
                    j,
                    params.g_min() + frac * (params.g_max() - params.g_min()),
                );
            }
        }
        let v = vec![params.v_read; 6];
        let exact = NonIdealSolver::new(params, SolveMethod::DenseExact)
            .effective_conductances(&g, &v)
            .unwrap();
        let lines = NonIdealSolver::new(params, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .unwrap();
        for (a, b) in exact.g_eff.as_slice().iter().zip(lines.g_eff.as_slice()) {
            assert!((a - b).abs() / a.abs().max(1e-12) < 1e-5, "{a} vs {b}");
        }
        for (a, b) in exact.col_currents.iter().zip(&lines.col_currents) {
            assert!((a - b).abs() / a < 1e-5);
        }
    }

    #[test]
    fn parasitics_always_lose_current() {
        let params = CrossbarParams::with_size(16);
        let g = uniform_g(16, 16, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 16];
        let out = solver.effective_conductances(&g, &v).unwrap();
        for (i_n, i_i) in out.col_currents.iter().zip(&out.ideal_currents) {
            assert!(i_n < i_i, "non-ideal current must be below ideal");
            assert!(*i_n > 0.0);
        }
    }

    #[test]
    fn larger_crossbars_have_larger_relative_drop() {
        let mut drops = Vec::new();
        for n in [8usize, 16, 32] {
            let params = CrossbarParams::with_size(n);
            let g = uniform_g(n, n, &params);
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            let v = vec![params.v_read; n];
            let out = solver.effective_conductances(&g, &v).unwrap();
            let nf: f64 = out
                .col_currents
                .iter()
                .zip(&out.ideal_currents)
                .map(|(n, i)| (i - n) / i)
                .sum::<f64>()
                / n as f64;
            drops.push(nf);
        }
        assert!(drops[0] < drops[1] && drops[1] < drops[2], "{drops:?}");
    }

    #[test]
    fn low_conductance_reduces_drop() {
        let params = CrossbarParams::with_size(16);
        let dense_g = uniform_g(16, 16, &params);
        let sparse_g = ConductanceMatrix::filled(16, 16, params.g_min());
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 16];
        let nf = |g: &ConductanceMatrix| {
            let out = solver.effective_conductances(g, &v).unwrap();
            out.col_currents
                .iter()
                .zip(&out.ideal_currents)
                .map(|(n, i)| (i - n) / i)
                .sum::<f64>()
                / 16.0
        };
        assert!(
            nf(&sparse_g) < nf(&dense_g),
            "low-G crossbar must suffer less IR drop"
        );
    }

    #[test]
    fn column_currents_accept_zero_inputs() {
        let params = CrossbarParams::with_size(6);
        let g = uniform_g(6, 6, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![0.0, 0.25, 0.0, 0.25, 0.0, 0.25];
        let currents = solver.column_currents(&g, &v).unwrap();
        assert!(currents.iter().all(|&i| i > 0.0));
        // Negative inputs rejected.
        assert!(solver.column_currents(&g, &[-0.1; 6]).is_err());
    }

    #[test]
    fn column_currents_match_effective_solve_at_nominal_input() {
        let params = CrossbarParams::with_size(8);
        let g = uniform_g(8, 8, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 8];
        let exact = solver.column_currents(&g, &v).unwrap();
        let eff = solver.effective_conductances(&g, &v).unwrap();
        for (a, b) in exact.iter().zip(&eff.col_currents) {
            assert!((a - b).abs() / a < 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn effective_g_approximation_is_close_for_varied_inputs() {
        // The paper's methodology folds non-idealities into G' extracted at
        // the nominal read voltage; for a different input pattern the
        // approximation error should be small but non-zero.
        let params = CrossbarParams::with_size(8);
        let g = uniform_g(8, 8, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let nominal = vec![params.v_read; 8];
        let eff = solver.effective_conductances(&g, &nominal).unwrap();
        // Half the rows active.
        let v: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { params.v_read } else { 0.0 })
            .collect();
        let exact = solver.column_currents(&g, &v).unwrap();
        for j in 0..8 {
            let approx: f64 = (0..8).map(|i| eff.g_eff.at(i, j) * v[i]).sum();
            let rel = (approx - exact[j]).abs() / exact[j];
            assert!(rel < 0.05, "approximation should be within 5%: {rel}");
        }
    }

    fn random_g(n: usize, params: &CrossbarParams, mut s: u64) -> ConductanceMatrix {
        let mut g = ConductanceMatrix::filled(n, n, 0.0);
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let frac = (s % 1000) as f64 / 1000.0;
                g.set(
                    i,
                    j,
                    params.g_min() + frac * (params.g_max() - params.g_min()),
                );
            }
        }
        g
    }

    #[test]
    fn warm_resume_reproduces_cold_trajectory_bitwise() {
        let params = CrossbarParams::with_size(12);
        let g = random_g(12, &params, 21);
        let v = vec![params.v_read; 12];
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let cold = solver.solve_nodes(&g, &v, None).unwrap();
        assert!(cold.stats.converged);
        let total = cold.stats.iterations;
        assert!(total >= 2);
        // Stop partway, then resume: line relaxation is deterministic, so
        // the resumed trajectory must land on the cold answer bit-for-bit.
        let mut partial_solver = solver;
        partial_solver.max_sweeps = total - 1;
        let partial = partial_solver.solve_nodes(&g, &v, None).unwrap();
        assert!(!partial.stats.converged);
        let resumed = solver.solve_nodes(&g, &v, Some(partial.warm())).unwrap();
        assert!(resumed.stats.converged);
        assert_eq!(resumed.vr, cold.vr);
        assert_eq!(resumed.vc, cold.vc);
        assert_eq!(
            partial.stats.iterations + resumed.stats.iterations,
            total,
            "split trajectory must cover the cold sweep count exactly"
        );
    }

    #[test]
    fn verified_seed_is_returned_unchanged() {
        let params = CrossbarParams::with_size(10);
        let g = random_g(10, &params, 33);
        let v = vec![params.v_read; 10];
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let cold = solver.solve_nodes(&g, &v, None).unwrap();
        assert!(cold.stats.converged);
        let reused = solver.solve_nodes(&g, &v, Some(cold.warm())).unwrap();
        // One verifying sweep, then the seed handed back bit-identical.
        assert_eq!(reused.stats.iterations, 1);
        assert_eq!(reused.vr, cold.vr);
        assert_eq!(reused.vc, cold.vc);
    }

    #[test]
    fn warm_start_with_wrong_shape_is_rejected() {
        let params = CrossbarParams::with_size(4);
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let short = vec![0.0; 7];
        let warm = Warm {
            vr: &short,
            vc: &short,
            converged_seed: false,
        };
        assert!(matches!(
            solver.solve_nodes(&g, &[0.25; 4], Some(warm)),
            Err(SolveError::Dimension(_))
        ));
    }

    #[test]
    fn try_new_rejects_invalid_params() {
        let mut params = CrossbarParams::with_size(4);
        params.r_driver = -1.0;
        assert!(NonIdealSolver::try_new(params, SolveMethod::LineRelaxation).is_err());
        assert!(
            NonIdealSolver::try_new(CrossbarParams::with_size(4), SolveMethod::LineRelaxation)
                .is_ok()
        );
    }

    #[test]
    fn input_validation() {
        let params = CrossbarParams::with_size(4);
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        assert!(solver.effective_conductances(&g, &[0.25; 3]).is_err());
        assert!(solver
            .effective_conductances(&g, &[0.25, 0.25, 0.25, 0.0])
            .is_err());
    }

    #[test]
    fn effective_conductances_follow_ir_drop_gradient() {
        // Rows farther along the column (higher i) see less degradation at
        // the sense end... but more wire in between; the clear invariant is
        // that all effective conductances are below programmed ones.
        let params = CrossbarParams::with_size(8);
        let g = uniform_g(8, 8, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let v = vec![params.v_read; 8];
        let out = solver.effective_conductances(&g, &v).unwrap();
        for (e, p) in out.g_eff.as_slice().iter().zip(g.as_slice()) {
            assert!(e < p);
            assert!(*e > 0.0);
        }
    }

    fn random_g_rect(
        rows: usize,
        cols: usize,
        params: &CrossbarParams,
        mut s: u64,
    ) -> ConductanceMatrix {
        let mut g = ConductanceMatrix::filled(rows, cols, 0.0);
        for i in 0..rows {
            for j in 0..cols {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let frac = (s % 1000) as f64 / 1000.0;
                g.set(
                    i,
                    j,
                    params.g_min() + frac * (params.g_max() - params.g_min()),
                );
            }
        }
        g
    }

    #[test]
    fn vectorized_path_matches_scalar_oracle_bitwise() {
        // Sizes deliberately off the lane width (LANES = 8): 3, 5, 12, 13.
        for n in [3usize, 5, 8, 12, 13] {
            let params = CrossbarParams::with_size(n);
            let g = random_g(n, &params, 7 + n as u64);
            let v = vec![params.v_read; n];
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            let vec_path = solver.solve_nodes(&g, &v, None).unwrap();
            let scalar = solver.solve_nodes_scalar(&g, &v, None).unwrap();
            assert_eq!(vec_path.vr, scalar.vr, "vr diverged at n={n}");
            assert_eq!(vec_path.vc, scalar.vc, "vc diverged at n={n}");
            assert_eq!(vec_path.stats, scalar.stats, "stats diverged at n={n}");
        }
    }

    #[test]
    fn vectorized_path_matches_scalar_on_rectangular_tiles() {
        let params = CrossbarParams::with_size(16);
        for (rows, cols) in [(5usize, 11usize), (11, 5), (1, 9), (9, 1), (1, 1)] {
            let g = random_g_rect(rows, cols, &params, 1000 + (rows * 31 + cols) as u64);
            let v = vec![params.v_read; rows];
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            let vec_path = solver.solve_nodes(&g, &v, None).unwrap();
            let scalar = solver.solve_nodes_scalar(&g, &v, None).unwrap();
            assert_eq!(vec_path.vr, scalar.vr, "vr diverged at {rows}x{cols}");
            assert_eq!(vec_path.vc, scalar.vc, "vc diverged at {rows}x{cols}");
            assert_eq!(vec_path.stats, scalar.stats);
        }
    }

    #[test]
    fn vectorized_warm_paths_match_scalar_oracle() {
        let params = CrossbarParams::with_size(12);
        let g = random_g(12, &params, 55);
        let v = vec![params.v_read; 12];
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let cold = solver.solve_nodes_scalar(&g, &v, None).unwrap();
        assert!(cold.stats.converged && cold.stats.iterations >= 2);
        // Resume semantics: starve, then resume through both paths.
        let mut starved = solver;
        starved.max_sweeps = cold.stats.iterations - 1;
        let partial = starved.solve_nodes(&g, &v, None).unwrap();
        let resumed_vec = solver.solve_nodes(&g, &v, Some(partial.warm())).unwrap();
        let resumed_scalar = solver
            .solve_nodes_scalar(&g, &v, Some(partial.warm()))
            .unwrap();
        assert_eq!(resumed_vec.vr, resumed_scalar.vr);
        assert_eq!(resumed_vec.vc, resumed_scalar.vc);
        assert_eq!(resumed_vec.stats, resumed_scalar.stats);
        // Verify semantics: a converged seed is returned unchanged by both.
        let verified_vec = solver.solve_nodes(&g, &v, Some(cold.warm())).unwrap();
        let verified_scalar = solver
            .solve_nodes_scalar(&g, &v, Some(cold.warm()))
            .unwrap();
        assert_eq!(verified_vec.vr, cold.vr);
        assert_eq!(verified_vec.vr, verified_scalar.vr);
        assert_eq!(verified_vec.vc, verified_scalar.vc);
        assert_eq!(verified_vec.stats, verified_scalar.stats);
    }

    #[test]
    fn batch_solve_matches_scalar_oracle_bitwise() {
        let n = 13usize; // off the lane width
        let params = CrossbarParams::with_size(16);
        let g = random_g(n, &params, 99);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let vs: Vec<Vec<f64>> = vec![
            vec![params.v_read; n],
            (0..n)
                .map(|i| if i % 2 == 0 { params.v_read } else { 0.0 })
                .collect(),
            (0..n)
                .map(|i| (i + 1) as f64 / n as f64 * params.v_read)
                .collect(),
            vec![0.0; n],
            vec![params.v_read * 0.125; n],
        ];
        let batch = solver.solve_nodes_batch(&g, &vs).unwrap();
        assert_eq!(batch.len(), vs.len());
        for (b, v) in vs.iter().enumerate() {
            let solo = solver.solve_nodes_scalar(&g, v, None).unwrap();
            assert_eq!(batch[b].vr, solo.vr, "vr diverged for element {b}");
            assert_eq!(batch[b].vc, solo.vc, "vc diverged for element {b}");
            assert_eq!(batch[b].stats, solo.stats, "stats diverged for element {b}");
        }
    }

    /// Property sweep: rectangular tiles off the lane width × batch sizes
    /// spanning under, at, and past a full lane chunk — the batched solver
    /// must stay bitwise on the scalar oracle everywhere, including the
    /// sub-batch tail padding paths.
    #[test]
    fn property_batch_solve_matches_oracle_across_shapes_and_batch_sizes() {
        let params = CrossbarParams::with_size(16);
        for (rows, cols) in [(5usize, 11usize), (11, 5), (9, 9), (1, 7)] {
            let g = random_g_rect(rows, cols, &params, 4242 + (rows * 131 + cols) as u64);
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            for nb in [1usize, 2, 7, 32] {
                let mut s = (rows * 1_000_003 + cols * 1009 + nb) as u64 | 1;
                let vs: Vec<Vec<f64>> = (0..nb)
                    .map(|_| {
                        (0..rows)
                            .map(|_| {
                                s ^= s << 13;
                                s ^= s >> 7;
                                s ^= s << 17;
                                (s % 1000) as f64 / 999.0 * params.v_read
                            })
                            .collect()
                    })
                    .collect();
                let batch = solver.solve_nodes_batch(&g, &vs).unwrap();
                for (b, v) in vs.iter().enumerate() {
                    let solo = solver.solve_nodes_scalar(&g, v, None).unwrap();
                    assert_eq!(batch[b].vr, solo.vr, "{rows}x{cols} nb={nb} el {b}: vr");
                    assert_eq!(batch[b].vc, solo.vc, "{rows}x{cols} nb={nb} el {b}: vc");
                    assert_eq!(batch[b].stats, solo.stats, "{rows}x{cols} nb={nb} el {b}");
                }
            }
        }
    }

    #[test]
    fn column_currents_batch_matches_singles_bitwise() {
        let n = 9usize;
        let params = CrossbarParams::with_size(16);
        let g = random_g(n, &params, 123);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let vs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..n)
                    .map(|i| if (i + k) % 3 == 0 { 0.0 } else { params.v_read })
                    .collect()
            })
            .collect();
        let batch = solver.column_currents_batch(&g, &vs).unwrap();
        for (b, v) in vs.iter().enumerate() {
            let solo = solver.column_currents(&g, v).unwrap();
            assert_eq!(batch[b], solo, "currents diverged for element {b}");
        }
        // Negative inputs rejected with the offending element named.
        let mut bad = vs.clone();
        bad[2][0] = -0.1;
        assert!(matches!(
            solver.column_currents_batch(&g, &bad),
            Err(SolveError::Dimension(_))
        ));
    }

    #[test]
    fn batch_dense_factorises_once_and_matches_singles() {
        let n = 5usize;
        let params = CrossbarParams::with_size(8);
        let g = random_g(n, &params, 8);
        let solver = NonIdealSolver::new(params, SolveMethod::DenseExact);
        let vs: Vec<Vec<f64>> = vec![
            vec![params.v_read; n],
            (0..n).map(|i| (i + 1) as f64 * 0.05).collect(),
        ];
        let batch = solver.solve_nodes_batch(&g, &vs).unwrap();
        for (b, v) in vs.iter().enumerate() {
            let solo = solver.solve_nodes(&g, v, None).unwrap();
            assert_eq!(batch[b].vr, solo.vr);
            assert_eq!(batch[b].vc, solo.vc);
        }
    }

    #[test]
    fn batch_nonconvergence_is_reported_per_element() {
        let n = 12usize;
        let params = CrossbarParams::with_size(16);
        let g = random_g(n, &params, 42);
        let mut solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        solver.max_sweeps = 1;
        let vs = vec![vec![params.v_read; n]; 3];
        let batch = solver.solve_nodes_batch(&g, &vs).unwrap();
        for nodes in &batch {
            assert!(!nodes.stats.converged);
            assert_eq!(nodes.stats.iterations, 1);
        }
        assert!(matches!(
            solver.column_currents_batch(&g, &vs),
            Err(SolveError::NoConvergence { .. })
        ));
    }

    #[test]
    fn batch_rejects_mismatched_element_and_handles_empty() {
        let params = CrossbarParams::with_size(4);
        let g = uniform_g(4, 4, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        assert!(solver.solve_nodes_batch(&g, &[]).unwrap().is_empty());
        let vs = vec![vec![0.25; 4], vec![0.25; 3]];
        assert!(matches!(
            solver.solve_nodes_batch(&g, &vs),
            Err(SolveError::Dimension(_))
        ));
    }
}
