//! Crossbar device and circuit parameters.

use crate::drift::DriftModel;
use crate::faults::FaultModel;
use crate::program::ProgramConfig;

/// A descriptive error for a physically inconsistent [`CrossbarParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidParams(pub String);

impl std::fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid crossbar parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParams {}

/// Device and circuit parameters of a crossbar tile.
///
/// Defaults follow the device-agnostic setup of the paper's framework: a
/// 10× ON/OFF ratio ReRAM-like synapse (`Rmin = 100 kΩ`, `Rmax = 1 MΩ`,
/// the range used by RxNN-family evaluations), per-segment wire resistances
/// of 25 Ω (rows) and 10 Ω (columns), a 300 Ω driver, a 150 Ω sense path
/// and 10 % Gaussian programming variation. These values were calibrated
/// (see `DESIGN.md` and the `calibrate` bin in `xbar-bench`) so that the
/// mean non-ideality factor lands near 0.017 at 16×16 and 0.12 at 64×64 —
/// the regime in which the paper's accuracy-vs-crossbar-size trends
/// reproduce: the unpruned width-scaled VGG11 loses ~26 pp at 64×64
/// (paper: ~21 %) and the C/F-pruned one ~31 pp (paper: ~39 %), with the
/// pruned model worse at every crossbar size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarParams {
    /// Crossbar rows (word lines).
    pub rows: usize,
    /// Crossbar columns (bit lines).
    pub cols: usize,
    /// Minimum synapse resistance (ON state), Ω.
    pub r_min: f64,
    /// Maximum synapse resistance (OFF state), Ω.
    pub r_max: f64,
    /// Input driver resistance, Ω.
    pub r_driver: f64,
    /// Row wire resistance per crosspoint segment, Ω.
    pub r_wire_row: f64,
    /// Column wire resistance per crosspoint segment, Ω.
    pub r_wire_col: f64,
    /// Column sense resistance, Ω.
    pub r_sense: f64,
    /// Relative standard deviation of Gaussian conductance variation.
    pub sigma_variation: f64,
    /// Read voltage applied to every row during effective-conductance
    /// extraction, V.
    pub v_read: f64,
    /// Number of discrete programmable conductance levels between `Gmin`
    /// and `Gmax`; `0` models ideal analog programming (the paper's
    /// framework).
    pub levels: u32,
    /// Stuck-at device fault rates (defaults to fault-free).
    pub faults: FaultModel,
    /// Closed-loop program-and-verify write settings (defaults to open-loop
    /// programming: zero retries).
    pub program: ProgramConfig,
    /// Retention drift toward `G_off` over serving time (defaults to
    /// disabled: programmed conductances hold forever).
    pub drift: DriftModel,
}

impl Default for CrossbarParams {
    fn default() -> Self {
        Self {
            rows: 32,
            cols: 32,
            r_min: 100e3,
            r_max: 1e6,
            r_driver: 300.0,
            r_wire_row: 25.0,
            r_wire_col: 10.0,
            r_sense: 150.0,
            sigma_variation: 0.10,
            v_read: 0.25,
            levels: 0,
            faults: FaultModel::none(),
            program: ProgramConfig::default(),
            drift: DriftModel::disabled(),
        }
    }
}

impl CrossbarParams {
    /// Default parameters for a square `n × n` crossbar.
    pub fn with_size(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            ..Self::default()
        }
    }

    /// Maximum synapse conductance `Gmax = 1/Rmin`, S.
    pub fn g_max(&self) -> f64 {
        1.0 / self.r_min
    }

    /// Minimum synapse conductance `Gmin = 1/Rmax`, S.
    pub fn g_min(&self) -> f64 {
        1.0 / self.r_max
    }

    /// Device ON/OFF ratio `Rmax/Rmin`.
    pub fn on_off_ratio(&self) -> f64 {
        self.r_max / self.r_min
    }

    /// Disables all parasitics and variation — the ideal crossbar, useful
    /// for validating that the solver reduces to the analytic dot product.
    pub fn ideal(mut self) -> Self {
        self.r_driver = 0.0;
        self.r_wire_row = 0.0;
        self.r_wire_col = 0.0;
        self.r_sense = 0.0;
        self.sigma_variation = 0.0;
        self
    }

    /// Validates physical consistency.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`InvalidParams`] if any resistance is
    /// negative, `r_min >= r_max`, dimensions are zero, `v_read` is
    /// non-positive, or the fault / program-and-verify sub-configs are
    /// invalid.
    pub fn validate(&self) -> std::result::Result<(), InvalidParams> {
        if self.rows == 0 || self.cols == 0 {
            return Err(InvalidParams(format!(
                "crossbar must be non-empty, got {}x{}",
                self.rows, self.cols
            )));
        }
        if !(self.r_min > 0.0 && self.r_max > 0.0) {
            return Err(InvalidParams(format!(
                "synapse resistances must be positive, got r_min = {}, r_max = {}",
                self.r_min, self.r_max
            )));
        }
        if self.r_min >= self.r_max {
            return Err(InvalidParams(format!(
                "r_min must be below r_max, got r_min = {} >= r_max = {}",
                self.r_min, self.r_max
            )));
        }
        if self.r_driver < 0.0
            || self.r_wire_row < 0.0
            || self.r_wire_col < 0.0
            || self.r_sense < 0.0
        {
            return Err(InvalidParams(format!(
                "parasitic resistances must be non-negative, got driver = {}, \
                 wire_row = {}, wire_col = {}, sense = {}",
                self.r_driver, self.r_wire_row, self.r_wire_col, self.r_sense
            )));
        }
        if self.sigma_variation < 0.0 {
            return Err(InvalidParams(format!(
                "variation must be non-negative, got {}",
                self.sigma_variation
            )));
        }
        if self.v_read <= 0.0 {
            return Err(InvalidParams(format!(
                "read voltage must be positive, got {}",
                self.v_read
            )));
        }
        self.faults
            .validate()
            .map_err(|e| InvalidParams(e.to_string()))?;
        self.program.validate().map_err(InvalidParams)?;
        self.drift.validate().map_err(InvalidParams)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let p = CrossbarParams::default();
        p.validate().expect("defaults are valid");
        assert_eq!(p.on_off_ratio(), 10.0);
        assert!((p.g_max() - 1e-5).abs() < 1e-12);
        assert!((p.g_min() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn with_size_sets_both_dims() {
        let p = CrossbarParams::with_size(64);
        assert_eq!((p.rows, p.cols), (64, 64));
    }

    #[test]
    fn ideal_zeroes_parasitics() {
        let p = CrossbarParams::with_size(8).ideal();
        assert_eq!(p.r_driver, 0.0);
        assert_eq!(p.r_wire_row, 0.0);
        assert_eq!(p.sigma_variation, 0.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn inverted_resistances_are_rejected() {
        let mut p = CrossbarParams::default();
        p.r_min = p.r_max + 1.0;
        let err = p.validate().unwrap_err();
        assert!(
            err.to_string().contains("r_min must be below r_max"),
            "{err}"
        );
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn zero_rows_are_rejected() {
        let mut p = CrossbarParams::default();
        p.rows = 0;
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("non-empty"), "{err}");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_fault_rates_are_rejected_through_params() {
        let mut p = CrossbarParams::default();
        p.faults.stuck_at_gmin = 1.5;
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("fault rates"), "{err}");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_drift_model_is_rejected_through_params() {
        let mut p = CrossbarParams::default();
        p.drift = DriftModel::new(100.0, 1.0);
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("tau_fast"), "{err}");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_program_config_is_rejected_through_params() {
        let mut p = CrossbarParams::default();
        p.program.sigma_backoff = 0.0;
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("backoff"), "{err}");
    }
}
