//! # xbar-sim
//!
//! A device-agnostic, non-ideal memristive crossbar circuit simulator — the
//! functional-modelling stage of the paper's hardware evaluation framework
//! (Fig. 2).
//!
//! A crossbar tile holds a matrix of synaptic conductances `G` programmed
//! between `Gmin = 1/Rmax` and `Gmax = 1/Rmin`. Ideally the column currents
//! are `I_j = Σ_i G_ij·V_i`; in reality the circuit of Fig. 1(a) interposes
//! parasitic resistances — `Rdriver` at each row input, `Rwire_row` between
//! row crosspoints, `Rwire_col` between column crosspoints and `Rsense` at
//! each column output — and the devices carry Gaussian programming
//! variations. This crate:
//!
//! * models the full equivalent circuit with two nodes per crosspoint and
//!   solves the Kirchhoff nodal equations exactly ([`solve::SolveMethod::DenseExact`])
//!   or with a fast *line relaxation* (alternating exact tridiagonal solves
//!   along rows and columns, [`solve::SolveMethod::LineRelaxation`]) that
//!   converges in a handful of sweeps because wire conductances dominate
//!   synaptic ones;
//! * extracts *effective non-ideal conductances* `G'_ij = I_syn,ij / V_i`
//!   under a nominal read voltage, which fold the parasitic drops back into
//!   per-synapse values exactly as the paper converts `G'` back into
//!   non-ideal weights `W'`;
//! * applies Gaussian device variation ([`variation`]);
//! * computes the non-ideality factor `NF = (I_ideal − I_non-ideal)/I_ideal`
//!   ([`nf`]) used in Fig. 3(d);
//! * maps signed weights to differential conductance pairs and back
//!   ([`conductance`]).
//!
//! # Example
//!
//! ```
//! use xbar_sim::params::CrossbarParams;
//! use xbar_sim::solve::{NonIdealSolver, SolveMethod};
//! use xbar_sim::conductance::ConductanceMatrix;
//!
//! # fn main() -> Result<(), xbar_linalg::SolveError> {
//! let params = CrossbarParams::with_size(16);
//! let g = ConductanceMatrix::filled(16, 16, params.g_max());
//! let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
//! let v = vec![0.25; 16];
//! let out = solver.effective_conductances(&g, &v)?;
//! // Parasitics always lose current: every effective conductance is below
//! // the programmed one.
//! assert!(out.g_eff.as_slice().iter().zip(g.as_slice()).all(|(e, p)| e < p));
//! # Ok(())
//! # }
//! ```

pub mod analytic;
pub mod cache;
pub mod conductance;
pub mod drift;
pub mod faults;
pub mod ideal;
pub mod nf;
pub mod params;
pub mod program;
pub mod quantize;
pub mod slicing;
pub mod solve;
pub mod tile;
pub mod variation;

pub use cache::{clear_solve_cache, set_solve_cache_mode, solve_cache_mode, CacheMode};
pub use conductance::{ConductanceMatrix, MappingScale};
pub use drift::{DriftModel, ProgrammedPair};
pub use faults::{FaultKind, FaultModel};
pub use params::{CrossbarParams, InvalidParams};
pub use program::{FaultReport, ProgramConfig, StuckCell};
pub use solve::{NodeVoltages, NonIdealSolver, SolveMethod, Warm};
pub use tile::{
    simulate_tile, simulate_tile_seeded, solve_currents_batch, TileOutcome, TileSolveState,
};
