//! Bit-sliced weight mapping.
//!
//! A single memristive device programs only a few reliable levels, so
//! accelerators split each weight's magnitude into `S` base-`L` digits
//! ("slices"), map each slice onto its own differential crossbar pair, and
//! recombine the sensed outputs with weights `L^(S-1), …, L, 1`. With `S`
//! slices of `L` levels each the composite resolution is `L^S` levels while
//! every device still only needs `L`.
//!
//! Slicing interacts with non-idealities in a non-obvious way: the
//! most-significant slice dominates the recombined value, so IR drop on the
//! MSB crossbar hurts disproportionately, while LSB crossbars are nearly
//! free precision. The test suite quantifies both effects.

use crate::conductance::MappingScale;
use crate::params::CrossbarParams;
use crate::solve::SolveMethod;
use crate::tile::{simulate_tile, TileOutcome};
use xbar_linalg::Result;
use xbar_tensor::Tensor;

/// Configuration of a bit-sliced mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicingConfig {
    /// Number of slices per weight (1 = no slicing).
    pub slices: u32,
    /// Conductance levels per device within one slice (≥ 2).
    pub levels_per_slice: u32,
}

impl SlicingConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `slices ≥ 1` and `levels_per_slice ≥ 2`.
    pub fn validate(&self) {
        assert!(self.slices >= 1, "need at least one slice");
        assert!(
            self.levels_per_slice >= 2,
            "a slice needs at least two levels"
        );
    }

    /// Composite number of representable magnitude levels, `L^S`.
    pub fn composite_levels(&self) -> u64 {
        (self.levels_per_slice as u64).pow(self.slices)
    }
}

/// Result of simulating one weight tile with bit slicing.
#[derive(Debug, Clone)]
pub struct SlicedOutcome {
    /// The recombined non-ideal weights.
    pub weights: Tensor,
    /// Per-slice outcomes, most-significant first.
    pub slices: Vec<TileOutcome>,
}

impl SlicedOutcome {
    /// Mean NF across slices, weighted by each slice's recombination weight
    /// (the MSB slice dominates the composite error).
    pub fn weighted_nf(&self, levels_per_slice: u32) -> f64 {
        let l = levels_per_slice as f64;
        let mut total_w = 0.0;
        let mut acc = 0.0;
        for (k, s) in self.slices.iter().enumerate() {
            let w = l.powi((self.slices.len() - 1 - k) as i32);
            acc += w * s.nf();
            total_w += w;
        }
        if total_w > 0.0 {
            acc / total_w
        } else {
            0.0
        }
    }
}

/// Simulates one tile with bit-sliced mapping: the magnitude of each weight
/// (relative to the resolved scale) is decomposed into `S` base-`L` digits;
/// each digit tile is simulated on its own non-ideal differential pair (with
/// `L` programmable levels) and the read-back slices recombine.
///
/// # Errors
///
/// Propagates circuit-solver errors.
///
/// # Panics
///
/// Panics if the config is invalid or `tile` is not 2-D.
pub fn simulate_tile_sliced(
    tile: &Tensor,
    config: SlicingConfig,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
) -> Result<SlicedOutcome> {
    config.validate();
    assert_eq!(tile.ndim(), 2, "weight tile must be 2-D");
    let w_ref = scale.resolve(tile.abs_max(), layer_abs_max);
    let l = config.levels_per_slice as i64;
    let s = config.slices;
    let composite = config.composite_levels() as i64;
    // Integer magnitude per weight in [0, L^S - 1], keeping the sign.
    let quantised: Vec<i64> = tile
        .as_slice()
        .iter()
        .map(|&w| {
            let mag = ((w.abs() / w_ref).min(1.0) as f64 * (composite - 1) as f64).round() as i64;
            if w < 0.0 {
                -mag
            } else {
                mag
            }
        })
        .collect();
    // Decompose into digits, most-significant first, and simulate each digit
    // tile at its own (L-level) crossbar pair.
    let mut slice_params = *params;
    slice_params.levels = config.levels_per_slice;
    let mut outcomes: Vec<TileOutcome> = Vec::with_capacity(s as usize);
    for k in (0..s).rev() {
        let place = l.pow(k);
        let digit_tile = Tensor::from_vec(
            quantised
                .iter()
                .map(|&q| {
                    let digit = (q.abs() / place) % l;
                    (digit as f32 / (l - 1) as f32) * q.signum() as f32
                })
                .collect(),
            tile.shape(),
        )
        .expect("digit tile matches input shape");
        // Each digit is in [-1, 1]; map with a fixed unit scale so the digit
        // value maps linearly onto the L quantised levels.
        let outcome = simulate_tile(
            &digit_tile,
            MappingScale::Fixed(1.0),
            1.0,
            &slice_params,
            method,
            seed.wrapping_add(0x511C_E000 + k as u64),
        )?;
        outcomes.push(outcome);
    }
    // Recombine: w = w_ref · Σ_k digit_k · place_k / (L^S − 1) · (L−1)
    let mut weights = Tensor::zeros(tile.shape());
    for (idx, out) in outcomes.iter().enumerate() {
        let k = s as usize - 1 - idx; // significance of this slice
        let place = l.pow(k as u32) as f32;
        let factor = w_ref * place * (l - 1) as f32 / (composite - 1) as f32;
        for (dst, &v) in weights
            .as_mut_slice()
            .iter_mut()
            .zip(out.weights.as_slice())
        {
            *dst += v * factor;
        }
    }
    Ok(SlicedOutcome {
        weights,
        slices: outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_tile(n: usize, seed: u64) -> Tensor {
        let mut s = seed | 1;
        Tensor::from_fn(&[n, n], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0
        })
    }

    fn max_err(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn composite_levels_multiply() {
        let c = SlicingConfig {
            slices: 3,
            levels_per_slice: 4,
        };
        assert_eq!(c.composite_levels(), 64);
    }

    #[test]
    fn ideal_slicing_round_trips_to_composite_resolution() {
        let params = CrossbarParams::with_size(8).ideal();
        let tile = rand_tile(8, 3);
        let cfg = SlicingConfig {
            slices: 2,
            levels_per_slice: 8,
        };
        let out = simulate_tile_sliced(
            &tile,
            cfg,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        // Composite 64 levels → error bounded by one step.
        let step = 1.0 / 63.0;
        assert!(max_err(&tile, &out.weights) <= step + 1e-4);
    }

    #[test]
    fn more_slices_beat_one_coarse_device() {
        let params = CrossbarParams::with_size(8).ideal();
        let tile = rand_tile(8, 7);
        let run = |slices, levels| {
            let out = simulate_tile_sliced(
                &tile,
                SlicingConfig {
                    slices,
                    levels_per_slice: levels,
                },
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap();
            max_err(&tile, &out.weights)
        };
        // Two 4-level slices (16 composite levels) vs a single 4-level device.
        assert!(run(2, 4) < run(1, 4));
    }

    #[test]
    fn single_slice_matches_quantised_tile_sim() {
        let params = CrossbarParams::with_size(8).ideal();
        let tile = rand_tile(8, 11);
        let cfg = SlicingConfig {
            slices: 1,
            levels_per_slice: 8,
        };
        let sliced = simulate_tile_sliced(
            &tile,
            cfg,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        // One 8-level slice quantises to 8 levels on an ideal crossbar; the
        // error is bounded by half a step (rounding-boundary ties allowed).
        let step = 1.0 / 7.0;
        assert!(max_err(&tile, &sliced.weights) <= step / 2.0 + 1e-4);
        assert_eq!(sliced.slices.len(), 1);
    }

    #[test]
    fn weighted_nf_favours_msb() {
        let params = CrossbarParams::with_size(16); // non-ideal
        let tile = rand_tile(16, 13);
        let cfg = SlicingConfig {
            slices: 2,
            levels_per_slice: 4,
        };
        let out = simulate_tile_sliced(
            &tile,
            cfg,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            3,
        )
        .unwrap();
        let weighted = out.weighted_nf(4);
        let plain: f64 = out.slices.iter().map(|s| s.nf()).sum::<f64>() / out.slices.len() as f64;
        // Both sane, weighted emphasises slice 0.
        assert!(weighted > 0.0 && plain > 0.0);
        let msb_nf = out.slices[0].nf();
        assert!((weighted - msb_nf).abs() <= (plain - msb_nf).abs() + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn one_level_slice_rejected() {
        SlicingConfig {
            slices: 2,
            levels_per_slice: 1,
        }
        .validate();
    }
}
