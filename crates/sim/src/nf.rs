//! The non-ideality factor `NF = (I_ideal − I_non-ideal) / I_ideal`.
//!
//! NF is the paper's direct measure of crossbar non-ideality (Section II-A,
//! citing GENIEx): larger NF means a larger relative loss of dot-product
//! current, and Fig. 3(d) compares its growth with crossbar size for
//! unpruned vs C/F-pruned weight matrices.

use crate::solve::EffectiveSolve;

/// Per-column non-ideality factors of one solve. Columns whose ideal current
/// is (numerically) zero are skipped.
pub fn column_nf(solve: &EffectiveSolve) -> Vec<f64> {
    solve
        .ideal_currents
        .iter()
        .zip(&solve.col_currents)
        .filter(|(&ideal, _)| ideal.abs() > f64::MIN_POSITIVE)
        .map(|(&ideal, &actual)| (ideal - actual) / ideal)
        .collect()
}

/// Mean NF of one solve; `0.0` if no column carried current.
pub fn mean_nf(solve: &EffectiveSolve) -> f64 {
    let nfs = column_nf(solve);
    if nfs.is_empty() {
        0.0
    } else {
        nfs.iter().sum::<f64>() / nfs.len() as f64
    }
}

/// Running aggregate of NF across many tiles (Welford-free simple sums: NF
/// values are O(1) so plain accumulation is fine).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NfAccumulator {
    sum: f64,
    sum_sq: f64,
    count: usize,
}

impl NfAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one NF observation.
    pub fn push(&mut self, nf: f64) {
        self.sum += nf;
        self.sum_sq += nf * nf;
        self.count += 1;
    }

    /// Adds every per-column NF of a solve.
    pub fn push_solve(&mut self, solve: &EffectiveSolve) {
        for nf in column_nf(solve) {
            self.push(nf);
        }
    }

    /// Merges another accumulator (for parallel tile processing).
    pub fn merge(&mut self, other: &NfAccumulator) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean NF; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation; `0.0` when empty.
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conductance::ConductanceMatrix;

    fn fake_solve(ideal: Vec<f64>, actual: Vec<f64>) -> EffectiveSolve {
        EffectiveSolve {
            g_eff: ConductanceMatrix::filled(1, ideal.len(), 0.0),
            col_currents: actual,
            ideal_currents: ideal,
            stats: xbar_linalg::SolveStats::direct(),
        }
    }

    #[test]
    fn nf_of_perfect_solve_is_zero() {
        let s = fake_solve(vec![1.0, 2.0], vec![1.0, 2.0]);
        assert_eq!(column_nf(&s), vec![0.0, 0.0]);
        assert_eq!(mean_nf(&s), 0.0);
    }

    #[test]
    fn nf_measures_relative_loss() {
        let s = fake_solve(vec![2.0, 4.0], vec![1.0, 3.0]);
        let nfs = column_nf(&s);
        assert!((nfs[0] - 0.5).abs() < 1e-12);
        assert!((nfs[1] - 0.25).abs() < 1e-12);
        assert!((mean_nf(&s) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn zero_ideal_columns_are_skipped() {
        let s = fake_solve(vec![0.0, 2.0], vec![0.0, 1.0]);
        assert_eq!(column_nf(&s).len(), 1);
    }

    #[test]
    fn accumulator_mean_and_std() {
        let mut acc = NfAccumulator::new();
        acc.push(0.1);
        acc.push(0.3);
        assert_eq!(acc.count(), 2);
        assert!((acc.mean() - 0.2).abs() < 1e-12);
        assert!((acc.std() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let mut a = NfAccumulator::new();
        a.push(0.1);
        let mut b = NfAccumulator::new();
        b.push(0.3);
        b.push(0.5);
        a.merge(&b);
        let mut seq = NfAccumulator::new();
        for v in [0.1, 0.3, 0.5] {
            seq.push(v);
        }
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.std() - seq.std()).abs() < 1e-12);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = NfAccumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std(), 0.0);
    }
}
