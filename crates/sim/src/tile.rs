//! End-to-end simulation of one weight tile on a non-ideal crossbar pair.
//!
//! This is the per-tile unit of the paper's Fig. 2 pipeline: weights →
//! conductances (differential pair) → Gaussian variation → non-ideal circuit
//! solve → effective conductances `G'` → non-ideal weights `W'`, plus NF
//! statistics for Fig. 3(d).

use crate::conductance::{
    conductances_to_weights, weights_to_conductances, DifferentialPair, MappingScale,
};
use crate::nf::mean_nf;
use crate::params::CrossbarParams;
use crate::quantize::quantize_conductances;
use crate::solve::{NonIdealSolver, SolveMethod};
use crate::variation::apply_variation;
use xbar_linalg::Result;
use xbar_tensor::Tensor;

/// Result of simulating one tile.
#[derive(Debug, Clone)]
pub struct TileOutcome {
    /// The non-ideal weights `W'` read back from the crossbar pair.
    pub weights: Tensor,
    /// Mean NF over the positive array's columns.
    pub nf_pos: f64,
    /// Mean NF over the negative array's columns.
    pub nf_neg: f64,
    /// Fraction of devices (both arrays) within 1 % of `Gmin` — the
    /// low-conductance-synapse proportion the mitigations maximise.
    pub low_g_fraction: f64,
    /// Line-relaxation sweeps used (max of the two arrays).
    pub sweeps: usize,
}

impl TileOutcome {
    /// Mean NF over both arrays.
    pub fn nf(&self) -> f64 {
        0.5 * (self.nf_pos + self.nf_neg)
    }
}

/// Simulates one weight tile on a non-ideal differential crossbar pair.
///
/// * `tile` — `rows × cols` weights (padded with zeros to the full crossbar
///   size by the caller; zero cells sit at `Gmin` like unused devices);
/// * `scale`/`layer_abs_max` — weight→conductance reference (see
///   [`MappingScale`]);
/// * `seed` — deterministic variation seed (derive per tile).
///
/// # Errors
///
/// Propagates circuit-solver errors.
///
/// # Panics
///
/// Panics if `tile` is not 2-D.
pub fn simulate_tile(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
) -> Result<TileOutcome> {
    let mut pair = weights_to_conductances(tile, scale, layer_abs_max, params);
    let g_min = params.g_min();
    let low_g = {
        let tol = 0.01 * g_min;
        0.5 * (pair.pos.low_conductance_fraction(g_min, tol)
            + pair.neg.low_conductance_fraction(g_min, tol))
    };
    let g_max = params.g_max();
    quantize_conductances(&mut pair.pos, g_min, g_max, params.levels);
    quantize_conductances(&mut pair.neg, g_min, g_max, params.levels);
    apply_variation(&mut pair.pos, params.sigma_variation, g_min, seed);
    apply_variation(
        &mut pair.neg,
        params.sigma_variation,
        g_min,
        seed.wrapping_add(0x5DEECE66D),
    );
    // Stuck-at faults override whatever was programmed.
    params
        .faults
        .inject(&mut pair.pos, g_min, g_max, seed.wrapping_add(0xFA17_0001));
    params
        .faults
        .inject(&mut pair.neg, g_min, g_max, seed.wrapping_add(0xFA17_0002));
    let solver = NonIdealSolver::new(*params, method);
    let v = vec![params.v_read; tile.rows()];
    let pos_solve = solver.effective_conductances(&pair.pos, &v)?;
    let neg_solve = solver.effective_conductances(&pair.neg, &v)?;
    let outcome_pair = DifferentialPair {
        pos: pos_solve.g_eff.clone(),
        neg: neg_solve.g_eff.clone(),
        w_ref: pair.w_ref,
    };
    let weights = conductances_to_weights(&outcome_pair, params);
    Ok(TileOutcome {
        weights,
        nf_pos: mean_nf(&pos_solve),
        nf_neg: mean_nf(&neg_solve),
        low_g_fraction: low_g,
        sweeps: pos_solve.sweeps.max(neg_solve.sweeps),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_tile(rows: usize, cols: usize, seed: u64, amp: f32) -> Tensor {
        let mut s = seed;
        Tensor::from_fn(&[rows, cols], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0 * amp
        })
    }

    #[test]
    fn ideal_params_round_trip_weights() {
        let params = CrossbarParams::with_size(8).ideal();
        let tile = rand_tile(8, 8, 3, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        for (a, b) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert!(out.nf() < 1e-4);
    }

    #[test]
    fn non_ideal_tile_shrinks_weights_and_has_positive_nf() {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0; // isolate IR drop
        let tile = Tensor::ones(&[16, 16]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        assert!(out.nf() > 0.0);
        // All-positive tile: every non-ideal weight below the programmed 1.0.
        assert!(out.weights.as_slice().iter().all(|&w| w < 1.0 && w > 0.0));
    }

    #[test]
    fn bigger_tiles_suffer_more() {
        let mut nfs = Vec::new();
        for n in [8usize, 32] {
            let mut params = CrossbarParams::with_size(n);
            params.sigma_variation = 0.0;
            let tile = Tensor::ones(&[n, n]);
            let out = simulate_tile(
                &tile,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap();
            nfs.push(out.nf());
        }
        assert!(nfs[1] > nfs[0], "{nfs:?}");
    }

    #[test]
    fn low_magnitude_tiles_have_lower_nf() {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0;
        let strong = Tensor::ones(&[16, 16]);
        let weak = Tensor::filled(&[16, 16], 0.05);
        // Fixed scale so the weak tile genuinely maps to low conductances.
        let nf = |t: &Tensor| {
            simulate_tile(
                t,
                MappingScale::Fixed(1.0),
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap()
            .nf()
        };
        assert!(nf(&weak) < nf(&strong));
    }

    #[test]
    fn variation_is_deterministic_per_seed() {
        let params = CrossbarParams::with_size(8);
        let tile = rand_tile(8, 8, 11, 0.5);
        let a = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            5,
        )
        .unwrap();
        let b = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            5,
        )
        .unwrap();
        let c = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            6,
        )
        .unwrap();
        assert_eq!(a.weights, b.weights);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn quantization_degrades_round_trip_boundedly() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.levels = 8;
        let tile = rand_tile(8, 8, 21, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        // Max error bounded by half a quantization step per array (two
        // arrays → one step of the weight range).
        let step = 1.0 / 7.0;
        for (a, b) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn stuck_faults_change_weights() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.faults = crate::faults::FaultModel {
            stuck_at_gmin: 0.3,
            stuck_at_gmax: 0.0,
        };
        let tile = Tensor::ones(&[8, 8]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            1,
        )
        .unwrap();
        // Some positive weights got their pos device stuck at Gmin → ~0.
        let zeroed = out
            .weights
            .as_slice()
            .iter()
            .filter(|&&w| w.abs() < 1e-3)
            .count();
        assert!(
            zeroed > 5,
            "expected stuck devices to zero weights, got {zeroed}"
        );
    }

    #[test]
    fn zero_padded_tile_reports_high_low_g_fraction() {
        let params = CrossbarParams::with_size(8);
        let mut tile = Tensor::zeros(&[8, 8]);
        tile.set2(0, 0, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        assert!(out.low_g_fraction > 0.95);
    }
}
