//! End-to-end simulation of one weight tile on a non-ideal crossbar pair.
//!
//! This is the per-tile unit of the paper's Fig. 2 pipeline: weights →
//! conductances (differential pair) → Gaussian variation → non-ideal circuit
//! solve → effective conductances `G'` → non-ideal weights `W'`, plus NF
//! statistics for Fig. 3(d).

use crate::conductance::{
    conductances_to_weights, weights_to_conductances, ConductanceMatrix, DifferentialPair,
    MappingScale,
};
use crate::nf::column_nf;
use crate::params::CrossbarParams;
use crate::program::{program_array, ArrayKind, FaultReport};
use crate::quantize::quantize_conductances;
use crate::solve::{EffectiveSolve, NonIdealSolver, SolveMethod};
use xbar_linalg::{Result, SolveError, SolveStats};
use xbar_tensor::Tensor;

/// Bucket bounds (µs) for the per-tile circuit-solve latency histogram.
const TILE_SOLVE_US_BOUNDS: &[f64] = &[100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6];

/// Bucket bounds for the per-tile relaxation-sweep histogram (both arrays
/// summed; the default cap is 500 per array).
const TILE_SWEEP_BOUNDS: &[f64] = &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// Bucket bounds for the per-column NF histogram (NF is a relative current
/// loss, almost always well inside `[0, 1]`).
const NF_BOUNDS: &[f64] = &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0];

/// Result of simulating one tile.
#[derive(Debug, Clone)]
pub struct TileOutcome {
    /// The non-ideal weights `W'` read back from the crossbar pair.
    pub weights: Tensor,
    /// Mean NF over the positive array's columns.
    pub nf_pos: f64,
    /// Mean NF over the negative array's columns.
    pub nf_neg: f64,
    /// Fraction of devices (both arrays) within 1 % of `Gmin` — the
    /// low-conductance-synapse proportion the mitigations maximise.
    pub low_g_fraction: f64,
    /// Combined solver work over both arrays (iterations add, the worst
    /// residual dominates).
    pub stats: SolveStats,
    /// Whether either array needed the extended-sweep fallback retry.
    pub fallback: bool,
    /// Read-verify verdict: stuck devices, per-column fault error, and
    /// program-and-verify retry counts over both arrays.
    pub fault_report: FaultReport,
    /// The weight reference `w_ref` the tile was mapped with — needed to
    /// translate stuck-cell conductance errors back into weight space for
    /// digital correction.
    pub w_ref: f32,
}

impl TileOutcome {
    /// Mean NF over both arrays.
    pub fn nf(&self) -> f64 {
        0.5 * (self.nf_pos + self.nf_neg)
    }
}

/// Simulates one weight tile on a non-ideal differential crossbar pair.
///
/// * `tile` — `rows × cols` weights (padded with zeros to the full crossbar
///   size by the caller; zero cells sit at `Gmin` like unused devices);
/// * `scale`/`layer_abs_max` — weight→conductance reference (see
///   [`MappingScale`]);
/// * `seed` — deterministic variation seed (derive per tile).
///
/// # Errors
///
/// Propagates circuit-solver errors.
///
/// # Panics
///
/// Panics if `tile` is not 2-D.
pub fn simulate_tile(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
) -> Result<TileOutcome> {
    let mut pair = weights_to_conductances(tile, scale, layer_abs_max, params);
    let g_min = params.g_min();
    let low_g = {
        let tol = 0.01 * g_min;
        0.5 * (pair.pos.low_conductance_fraction(g_min, tol)
            + pair.neg.low_conductance_fraction(g_min, tol))
    };
    let g_max = params.g_max();
    quantize_conductances(&mut pair.pos, g_min, g_max, params.levels);
    quantize_conductances(&mut pair.neg, g_min, g_max, params.levels);
    // Closed-loop programming: Gaussian write noise, stuck-at overrides, and
    // the bounded read-verify retry loop; reports every device that can
    // never verify.
    let pos_programmed = program_array(
        &pair.pos,
        &params.faults,
        params.sigma_variation,
        g_min,
        g_max,
        &params.program,
        seed,
        seed.wrapping_add(0xFA17_0001),
        ArrayKind::Pos,
    );
    let neg_programmed = program_array(
        &pair.neg,
        &params.faults,
        params.sigma_variation,
        g_min,
        g_max,
        &params.program,
        seed.wrapping_add(0x5DEECE66D),
        seed.wrapping_add(0xFA17_0002),
        ArrayKind::Neg,
    );
    pair.pos = pos_programmed.g.clone();
    pair.neg = neg_programmed.g.clone();
    let fault_report = FaultReport::from_arrays(tile.cols(), pos_programmed, neg_programmed);
    if !fault_report.is_clean() || fault_report.reprogrammed > 0 {
        xbar_obs::metrics::counter_add("sim/stuck_cells", fault_report.stuck_count() as u64);
        xbar_obs::metrics::counter_add("sim/reprogrammed_cells", fault_report.reprogrammed as u64);
        xbar_obs::metrics::counter_add("sim/program_retries", fault_report.retry_rounds as u64);
    }
    let solver = NonIdealSolver::new(*params, method);
    let v = vec![params.v_read; tile.rows()];
    let solve_start = std::time::Instant::now();
    let (pos_solve, pos_fallback) = solve_with_fallback(&solver, &pair.pos, &v)?;
    let (neg_solve, neg_fallback) = solve_with_fallback(&solver, &pair.neg, &v)?;
    let solve_us = solve_start.elapsed().as_secs_f64() * 1e6;
    let mut stats = pos_solve.stats;
    stats.accumulate(neg_solve.stats);
    xbar_obs::metrics::histogram_record("sim/tile_solve_us", solve_us, TILE_SOLVE_US_BOUNDS);
    xbar_obs::metrics::histogram_record(
        "sim/tile_sweeps",
        stats.iterations as f64,
        TILE_SWEEP_BOUNDS,
    );
    let outcome_pair = DifferentialPair {
        pos: pos_solve.g_eff.clone(),
        neg: neg_solve.g_eff.clone(),
        w_ref: pair.w_ref,
    };
    let weights = conductances_to_weights(&outcome_pair, params);
    let nf_pos_cols = column_nf(&pos_solve);
    let nf_neg_cols = column_nf(&neg_solve);
    for &nf in nf_pos_cols.iter().chain(&nf_neg_cols) {
        xbar_obs::metrics::histogram_record("sim/nf_column", nf, NF_BOUNDS);
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    Ok(TileOutcome {
        weights,
        nf_pos: mean(&nf_pos_cols),
        nf_neg: mean(&nf_neg_cols),
        low_g_fraction: low_g,
        stats,
        fallback: pos_fallback || neg_fallback,
        fault_report,
        w_ref: pair.w_ref,
    })
}

/// Solves one array, retrying once with a 4× sweep budget if line relaxation
/// fails to converge. Fallbacks and terminal failures are counted in the
/// `sim/tile_fallbacks` / `sim/tile_failures` metrics.
fn solve_with_fallback(
    solver: &NonIdealSolver,
    g: &ConductanceMatrix,
    v: &[f64],
) -> Result<(EffectiveSolve, bool)> {
    match solver.effective_conductances(g, v) {
        Ok(solve) => Ok((solve, false)),
        Err(SolveError::NoConvergence { iterations, .. }) => {
            xbar_obs::metrics::counter_add("sim/tile_fallbacks", 1);
            let mut retry = *solver;
            retry.max_sweeps *= 4;
            match retry.effective_conductances(g, v) {
                Ok(mut solve) => {
                    // Report the total work including the abandoned attempt.
                    solve.stats.iterations += iterations;
                    Ok((solve, true))
                }
                Err(err) => {
                    xbar_obs::metrics::counter_add("sim/tile_failures", 1);
                    Err(err)
                }
            }
        }
        Err(err) => Err(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_tile(rows: usize, cols: usize, seed: u64, amp: f32) -> Tensor {
        let mut s = seed;
        Tensor::from_fn(&[rows, cols], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0 * amp
        })
    }

    #[test]
    fn ideal_params_round_trip_weights() {
        let params = CrossbarParams::with_size(8).ideal();
        let tile = rand_tile(8, 8, 3, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        for (a, b) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert!(out.nf() < 1e-4);
    }

    #[test]
    fn non_ideal_tile_shrinks_weights_and_has_positive_nf() {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0; // isolate IR drop
        let tile = Tensor::ones(&[16, 16]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        assert!(out.nf() > 0.0);
        // All-positive tile: every non-ideal weight below the programmed 1.0.
        assert!(out.weights.as_slice().iter().all(|&w| w < 1.0 && w > 0.0));
    }

    #[test]
    fn bigger_tiles_suffer_more() {
        let mut nfs = Vec::new();
        for n in [8usize, 32] {
            let mut params = CrossbarParams::with_size(n);
            params.sigma_variation = 0.0;
            let tile = Tensor::ones(&[n, n]);
            let out = simulate_tile(
                &tile,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap();
            nfs.push(out.nf());
        }
        assert!(nfs[1] > nfs[0], "{nfs:?}");
    }

    #[test]
    fn low_magnitude_tiles_have_lower_nf() {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0;
        let strong = Tensor::ones(&[16, 16]);
        let weak = Tensor::filled(&[16, 16], 0.05);
        // Fixed scale so the weak tile genuinely maps to low conductances.
        let nf = |t: &Tensor| {
            simulate_tile(
                t,
                MappingScale::Fixed(1.0),
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap()
            .nf()
        };
        assert!(nf(&weak) < nf(&strong));
    }

    #[test]
    fn variation_is_deterministic_per_seed() {
        let params = CrossbarParams::with_size(8);
        let tile = rand_tile(8, 8, 11, 0.5);
        let a = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            5,
        )
        .unwrap();
        let b = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            5,
        )
        .unwrap();
        let c = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            6,
        )
        .unwrap();
        assert_eq!(a.weights, b.weights);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn quantization_degrades_round_trip_boundedly() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.levels = 8;
        let tile = rand_tile(8, 8, 21, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        // Max error bounded by half a quantization step per array (two
        // arrays → one step of the weight range).
        let step = 1.0 / 7.0;
        for (a, b) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn stuck_faults_change_weights() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.faults = crate::faults::FaultModel {
            stuck_at_gmin: 0.3,
            stuck_at_gmax: 0.0,
        };
        let tile = Tensor::ones(&[8, 8]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            1,
        )
        .unwrap();
        // Some positive weights got their pos device stuck at Gmin → ~0.
        let zeroed = out
            .weights
            .as_slice()
            .iter()
            .filter(|&&w| w.abs() < 1e-3)
            .count();
        assert!(
            zeroed > 5,
            "expected stuck devices to zero weights, got {zeroed}"
        );
    }

    #[test]
    fn fault_report_localises_stuck_devices() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.faults = crate::faults::FaultModel {
            stuck_at_gmin: 0.1,
            stuck_at_gmax: 0.05,
        };
        let tile = Tensor::ones(&[8, 8]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            3,
        )
        .unwrap();
        let report = &out.fault_report;
        assert!(report.stuck_count() > 0);
        assert_eq!(report.column_error.len(), 8);
        assert!(report.fault_score() > 0.0);
        assert!(report.affected_columns().iter().all(|&c| c < 8));
        // Every stuck cell lands inside the tile and at a rail.
        for cell in &report.stuck_cells {
            assert!(cell.row < 8 && cell.col < 8);
            assert!(cell.actual == params.g_min() || cell.actual == params.g_max());
        }
        // A fault-free tile has a clean report.
        let clean = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &CrossbarParams::with_size(8).ideal(),
            SolveMethod::LineRelaxation,
            3,
        )
        .unwrap();
        assert!(clean.fault_report.is_clean());
        assert_eq!(clean.fault_report.fault_score(), 0.0);
    }

    #[test]
    fn program_and_verify_tightens_round_trip() {
        let tile = rand_tile(16, 16, 8, 1.0);
        let mut open = CrossbarParams::with_size(16).ideal();
        open.sigma_variation = 0.2;
        let mut closed = open;
        closed.program.max_retries = 4;
        let mean_err = |params: &CrossbarParams| {
            let out = simulate_tile(
                &tile,
                MappingScale::PerTileMax,
                1.0,
                params,
                SolveMethod::LineRelaxation,
                5,
            )
            .unwrap();
            let err: f32 = tile
                .as_slice()
                .iter()
                .zip(out.weights.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum();
            (err / tile.as_slice().len() as f32, out)
        };
        let (open_err, open_out) = mean_err(&open);
        let (closed_err, closed_out) = mean_err(&closed);
        assert_eq!(open_out.fault_report.reprogrammed, 0);
        assert!(closed_out.fault_report.reprogrammed > 0);
        assert!(
            closed_err < open_err,
            "verify retries must tighten programming: {closed_err} vs {open_err}"
        );
    }

    #[test]
    fn zero_padded_tile_reports_high_low_g_fraction() {
        let params = CrossbarParams::with_size(8);
        let mut tile = Tensor::zeros(&[8, 8]);
        tile.set2(0, 0, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        assert!(out.low_g_fraction > 0.95);
    }
}
