//! End-to-end simulation of one weight tile on a non-ideal crossbar pair.
//!
//! This is the per-tile unit of the paper's Fig. 2 pipeline: weights →
//! conductances (differential pair) → Gaussian variation → non-ideal circuit
//! solve → effective conductances `G'` → non-ideal weights `W'`, plus NF
//! statistics for Fig. 3(d).

use crate::cache::{self, CacheMode};
use crate::conductance::{
    conductances_to_weights, weights_to_conductances, ConductanceMatrix, DifferentialPair,
    MappingScale,
};
use crate::nf::column_nf;
use crate::params::CrossbarParams;
use crate::program::{program_array, ArrayKind, FaultReport};
use crate::quantize::quantize_conductances;
use crate::solve::{EffectiveSolve, NodeVoltages, NonIdealSolver, SolveMethod, Warm};
use xbar_linalg::{Result, SolveError, SolveStats};
use xbar_obs::names;
use xbar_tensor::Tensor;

/// Bucket bounds (µs) for the per-tile circuit-solve latency histogram.
const TILE_SOLVE_US_BOUNDS: &[f64] = &[100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6];

/// Bucket bounds for the per-tile relaxation-sweep histogram (both arrays
/// summed; the default cap is 500 per array).
const TILE_SWEEP_BOUNDS: &[f64] = &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// Bucket bounds for the per-column NF histogram (NF is a relative current
/// loss, almost always well inside `[0, 1]`).
const NF_BOUNDS: &[f64] = &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0];

/// Result of simulating one tile.
#[derive(Debug, Clone)]
pub struct TileOutcome {
    /// The non-ideal weights `W'` read back from the crossbar pair.
    pub weights: Tensor,
    /// Mean NF over the positive array's columns.
    pub nf_pos: f64,
    /// Mean NF over the negative array's columns.
    pub nf_neg: f64,
    /// Fraction of devices (both arrays) within 1 % of `Gmin` — the
    /// low-conductance-synapse proportion the mitigations maximise.
    pub low_g_fraction: f64,
    /// Combined solver work over both arrays (iterations add, the worst
    /// residual dominates).
    pub stats: SolveStats,
    /// Whether either array needed the extended-sweep fallback retry.
    pub fallback: bool,
    /// Read-verify verdict: stuck devices, per-column fault error, and
    /// program-and-verify retry counts over both arrays.
    pub fault_report: FaultReport,
    /// The weight reference `w_ref` the tile was mapped with — needed to
    /// translate stuck-cell conductance errors back into weight space for
    /// digital correction.
    pub w_ref: f32,
}

impl TileOutcome {
    /// Mean NF over both arrays.
    pub fn nf(&self) -> f64 {
        0.5 * (self.nf_pos + self.nf_neg)
    }
}

/// The solved node voltages of both crossbar arrays of a tile — the state a
/// later solve of a related tile can warm-start from (see
/// [`simulate_tile_seeded`]).
#[derive(Debug, Clone)]
pub struct TileSolveState {
    /// Positive-array node voltages.
    pub pos: NodeVoltages,
    /// Negative-array node voltages.
    pub neg: NodeVoltages,
}

impl TileSolveState {
    /// Returns a copy with each `(a, b)` physical column pair swapped in
    /// both arrays — the right seed for re-simulating a column-permuted
    /// tile (spare-column repair). Column position affects the row-wire
    /// path, so the permuted voltages are a near-solution, not an exact
    /// one; the warm-start's verifying sweep settles the difference.
    ///
    /// # Panics
    ///
    /// Panics if a swap index is out of range for the array geometry, or if
    /// the stored voltages are not a whole number of `cols`-wide rows (a
    /// seed from a different tile geometry).
    pub fn swap_columns(&self, cols: usize, swaps: &[(usize, usize)]) -> TileSolveState {
        let mut out = self.clone();
        for nodes in [&mut out.pos, &mut out.neg] {
            assert!(
                cols > 0 && nodes.vr.len() % cols == 0,
                "seed holds {} node voltages, not a whole number of {cols}-wide rows",
                nodes.vr.len()
            );
            let rows = nodes.vr.len() / cols;
            for &(a, b) in swaps {
                assert!(
                    a < cols && b < cols,
                    "swap ({a}, {b}) outside {cols} columns"
                );
                for i in 0..rows {
                    nodes.vr.swap(i * cols + a, i * cols + b);
                    nodes.vc.swap(i * cols + a, i * cols + b);
                }
            }
        }
        out
    }
}

/// A tile's differential conductance pair after the full programming
/// pipeline — quantization, closed-loop programming with write noise and
/// stuck-at faults — ready either for the exact circuit solve or for a
/// learned column-current emulator (`xbar-surrogate`).
#[derive(Debug, Clone)]
pub struct PreparedTile {
    /// The programmed differential conductance pair.
    pub pair: DifferentialPair,
    /// Read-verify verdict over both arrays.
    pub fault_report: FaultReport,
    /// Fraction of devices (both arrays) within 1 % of `Gmin`.
    pub low_g_fraction: f64,
}

/// Programs one weight tile onto a differential crossbar pair without
/// solving the circuit: weights → conductances, quantization, and the
/// closed-loop program-and-verify pass with write noise and stuck-at
/// faults. This is exactly the state [`simulate_tile_seeded`] hands to the
/// circuit solver, so an emulator fed the returned conductances sees the
/// same arrays the exact path does, bit for bit.
///
/// # Errors
///
/// Returns [`SolveError::Config`] if `params` fails validation.
///
/// # Panics
///
/// Panics if `tile` is not 2-D.
pub fn prepare_tile_conductances(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    seed: u64,
) -> Result<PreparedTile> {
    // Validate before any conductance math: inconsistent params would
    // otherwise panic in quantization or the solver, which a worker thread
    // can only report as an opaque panic.
    params
        .validate()
        .map_err(|e| SolveError::Config(e.to_string()))?;
    let mut pair = weights_to_conductances(tile, scale, layer_abs_max, params);
    let g_min = params.g_min();
    let low_g = {
        let tol = 0.01 * g_min;
        0.5 * (pair.pos.low_conductance_fraction(g_min, tol)
            + pair.neg.low_conductance_fraction(g_min, tol))
    };
    let g_max = params.g_max();
    quantize_conductances(&mut pair.pos, g_min, g_max, params.levels);
    quantize_conductances(&mut pair.neg, g_min, g_max, params.levels);
    // Closed-loop programming: Gaussian write noise, stuck-at overrides, and
    // the bounded read-verify retry loop; reports every device that can
    // never verify.
    let pos_programmed = program_array(
        &pair.pos,
        &params.faults,
        params.sigma_variation,
        g_min,
        g_max,
        &params.program,
        seed,
        seed.wrapping_add(0xFA17_0001),
        ArrayKind::Pos,
    );
    let neg_programmed = program_array(
        &pair.neg,
        &params.faults,
        params.sigma_variation,
        g_min,
        g_max,
        &params.program,
        seed.wrapping_add(0x5DEECE66D),
        seed.wrapping_add(0xFA17_0002),
        ArrayKind::Neg,
    );
    pair.pos = pos_programmed.g.clone();
    pair.neg = neg_programmed.g.clone();
    let fault_report = FaultReport::from_arrays(tile.cols(), pos_programmed, neg_programmed);
    if !fault_report.is_clean() || fault_report.reprogrammed > 0 {
        xbar_obs::metrics::counter_add(names::SIM_STUCK_CELLS, fault_report.stuck_count() as u64);
        xbar_obs::metrics::counter_add(
            names::SIM_REPROGRAMMED_CELLS,
            fault_report.reprogrammed as u64,
        );
        xbar_obs::metrics::counter_add(
            names::SIM_PROGRAM_RETRIES,
            fault_report.retry_rounds as u64,
        );
    }
    Ok(PreparedTile {
        pair,
        fault_report,
        low_g_fraction: low_g,
    })
}

/// Simulates one weight tile on a non-ideal differential crossbar pair.
///
/// * `tile` — `rows × cols` weights (padded with zeros to the full crossbar
///   size by the caller; zero cells sit at `Gmin` like unused devices);
/// * `scale`/`layer_abs_max` — weight→conductance reference (see
///   [`MappingScale`]);
/// * `seed` — deterministic variation seed (derive per tile).
///
/// # Errors
///
/// Propagates circuit-solver errors.
///
/// # Panics
///
/// Panics if `tile` is not 2-D.
pub fn simulate_tile(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
) -> Result<TileOutcome> {
    simulate_tile_seeded(tile, scale, layer_abs_max, params, method, seed, None)
        .map(|(outcome, _)| outcome)
}

/// [`simulate_tile`], plus warm-start plumbing: the returned
/// [`TileSolveState`] holds the solved node voltages of both arrays, and a
/// related later simulation (repair's column-permuted re-run, a recalibrate
/// re-map of slightly perturbed weights) can pass it back as `warm` to
/// start relaxation from that state instead of the cold guess.
///
/// Warm-started solves are never inserted into the solve cache — only cold
/// solves are, so a [`CacheMode::Full`] hit always replays a genuine cold
/// result bit-for-bit.
///
/// # Errors
///
/// * [`SolveError::Config`] if `params` fails validation;
/// * circuit-solver errors, including final non-convergence after the
///   extended-sweep fallback.
#[allow(clippy::too_many_arguments)]
pub fn simulate_tile_seeded(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
    warm: Option<&TileSolveState>,
) -> Result<(TileOutcome, TileSolveState)> {
    let PreparedTile {
        pair,
        fault_report,
        low_g_fraction: low_g,
    } = prepare_tile_conductances(tile, scale, layer_abs_max, params, seed)?;
    let solver =
        NonIdealSolver::try_new(*params, method).map_err(|e| SolveError::Config(e.to_string()))?;
    let v = vec![params.v_read; tile.rows()];
    // A seed whose shape disagrees with the prepared tile (left over from a
    // pre-repair geometry, a remap, or a column permutation against the
    // wrong width) must not reach the solver: drop it and solve cold — one
    // normal cold solve, counted once — instead of failing the tile.
    let n = tile.rows() * tile.cols();
    let warm = warm.filter(|w| {
        [&w.pos, &w.neg]
            .iter()
            .all(|nodes| nodes.vr.len() == n && nodes.vc.len() == n)
    });
    let solve_start = std::time::Instant::now();
    let (pos_solve, pos_nodes, pos_fallback) =
        solve_array(&solver, &pair.pos, &v, warm.map(|w| w.pos.warm()))?;
    let (neg_solve, neg_nodes, neg_fallback) =
        solve_array(&solver, &pair.neg, &v, warm.map(|w| w.neg.warm()))?;
    let solve_us = solve_start.elapsed().as_secs_f64() * 1e6;
    let mut stats = pos_solve.stats;
    stats.accumulate(neg_solve.stats);
    xbar_obs::metrics::histogram_record(names::SIM_TILE_SOLVE_US, solve_us, TILE_SOLVE_US_BOUNDS);
    xbar_obs::metrics::histogram_record(
        names::SIM_TILE_SWEEPS,
        stats.iterations as f64,
        TILE_SWEEP_BOUNDS,
    );
    let outcome_pair = DifferentialPair {
        pos: pos_solve.g_eff.clone(),
        neg: neg_solve.g_eff.clone(),
        w_ref: pair.w_ref,
    };
    let weights = conductances_to_weights(&outcome_pair, params);
    let nf_pos_cols = column_nf(&pos_solve);
    let nf_neg_cols = column_nf(&neg_solve);
    for &nf in nf_pos_cols.iter().chain(&nf_neg_cols) {
        xbar_obs::metrics::histogram_record(names::SIM_NF_COLUMN, nf, NF_BOUNDS);
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let outcome = TileOutcome {
        weights,
        nf_pos: mean(&nf_pos_cols),
        nf_neg: mean(&nf_neg_cols),
        low_g_fraction: low_g,
        stats,
        fallback: pos_fallback || neg_fallback,
        fault_report,
        w_ref: pair.w_ref,
    };
    let state = TileSolveState {
        pos: pos_nodes,
        neg: neg_nodes,
    };
    Ok((outcome, state))
}

/// Solves one array through the solve cache, resuming once with a 4× sweep
/// budget if line relaxation fails to converge within the base budget.
///
/// The fallback *resumes* from the abandoned state instead of re-running
/// from the cold guess, so the abandoned sweeps are paid for (and counted
/// in `stats.iterations`) exactly once; because relaxation is
/// deterministic, the resumed trajectory is bit-for-bit the one a single
/// solve with a larger budget would have taken. Fallbacks and terminal
/// failures are counted in the `sim/tile_fallbacks` / `sim/tile_failures`
/// metrics, cache traffic in `sim/solve_cache_hits` / `_misses`.
fn solve_array(
    solver: &NonIdealSolver,
    g: &ConductanceMatrix,
    v: &[f64],
    warm: Option<Warm<'_>>,
) -> Result<(EffectiveSolve, NodeVoltages, bool)> {
    let mode = cache::solve_cache_mode();
    let key = if mode == CacheMode::Off {
        None
    } else {
        Some(cache::solve_key(solver, g, v))
    };
    if let Some(key) = key {
        if let Some(hit) = cache::lookup(key) {
            xbar_obs::metrics::counter_add(names::SIM_SOLVE_CACHE_HITS, 1);
            match mode {
                // Replay the stored cold solve: extraction is pure, so this
                // is bit-identical to the solve that populated the entry.
                CacheMode::Full => {
                    let solve = solver.extract(g, v, &hit.nodes)?;
                    return Ok((solve, hit.nodes, hit.fallback));
                }
                // Verify-and-reuse: one sweep confirms the seed still meets
                // tolerance (equal keys make failure impossible in practice,
                // but fall through to the cold path if it ever happens).
                CacheMode::Seed => {
                    let nodes = solver.solve_nodes(g, v, Some(hit.nodes.warm()))?;
                    if nodes.stats.converged {
                        let solve = solver.extract(g, v, &nodes)?;
                        return Ok((solve, nodes, false));
                    }
                }
                CacheMode::Off => unreachable!("cache key computed with cache off"),
            }
        } else {
            xbar_obs::metrics::counter_add(names::SIM_SOLVE_CACHE_MISSES, 1);
        }
    }
    let caller_seeded = warm.is_some();
    let first = solver.solve_nodes(g, v, warm)?;
    let (nodes, fallback) = if first.stats.converged {
        (first, false)
    } else {
        xbar_obs::metrics::counter_add(names::SIM_TILE_FALLBACKS, 1);
        let abandoned = first.stats.iterations;
        let mut retry = *solver;
        retry.max_sweeps *= 4;
        let mut resumed = retry.solve_nodes(g, v, Some(first.warm()))?;
        // Total work of the single logical trajectory: the abandoned sweeps
        // plus the resumed ones, each counted once.
        resumed.stats.iterations += abandoned;
        if !resumed.stats.converged {
            xbar_obs::metrics::counter_add(names::SIM_TILE_FAILURES, 1);
            return Err(SolveError::NoConvergence {
                iterations: resumed.stats.iterations,
                residual: resumed.stats.residual,
            });
        }
        (resumed, true)
    };
    let solve = solver.extract(g, v, &nodes)?;
    if !caller_seeded {
        if let Some(key) = key {
            cache::insert(key, nodes.clone(), fallback);
        }
    }
    Ok((solve, nodes, fallback))
}

/// Batched column currents through one programmed conductance array,
/// routed through the solve cache: the whole batch shares one key prefix
/// ([`cache`] hashes the conductances once), cache hits replay or
/// verify-and-reuse per [`CacheMode`], and the remaining cold elements are
/// deduplicated by key — identical input vectors solve **once** and insert
/// **once** — before solving together through
/// [`NonIdealSolver::solve_nodes_batch`].
///
/// Elements that miss the base sweep budget get the same 4× resume
/// fallback as [`simulate_tile_seeded`]'s per-array solves (abandoned
/// sweeps counted once), so results are bit-identical to solving each
/// element alone through this module.
///
/// # Errors
///
/// * [`SolveError::Dimension`] on a length mismatch or negative voltage in
///   any element;
/// * [`SolveError::NoConvergence`] if any element still fails after the
///   fallback.
pub fn solve_currents_batch(
    solver: &NonIdealSolver,
    g: &ConductanceMatrix,
    vs: &[Vec<f64>],
) -> Result<Vec<Vec<f64>>> {
    let rows = g.rows();
    for (idx, v) in vs.iter().enumerate() {
        if v.len() != rows {
            return Err(SolveError::Dimension(format!(
                "crossbar has {rows} rows but batch element {idx} carries {} input voltages",
                v.len()
            )));
        }
        if v.iter().any(|&x| x < 0.0) {
            return Err(SolveError::Dimension(format!(
                "column currents require non-negative input voltages (batch element {idx})"
            )));
        }
    }
    if vs.is_empty() {
        return Ok(Vec::new());
    }
    let mode = cache::solve_cache_mode();
    if mode == CacheMode::Off {
        return batch_with_fallback(solver, g, vs, None);
    }
    let keys = cache::solve_keys_batch(solver, g, vs);
    let mut results: Vec<Option<Vec<f64>>> = vec![None; vs.len()];
    let mut pending: Vec<usize> = Vec::new();
    for (idx, &key) in keys.iter().enumerate() {
        let Some(hit) = cache::lookup(key) else {
            xbar_obs::metrics::counter_add(names::SIM_SOLVE_CACHE_MISSES, 1);
            pending.push(idx);
            continue;
        };
        xbar_obs::metrics::counter_add(names::SIM_SOLVE_CACHE_HITS, 1);
        match mode {
            CacheMode::Full => results[idx] = Some(solver.currents_of(g, &hit.nodes)?),
            CacheMode::Seed => {
                let nodes = solver.solve_nodes(g, &vs[idx], Some(hit.nodes.warm()))?;
                if nodes.stats.converged {
                    results[idx] = Some(solver.currents_of(g, &nodes)?);
                } else {
                    pending.push(idx);
                }
            }
            CacheMode::Off => unreachable!("cache keys computed with cache off"),
        }
    }
    if !pending.is_empty() {
        // Deduplicate the cold work by key: within a batch, identical
        // input vectors share one solve and one cache insert.
        let mut by_key: std::collections::HashMap<u128, usize> = std::collections::HashMap::new();
        let mut unique_keys: Vec<u128> = Vec::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        for &idx in &pending {
            match by_key.entry(keys[idx]) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    members[*slot.get()].push(idx);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(unique_keys.len());
                    unique_keys.push(keys[idx]);
                    members.push(vec![idx]);
                }
            }
        }
        let cold_vs: Vec<Vec<f64>> = members.iter().map(|m| vs[m[0]].clone()).collect();
        let currents = batch_with_fallback(solver, g, &cold_vs, Some(&unique_keys))?;
        for (m, cur) in members.iter().zip(currents) {
            for &idx in m {
                results[idx] = Some(cur.clone());
            }
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every batch element resolved"))
        .collect())
}

/// Cold-solves a batch and applies the per-element 4× resume fallback on
/// sweep-cap misses (abandoned sweeps counted once, exactly like
/// [`solve_array`]). When `insert_keys` is given, each solved element is
/// inserted into the cache under its key — once per element, since the
/// caller already deduplicated.
fn batch_with_fallback(
    solver: &NonIdealSolver,
    g: &ConductanceMatrix,
    vs: &[Vec<f64>],
    insert_keys: Option<&[u128]>,
) -> Result<Vec<Vec<f64>>> {
    let solved = solver.solve_nodes_batch(g, vs)?;
    solved
        .into_iter()
        .zip(vs)
        .enumerate()
        .map(|(idx, (first, v))| {
            let (nodes, fallback) = if first.stats.converged {
                (first, false)
            } else {
                xbar_obs::metrics::counter_add(names::SIM_TILE_FALLBACKS, 1);
                let abandoned = first.stats.iterations;
                let mut retry = *solver;
                retry.max_sweeps *= 4;
                let mut resumed = retry.solve_nodes(g, v, Some(first.warm()))?;
                resumed.stats.iterations += abandoned;
                if !resumed.stats.converged {
                    xbar_obs::metrics::counter_add(names::SIM_TILE_FAILURES, 1);
                    return Err(SolveError::NoConvergence {
                        iterations: resumed.stats.iterations,
                        residual: resumed.stats.residual,
                    });
                }
                (resumed, true)
            };
            let currents = solver.currents_of(g, &nodes)?;
            if let Some(keys) = insert_keys {
                cache::insert(keys[idx], nodes, fallback);
            }
            Ok(currents)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that flip the process-global cache mode.
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn rand_tile(rows: usize, cols: usize, seed: u64, amp: f32) -> Tensor {
        let mut s = seed;
        Tensor::from_fn(&[rows, cols], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0 * amp
        })
    }

    #[test]
    fn ideal_params_round_trip_weights() {
        let params = CrossbarParams::with_size(8).ideal();
        let tile = rand_tile(8, 8, 3, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        for (a, b) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert!(out.nf() < 1e-4);
    }

    #[test]
    fn non_ideal_tile_shrinks_weights_and_has_positive_nf() {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0; // isolate IR drop
        let tile = Tensor::ones(&[16, 16]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        assert!(out.nf() > 0.0);
        // All-positive tile: every non-ideal weight below the programmed 1.0.
        assert!(out.weights.as_slice().iter().all(|&w| w < 1.0 && w > 0.0));
    }

    #[test]
    fn bigger_tiles_suffer_more() {
        let mut nfs = Vec::new();
        for n in [8usize, 32] {
            let mut params = CrossbarParams::with_size(n);
            params.sigma_variation = 0.0;
            let tile = Tensor::ones(&[n, n]);
            let out = simulate_tile(
                &tile,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap();
            nfs.push(out.nf());
        }
        assert!(nfs[1] > nfs[0], "{nfs:?}");
    }

    #[test]
    fn low_magnitude_tiles_have_lower_nf() {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0;
        let strong = Tensor::ones(&[16, 16]);
        let weak = Tensor::filled(&[16, 16], 0.05);
        // Fixed scale so the weak tile genuinely maps to low conductances.
        let nf = |t: &Tensor| {
            simulate_tile(
                t,
                MappingScale::Fixed(1.0),
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                0,
            )
            .unwrap()
            .nf()
        };
        assert!(nf(&weak) < nf(&strong));
    }

    #[test]
    fn variation_is_deterministic_per_seed() {
        let params = CrossbarParams::with_size(8);
        let tile = rand_tile(8, 8, 11, 0.5);
        let a = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            5,
        )
        .unwrap();
        let b = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            5,
        )
        .unwrap();
        let c = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            6,
        )
        .unwrap();
        assert_eq!(a.weights, b.weights);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn quantization_degrades_round_trip_boundedly() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.levels = 8;
        let tile = rand_tile(8, 8, 21, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        // Max error bounded by half a quantization step per array (two
        // arrays → one step of the weight range).
        let step = 1.0 / 7.0;
        for (a, b) in tile.as_slice().iter().zip(out.weights.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn stuck_faults_change_weights() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.faults = crate::faults::FaultModel {
            stuck_at_gmin: 0.3,
            stuck_at_gmax: 0.0,
        };
        let tile = Tensor::ones(&[8, 8]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            1,
        )
        .unwrap();
        // Some positive weights got their pos device stuck at Gmin → ~0.
        let zeroed = out
            .weights
            .as_slice()
            .iter()
            .filter(|&&w| w.abs() < 1e-3)
            .count();
        assert!(
            zeroed > 5,
            "expected stuck devices to zero weights, got {zeroed}"
        );
    }

    #[test]
    fn fault_report_localises_stuck_devices() {
        let mut params = CrossbarParams::with_size(8).ideal();
        params.faults = crate::faults::FaultModel {
            stuck_at_gmin: 0.1,
            stuck_at_gmax: 0.05,
        };
        let tile = Tensor::ones(&[8, 8]);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            3,
        )
        .unwrap();
        let report = &out.fault_report;
        assert!(report.stuck_count() > 0);
        assert_eq!(report.column_error.len(), 8);
        assert!(report.fault_score() > 0.0);
        assert!(report.affected_columns().iter().all(|&c| c < 8));
        // Every stuck cell lands inside the tile and at a rail.
        for cell in &report.stuck_cells {
            assert!(cell.row < 8 && cell.col < 8);
            assert!(cell.actual == params.g_min() || cell.actual == params.g_max());
        }
        // A fault-free tile has a clean report.
        let clean = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &CrossbarParams::with_size(8).ideal(),
            SolveMethod::LineRelaxation,
            3,
        )
        .unwrap();
        assert!(clean.fault_report.is_clean());
        assert_eq!(clean.fault_report.fault_score(), 0.0);
    }

    #[test]
    fn program_and_verify_tightens_round_trip() {
        let tile = rand_tile(16, 16, 8, 1.0);
        let mut open = CrossbarParams::with_size(16).ideal();
        open.sigma_variation = 0.2;
        let mut closed = open;
        closed.program.max_retries = 4;
        let mean_err = |params: &CrossbarParams| {
            let out = simulate_tile(
                &tile,
                MappingScale::PerTileMax,
                1.0,
                params,
                SolveMethod::LineRelaxation,
                5,
            )
            .unwrap();
            let err: f32 = tile
                .as_slice()
                .iter()
                .zip(out.weights.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum();
            (err / tile.as_slice().len() as f32, out)
        };
        let (open_err, open_out) = mean_err(&open);
        let (closed_err, closed_out) = mean_err(&closed);
        assert_eq!(open_out.fault_report.reprogrammed, 0);
        assert!(closed_out.fault_report.reprogrammed > 0);
        assert!(
            closed_err < open_err,
            "verify retries must tighten programming: {closed_err} vs {open_err}"
        );
    }

    #[test]
    fn cached_and_warm_started_tiles_match_cold_bitwise() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        let params = CrossbarParams::with_size(16);
        let tile = rand_tile(16, 16, 42, 1.0);
        let run = || {
            simulate_tile(
                &tile,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                9,
            )
            .unwrap()
        };
        cache::set_solve_cache_mode(CacheMode::Off);
        let cold = run();
        // Full mode: populate cold, then a hit replays the stored solve —
        // weights AND stats bit-identical.
        cache::set_solve_cache_mode(CacheMode::Full);
        cache::clear_solve_cache();
        let populate = run();
        assert_eq!(populate.weights, cold.weights);
        assert_eq!(populate.stats, cold.stats);
        let hit = run();
        assert_eq!(hit.weights, cold.weights);
        assert_eq!(hit.stats, cold.stats);
        assert_eq!(hit.fallback, cold.fallback);
        // Seed mode: the hit warm-starts a verifying solve — weights still
        // bit-identical, stats honestly ~1 sweep per array.
        cache::set_solve_cache_mode(CacheMode::Seed);
        let seeded = run();
        assert_eq!(seeded.weights, cold.weights);
        assert!(
            seeded.stats.iterations < cold.stats.iterations,
            "verified reuse must be cheaper: {} vs {} sweeps",
            seeded.stats.iterations,
            cold.stats.iterations
        );
        cache::set_solve_cache_mode(prior);
    }

    #[test]
    fn caller_seeded_resimulation_matches_cold_within_tolerance() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        cache::set_solve_cache_mode(CacheMode::Off);
        let params = CrossbarParams::with_size(12);
        let tile = rand_tile(12, 12, 7, 1.0);
        let cold = |t: &Tensor| {
            simulate_tile_seeded(
                t,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                4,
                None,
            )
            .unwrap()
        };
        let (base, state) = cold(&tile);
        // Re-simulate a column-swapped variant warm-started from the
        // permuted base state; compare with its cold solve.
        let mut swapped = tile.clone();
        for r in 0..12 {
            let (a, b) = (swapped.at2(r, 2), swapped.at2(r, 9));
            swapped.set2(r, 2, b);
            swapped.set2(r, 9, a);
        }
        let (cold_swap, _) = cold(&swapped);
        let seed = state.swap_columns(12, &[(2, 9)]);
        let (warm_swap, _) = simulate_tile_seeded(
            &swapped,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            4,
            Some(&seed),
        )
        .unwrap();
        assert!(
            warm_swap.stats.iterations <= cold_swap.stats.iterations,
            "warm start must not do more work: {} vs {}",
            warm_swap.stats.iterations,
            cold_swap.stats.iterations
        );
        // Both states satisfy the same convergence tolerance, so the
        // read-back weights agree to circuit accuracy.
        for (a, b) in cold_swap
            .weights
            .as_slice()
            .iter()
            .zip(warm_swap.weights.as_slice())
        {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        let _ = base;
        cache::set_solve_cache_mode(prior);
    }

    #[test]
    fn fallback_resume_is_bit_identical_and_counts_sweeps_once() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        cache::set_solve_cache_mode(CacheMode::Off);
        let params = CrossbarParams::with_size(16);
        let g = {
            let mut g = ConductanceMatrix::filled(16, 16, 0.0);
            let mut s = 3u64;
            for i in 0..16 {
                for j in 0..16 {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let frac = (s % 1000) as f64 / 1000.0;
                    g.set(
                        i,
                        j,
                        params.g_min() + frac * (params.g_max() - params.g_min()),
                    );
                }
            }
            g
        };
        let v = vec![params.v_read; 16];
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let (cold, _, cold_fb) = solve_array(&solver, &g, &v, None).unwrap();
        assert!(!cold_fb);
        let n = cold.stats.iterations;
        assert!(n >= 2, "need a multi-sweep solve to starve ({n} sweeps)");
        // Starve the base budget by one sweep to force the fallback; the
        // resumed trajectory must land on the same answer bit-for-bit and
        // count the abandoned sweeps exactly once.
        let mut starved = solver;
        starved.max_sweeps = n - 1;
        let (fb, _, used_fallback) = solve_array(&starved, &g, &v, None).unwrap();
        assert!(used_fallback);
        assert_eq!(fb.g_eff.as_slice(), cold.g_eff.as_slice());
        assert_eq!(fb.col_currents, cold.col_currents);
        assert_eq!(
            fb.stats.iterations, n,
            "abandoned sweeps must be counted exactly once"
        );
        cache::set_solve_cache_mode(prior);
    }

    fn rand_g(n: usize, seed: u64, params: &CrossbarParams) -> ConductanceMatrix {
        let mut g = ConductanceMatrix::filled(n, n, 0.0);
        let mut s = seed;
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let frac = (s % 1000) as f64 / 1000.0;
                g.set(
                    i,
                    j,
                    params.g_min() + frac * (params.g_max() - params.g_min()),
                );
            }
        }
        g
    }

    #[test]
    fn batched_tile_currents_match_singles_and_insert_once() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        let n = 10usize;
        let params = CrossbarParams::with_size(16);
        let g = rand_g(n, 77, &params);
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let uniform = vec![params.v_read; n];
        let ramp: Vec<f64> = (0..n)
            .map(|i| params.v_read * i as f64 / n as f64)
            .collect();
        let sparse: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { params.v_read } else { 0.0 })
            .collect();
        // Four elements, three unique: the duplicate must not double-insert.
        let vs = vec![uniform.clone(), ramp.clone(), uniform.clone(), sparse];
        let singles: Vec<Vec<f64>> = vs
            .iter()
            .map(|v| solver.column_currents(&g, v).unwrap())
            .collect();
        for mode in [CacheMode::Off, CacheMode::Full, CacheMode::Seed] {
            cache::set_solve_cache_mode(mode);
            cache::clear_solve_cache();
            let batch = solve_currents_batch(&solver, &g, &vs).unwrap();
            assert_eq!(batch, singles, "{mode:?} cold batch vs singles");
            let expect_len = if mode == CacheMode::Off { 0 } else { 3 };
            assert_eq!(
                cache::solve_cache_len(),
                expect_len,
                "{mode:?}: one insert per unique vector, duplicates share"
            );
            // Replay entirely from the cache (where enabled): still equal,
            // and no further inserts.
            let again = solve_currents_batch(&solver, &g, &vs).unwrap();
            assert_eq!(again, singles, "{mode:?} warm batch vs singles");
            assert_eq!(cache::solve_cache_len(), expect_len);
        }
        cache::clear_solve_cache();
        cache::set_solve_cache_mode(prior);
    }

    /// Property sweep for the batched solver: over tile edges that are not
    /// multiples of the 8-wide lane chunk, batch sizes {1, 2, 7, 32}, and
    /// every cache mode, with stuck-at faults injected and the conductances
    /// routed through the drift layer at `dt = 0` (a bit-identical
    /// passthrough by contract), the batched currents must equal the
    /// single-vector path's bit for bit — cold and on cache replay.
    #[test]
    fn property_batched_currents_bitwise_match_singles() {
        use crate::drift::{DriftModel, ProgrammedPair};
        use crate::faults::FaultModel;
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        for n in [5usize, 9, 13] {
            let params = CrossbarParams::with_size(n.max(8));
            let mut g = rand_g(n, 0xF00D ^ n as u64, &params);
            let faults = FaultModel {
                stuck_at_gmin: 0.08,
                stuck_at_gmax: 0.08,
            };
            faults.inject(&mut g, params.g_min(), params.g_max(), 0xFA ^ n as u64);
            let pair = DifferentialPair {
                pos: g,
                neg: ConductanceMatrix::filled(n, n, params.g_min()),
                w_ref: 1.0,
            };
            let mut programmed =
                ProgrammedPair::new(pair, DriftModel::new(1e3, 1e5), params.g_min(), 11)
                    .expect("valid drift model");
            programmed.advance_time(0.0);
            let g = programmed.current().pos;
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            let mut s = 0x5EED ^ (n as u64) << 8;
            let mut xorshift = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 999.0
            };
            for nb in [1usize, 2, 7, 32] {
                let vs: Vec<Vec<f64>> = (0..nb)
                    .map(|_| (0..n).map(|_| xorshift() * params.v_read).collect())
                    .collect();
                let singles: Vec<Vec<f64>> = vs
                    .iter()
                    .map(|v| solver.column_currents(&g, v).unwrap())
                    .collect();
                for mode in [CacheMode::Off, CacheMode::Full, CacheMode::Seed] {
                    cache::set_solve_cache_mode(mode);
                    cache::clear_solve_cache();
                    let cold = solve_currents_batch(&solver, &g, &vs).unwrap();
                    assert!(
                        bits_eq(&cold, &singles),
                        "n={n} nb={nb} {mode:?}: cold batch diverged from singles"
                    );
                    let warm = solve_currents_batch(&solver, &g, &vs).unwrap();
                    assert!(
                        bits_eq(&warm, &singles),
                        "n={n} nb={nb} {mode:?}: cache replay diverged from singles"
                    );
                }
            }
        }
        cache::clear_solve_cache();
        cache::set_solve_cache_mode(prior);
    }

    fn bits_eq(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            })
    }

    #[test]
    fn stale_shape_warm_seed_falls_back_to_cold_bitwise() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        cache::set_solve_cache_mode(CacheMode::Off);
        let params = CrossbarParams::with_size(12);
        let run = |t: &Tensor, warm: Option<&TileSolveState>| {
            simulate_tile_seeded(
                t,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                4,
                warm,
            )
            .unwrap()
        };
        // A seed from a 12×12 geometry handed to an 8×8 re-map (the remap /
        // hot-swap path after repair changed the tile shape) must be dropped,
        // not fed to the solver: the run degrades to exactly the cold solve.
        let (_, stale) = run(&rand_tile(12, 12, 31, 1.0), None);
        let small = rand_tile(8, 8, 32, 1.0);
        let (cold, _) = run(&small, None);
        let (warmed, _) = run(&small, Some(&stale));
        assert_eq!(warmed.weights, cold.weights);
        assert_eq!(
            warmed.stats, cold.stats,
            "stale seed must cost nothing extra"
        );
        assert_eq!(warmed.fallback, cold.fallback);
        cache::set_solve_cache_mode(prior);
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn swap_columns_rejects_mismatched_geometry() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = cache::solve_cache_mode();
        cache::set_solve_cache_mode(CacheMode::Off);
        let params = CrossbarParams::with_size(8);
        let (_, state) = simulate_tile_seeded(
            &rand_tile(8, 8, 17, 1.0),
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            2,
            None,
        )
        .unwrap();
        cache::set_solve_cache_mode(prior);
        // 64 voltages are not a whole number of 5-wide rows.
        let _ = state.swap_columns(5, &[(0, 1)]);
    }

    #[test]
    fn invalid_params_surface_as_config_error() {
        let mut params = CrossbarParams::with_size(8);
        params.r_min = -5.0;
        let tile = Tensor::ones(&[8, 8]);
        let err = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap_err();
        assert!(
            matches!(&err, SolveError::Config(_)),
            "expected a config error, got {err:?}"
        );
    }

    #[test]
    fn zero_padded_tile_reports_high_low_g_fraction() {
        let params = CrossbarParams::with_size(8);
        let mut tile = Tensor::zeros(&[8, 8]);
        tile.set2(0, 0, 1.0);
        let out = simulate_tile(
            &tile,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
        )
        .unwrap();
        assert!(out.low_g_fraction > 0.95);
    }
}
