//! Closed-loop program-and-verify writes with per-tile fault reporting.
//!
//! Real memristive deployments do not program a conductance once and hope:
//! the periphery writes, reads the device back, and re-writes the cells that
//! landed outside tolerance — a bounded *program-and-verify* loop. Devices
//! that never converge are *stuck* (broken filament at `Gmin`, shorted cell
//! at `Gmax`) and must be handled structurally (spare-column repair or
//! digital correction in `xbar-core`) rather than by rewriting.
//!
//! This module implements that loop for one conductance array:
//!
//! 1. program every device (Gaussian variation draw, [`apply_variation`]);
//! 2. stuck devices snap to their rail regardless of the write
//!    ([`FaultModel::mask`] — the mask is drawn once per array, so retries
//!    never heal a broken device);
//! 3. read-verify: compare realized vs target conductance against
//!    `verify_tolerance × (Gmax − Gmin)`;
//! 4. re-write only the failing, non-stuck cells with the programming noise
//!    narrowed by `sigma_backoff` each attempt (closed-loop writes converge);
//! 5. after `max_retries`, emit a [`FaultReport`]: stuck coordinates, the
//!    per-column fault-attributable error, and retry/re-write counts.
//!
//! With `max_retries = 0` (the default) the numerics are bit-identical to
//! open-loop programming — existing deterministic tests and calibrations are
//! unaffected — while the report still localises every stuck device.

use crate::conductance::ConductanceMatrix;
use crate::faults::{apply_mask, FaultKind, FaultModel};
use crate::variation::apply_variation;

/// Which array of the differential pair a device belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayKind {
    /// The positive-weight array (`G⁺`).
    Pos,
    /// The negative-weight array (`G⁻`).
    Neg,
}

/// Configuration of the program-and-verify write loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramConfig {
    /// Maximum re-write attempts per array after the initial programming
    /// pass. `0` (default) reproduces open-loop programming exactly.
    pub max_retries: u32,
    /// Read-verify acceptance band as a fraction of the conductance span
    /// `Gmax − Gmin`: a cell passes when `|G − G_target| ≤ tol × span`.
    pub verify_tolerance: f64,
    /// Multiplier applied to the programming-noise sigma on each retry
    /// (closed-loop writes narrow the error), in `(0, 1]`.
    pub sigma_backoff: f64,
}

impl Default for ProgramConfig {
    fn default() -> Self {
        Self {
            max_retries: 0,
            verify_tolerance: 0.02,
            sigma_backoff: 0.5,
        }
    }
}

impl ProgramConfig {
    /// Validates the write-loop configuration.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message if the tolerance is not positive or the
    /// backoff is outside `(0, 1]`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.verify_tolerance <= 0.0 {
            return Err(format!(
                "program-and-verify tolerance must be positive, got {}",
                self.verify_tolerance
            ));
        }
        if !(self.sigma_backoff > 0.0 && self.sigma_backoff <= 1.0) {
            return Err(format!(
                "program-and-verify sigma backoff must be in (0, 1], got {}",
                self.sigma_backoff
            ));
        }
        Ok(())
    }
}

/// One device that never verified: stuck at a rail, with its programming
/// error in both conductance and (relative) weight space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckCell {
    /// Row (word line) inside the tile.
    pub row: usize,
    /// Column (bit line) inside the tile.
    pub col: usize,
    /// Which array of the differential pair.
    pub array: ArrayKind,
    /// What the device is stuck at.
    pub kind: FaultKind,
    /// The target conductance the write loop was aiming for, S.
    pub target: f64,
    /// The realized (rail) conductance, S.
    pub actual: f64,
    /// `(actual − target) / span` — the signed conductance error as a
    /// fraction of `Gmax − Gmin`.
    pub delta_rel: f64,
}

impl StuckCell {
    /// Magnitude of the relative conductance error.
    pub fn severity(&self) -> f64 {
        self.delta_rel.abs()
    }

    /// Signed contribution of this stuck device to the read-back *weight*
    /// at `(row, col)`: `w' ≈ w + weight_error`. A stuck `G⁺` device adds
    /// its conductance error, a stuck `G⁻` device subtracts it. This is what
    /// digital column correction removes in the periphery.
    pub fn weight_error(&self, w_ref: f32) -> f32 {
        let sign = match self.array {
            ArrayKind::Pos => 1.0,
            ArrayKind::Neg => -1.0,
        };
        (sign * self.delta_rel) as f32 * w_ref
    }
}

/// Per-tile verdict of the read-verify pass over both arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Stuck devices (both arrays) with their programming error.
    pub stuck_cells: Vec<StuckCell>,
    /// Fault-attributable error per tile column: sum of stuck-cell
    /// severities landing in that column, across both arrays. This is the
    /// signal the spare-column repair ranks columns by.
    pub column_error: Vec<f64>,
    /// Total cell re-writes issued by the verify loop (both arrays).
    pub reprogrammed: usize,
    /// Verify/re-write rounds actually used (max over both arrays).
    pub retry_rounds: u32,
}

impl FaultReport {
    /// A report for a fault-free tile of `cols` columns.
    pub fn clean(cols: usize) -> Self {
        Self {
            column_error: vec![0.0; cols],
            ..Self::default()
        }
    }

    /// Number of stuck devices.
    pub fn stuck_count(&self) -> usize {
        self.stuck_cells.len()
    }

    /// Whether the tile has no stuck devices at all.
    pub fn is_clean(&self) -> bool {
        self.stuck_cells.is_empty()
    }

    /// The tile's fault score: the worst per-column fault-attributable
    /// error. `0` for a clean tile.
    pub fn fault_score(&self) -> f64 {
        self.column_error.iter().copied().fold(0.0, f64::max)
    }

    /// Columns with any fault-attributable error, worst first.
    pub fn worst_columns(&self) -> Vec<(usize, f64)> {
        let mut cols: Vec<(usize, f64)> = self
            .column_error
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, e)| e > 0.0)
            .collect();
        cols.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        cols
    }

    /// Indices of columns containing at least one stuck device.
    pub fn affected_columns(&self) -> Vec<usize> {
        self.worst_columns().into_iter().map(|(c, _)| c).collect()
    }

    /// Folds a per-array outcome into this tile-level report.
    fn absorb(&mut self, outcome: ArrayOutcome) {
        for cell in &outcome.stuck {
            self.column_error[cell.col] += cell.severity();
        }
        self.stuck_cells.extend(outcome.stuck);
        self.reprogrammed += outcome.reprogrammed;
        self.retry_rounds = self.retry_rounds.max(outcome.retry_rounds);
    }

    /// Builds the tile report from the two array outcomes.
    pub fn from_arrays(cols: usize, pos: ArrayOutcome, neg: ArrayOutcome) -> Self {
        let mut report = Self::clean(cols);
        report.absorb(pos);
        report.absorb(neg);
        report
    }
}

/// Result of programming one array: the realized conductances plus what the
/// verify loop learned.
#[derive(Debug, Clone)]
pub struct ArrayOutcome {
    /// The realized conductances after variation, faults, and retries.
    pub g: ConductanceMatrix,
    /// Devices that can never verify (stuck at a rail).
    pub stuck: Vec<StuckCell>,
    /// Cell re-writes issued by the verify loop.
    pub reprogrammed: usize,
    /// Verify/re-write rounds actually used.
    pub retry_rounds: u32,
}

/// Programs one array toward `targets` with the closed-loop verify retry
/// scheme described in the module docs.
///
/// * `seed` drives the initial programming-noise draw (and, salted per
///   attempt, the retry re-draws);
/// * `fault_seed` drives the stuck-device mask — kept separate so the same
///   physical devices stay stuck across re-programming attempts.
#[allow(clippy::too_many_arguments)]
pub fn program_array(
    targets: &ConductanceMatrix,
    faults: &FaultModel,
    sigma: f64,
    g_min: f64,
    g_max: f64,
    cfg: &ProgramConfig,
    seed: u64,
    fault_seed: u64,
    array: ArrayKind,
) -> ArrayOutcome {
    let (rows, cols) = (targets.rows(), targets.cols());
    let mask = faults.mask(rows, cols, fault_seed);
    let mut g = targets.clone();
    apply_variation(&mut g, sigma, g_min, seed);
    apply_mask(&mut g, &mask, g_min, g_max);

    let span = g_max - g_min;
    let tol = cfg.verify_tolerance * span;
    let mut reprogrammed = 0usize;
    let mut retry_rounds = 0u32;
    if cfg.max_retries > 0 && sigma > 0.0 {
        for attempt in 1..=cfg.max_retries {
            let failing: Vec<usize> = g
                .as_slice()
                .iter()
                .zip(targets.as_slice())
                .enumerate()
                .filter(|&(i, (&got, &want))| mask[i].is_none() && (got - want).abs() > tol)
                .map(|(i, _)| i)
                .collect();
            if failing.is_empty() {
                break;
            }
            retry_rounds = attempt;
            // Closed-loop re-write: each attempt narrows the noise.
            let sigma_k = sigma * cfg.sigma_backoff.powi(attempt as i32);
            let mut redraw = targets.clone();
            let attempt_seed = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            apply_variation(&mut redraw, sigma_k, g_min, attempt_seed);
            for i in failing {
                g.as_mut_slice()[i] = redraw.as_slice()[i];
                reprogrammed += 1;
            }
        }
    }

    let stuck = mask
        .iter()
        .enumerate()
        .filter_map(|(i, kind)| {
            kind.map(|kind| {
                let target = targets.as_slice()[i];
                let actual = g.as_slice()[i];
                StuckCell {
                    row: i / cols,
                    col: i % cols,
                    array,
                    kind,
                    target,
                    actual,
                    delta_rel: (actual - target) / span,
                }
            })
        })
        .collect();
    ArrayOutcome {
        g,
        stuck,
        reprogrammed,
        retry_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(rows: usize, cols: usize) -> ConductanceMatrix {
        ConductanceMatrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| 1e-6 + (i % 10) as f64 * 1e-6)
                .collect(),
        )
    }

    const G_MIN: f64 = 1e-6;
    const G_MAX: f64 = 1e-5;

    #[test]
    fn zero_retries_match_open_loop_programming() {
        let t = targets(8, 8);
        let fm = FaultModel {
            stuck_at_gmin: 0.1,
            stuck_at_gmax: 0.05,
        };
        let out = program_array(
            &t,
            &fm,
            0.1,
            G_MIN,
            G_MAX,
            &ProgramConfig::default(),
            7,
            99,
            ArrayKind::Pos,
        );
        // Reference: the historical open-loop sequence.
        let mut expect = t.clone();
        apply_variation(&mut expect, 0.1, G_MIN, 7);
        fm.inject(&mut expect, G_MIN, G_MAX, 99);
        assert_eq!(out.g, expect);
        assert_eq!(out.reprogrammed, 0);
        assert_eq!(out.retry_rounds, 0);
    }

    #[test]
    fn retries_pull_non_stuck_cells_into_tolerance() {
        let t = targets(16, 16);
        let cfg = ProgramConfig {
            max_retries: 5,
            verify_tolerance: 0.02,
            sigma_backoff: 0.5,
        };
        let open = program_array(
            &t,
            &FaultModel::none(),
            0.2,
            G_MIN,
            G_MAX,
            &ProgramConfig::default(),
            3,
            0,
            ArrayKind::Pos,
        );
        let closed = program_array(
            &t,
            &FaultModel::none(),
            0.2,
            G_MIN,
            G_MAX,
            &cfg,
            3,
            0,
            ArrayKind::Pos,
        );
        let out_of_tol = |g: &ConductanceMatrix| {
            let tol = cfg.verify_tolerance * (G_MAX - G_MIN);
            g.as_slice()
                .iter()
                .zip(t.as_slice())
                .filter(|(&got, &want)| (got - want).abs() > tol)
                .count()
        };
        assert!(closed.reprogrammed > 0);
        assert!(closed.retry_rounds >= 1);
        assert!(
            out_of_tol(&closed.g) < out_of_tol(&open.g),
            "verify loop must reduce mis-programmed cells: {} vs {}",
            out_of_tol(&closed.g),
            out_of_tol(&open.g)
        );
    }

    #[test]
    fn stuck_cells_survive_retries_and_are_reported() {
        let t = targets(10, 10);
        let fm = FaultModel {
            stuck_at_gmin: 0.15,
            stuck_at_gmax: 0.05,
        };
        let cfg = ProgramConfig {
            max_retries: 8,
            ..ProgramConfig::default()
        };
        let out = program_array(&t, &fm, 0.1, G_MIN, G_MAX, &cfg, 11, 21, ArrayKind::Neg);
        assert!(!out.stuck.is_empty());
        let mask = fm.mask(10, 10, 21);
        assert_eq!(
            out.stuck.len(),
            mask.iter().filter(|k| k.is_some()).count(),
            "every masked device must be reported stuck"
        );
        for cell in &out.stuck {
            let expected_rail = match cell.kind {
                FaultKind::StuckAtGmin => G_MIN,
                FaultKind::StuckAtGmax => G_MAX,
            };
            assert_eq!(cell.actual, expected_rail);
            assert_eq!(cell.array, ArrayKind::Neg);
            assert_eq!(out.g.at(cell.row, cell.col), expected_rail);
        }
    }

    #[test]
    fn report_aggregates_column_errors_and_scores() {
        let pos = ArrayOutcome {
            g: ConductanceMatrix::filled(2, 3, 5e-6),
            stuck: vec![StuckCell {
                row: 0,
                col: 1,
                array: ArrayKind::Pos,
                kind: FaultKind::StuckAtGmax,
                target: G_MIN,
                actual: G_MAX,
                delta_rel: 1.0,
            }],
            reprogrammed: 2,
            retry_rounds: 1,
        };
        let neg = ArrayOutcome {
            g: ConductanceMatrix::filled(2, 3, 5e-6),
            stuck: vec![StuckCell {
                row: 1,
                col: 2,
                array: ArrayKind::Neg,
                kind: FaultKind::StuckAtGmin,
                target: 5e-6,
                actual: G_MIN,
                delta_rel: -0.5,
            }],
            reprogrammed: 1,
            retry_rounds: 3,
        };
        let report = FaultReport::from_arrays(3, pos, neg);
        assert_eq!(report.stuck_count(), 2);
        assert_eq!(report.reprogrammed, 3);
        assert_eq!(report.retry_rounds, 3);
        assert_eq!(report.column_error, vec![0.0, 1.0, 0.5]);
        assert_eq!(report.fault_score(), 1.0);
        assert_eq!(report.worst_columns(), vec![(1, 1.0), (2, 0.5)]);
        assert_eq!(report.affected_columns(), vec![1, 2]);
    }

    #[test]
    fn weight_error_sign_follows_array() {
        let mut cell = StuckCell {
            row: 0,
            col: 0,
            array: ArrayKind::Pos,
            kind: FaultKind::StuckAtGmax,
            target: G_MIN,
            actual: G_MAX,
            delta_rel: 1.0,
        };
        assert!((cell.weight_error(2.0) - 2.0).abs() < 1e-6);
        cell.array = ArrayKind::Neg;
        assert!((cell.weight_error(2.0) + 2.0).abs() < 1e-6);
    }

    #[test]
    fn clean_report_for_no_faults() {
        let out = program_array(
            &targets(4, 4),
            &FaultModel::none(),
            0.0,
            G_MIN,
            G_MAX,
            &ProgramConfig::default(),
            0,
            0,
            ArrayKind::Pos,
        );
        let report = FaultReport::from_arrays(4, out.clone(), out);
        assert!(report.is_clean());
        assert_eq!(report.fault_score(), 0.0);
    }

    #[test]
    fn bad_config_is_rejected() {
        let bad_tol = ProgramConfig {
            verify_tolerance: 0.0,
            ..ProgramConfig::default()
        };
        assert!(bad_tol.validate().unwrap_err().contains("tolerance"));
        let bad_backoff = ProgramConfig {
            sigma_backoff: 1.5,
            ..ProgramConfig::default()
        };
        assert!(bad_backoff.validate().unwrap_err().contains("backoff"));
        assert!(ProgramConfig::default().validate().is_ok());
    }
}
