//! Gaussian device-variation profiling.
//!
//! The paper includes synaptic variations/non-linearities "with Gaussian
//! profiling": every programmed conductance is perturbed multiplicatively by
//! `1 + σ·z`, `z ~ N(0, 1)`, modelling cycle-to-cycle and device-to-device
//! programming error.

use crate::conductance::ConductanceMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lower clamp on a perturbed conductance, as a fraction of `g_min`: a
/// device cannot become an open circuit from programming noise.
const FLOOR_FRACTION: f64 = 0.1;

/// Applies multiplicative Gaussian variation to every device in place,
/// deterministically from `seed`.
///
/// `sigma` is the relative standard deviation; values are floored at
/// `FLOOR_FRACTION·g_min` to stay physical.
pub fn apply_variation(g: &mut ConductanceMatrix, sigma: f64, g_min: f64, seed: u64) {
    if sigma <= 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let floor = FLOOR_FRACTION * g_min;
    for v in g.as_mut_slice() {
        let z = gaussian(&mut rng);
        *v = (*v * (1.0 + sigma * z)).max(floor);
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut g = ConductanceMatrix::filled(4, 4, 1e-5);
        let orig = g.clone();
        apply_variation(&mut g, 0.0, 5e-6, 1);
        assert_eq!(g, orig);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ConductanceMatrix::filled(8, 8, 1e-5);
        let mut b = ConductanceMatrix::filled(8, 8, 1e-5);
        apply_variation(&mut a, 0.1, 5e-6, 7);
        apply_variation(&mut b, 0.1, 5e-6, 7);
        assert_eq!(a, b);
        let mut c = ConductanceMatrix::filled(8, 8, 1e-5);
        apply_variation(&mut c, 0.1, 5e-6, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn empirical_sigma_matches() {
        let mut g = ConductanceMatrix::filled(100, 100, 1e-5);
        apply_variation(&mut g, 0.1, 5e-6, 42);
        let mean = g.mean();
        let var = g
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / g.as_slice().len() as f64;
        let rel_std = var.sqrt() / 1e-5;
        assert!((mean - 1e-5).abs() / 1e-5 < 0.01, "mean {mean}");
        assert!((rel_std - 0.1).abs() < 0.02, "rel std {rel_std}");
    }

    #[test]
    fn floor_keeps_devices_conducting() {
        let mut g = ConductanceMatrix::filled(50, 50, 1e-9);
        apply_variation(&mut g, 5.0, 1e-9, 3); // absurd sigma
        let floor = FLOOR_FRACTION * 1e-9;
        assert!(g.as_slice().iter().all(|&v| v >= floor));
    }
}
