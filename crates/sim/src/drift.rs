//! Time-dependent conductance drift (retention loss).
//!
//! Programmed memristive cells do not hold their state forever: over the
//! serving lifetime each device relaxes toward its OFF conductance. We model
//! this as a per-cell exponential decay toward `G_off = Gmin`:
//!
//! ```text
//! G(t) = G_off + (G0 − G_off) · exp(−(t − t_prog) / τ)
//! ```
//!
//! where `G0` is the programmed conductance, `t_prog` the (per-cell) time of
//! the last programming event and `τ` a per-cell retention time constant
//! drawn log-uniformly from `[tau_fast, tau_slow]`. A wide `tau_slow /
//! tau_fast` ratio makes the population bimodal in effect: fast cells relax
//! almost completely within the observation window — behaving like the
//! paper's stuck-at-`Gmin` faults — while slow cells barely move. Time never
//! advances implicitly: callers drive it explicitly through
//! [`ProgrammedPair::advance_time`], so every run is reproducible from the
//! seed alone.

use crate::conductance::DifferentialPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Odd multiplicative constant used to derive independent per-column RNG
/// streams when remapping (splitmix-style mixing).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Retention-drift model parameters: the per-cell time-constant range.
///
/// `tau_fast == tau_slow == 0` disables drift entirely (the default), in
/// which case programmed tiles are returned verbatim no matter how much time
/// has elapsed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Fastest retention time constant, seconds. Cells at this end of the
    /// distribution relax quickly toward `G_off`.
    pub tau_fast: f64,
    /// Slowest retention time constant, seconds.
    pub tau_slow: f64,
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::disabled()
    }
}

impl DriftModel {
    /// Drift turned off: tiles never decay.
    pub fn disabled() -> Self {
        Self {
            tau_fast: 0.0,
            tau_slow: 0.0,
        }
    }

    /// A drift model with per-cell time constants log-uniform in
    /// `[tau_fast, tau_slow]` seconds.
    pub fn new(tau_fast: f64, tau_slow: f64) -> Self {
        Self { tau_fast, tau_slow }
    }

    /// Whether any decay happens at all.
    pub fn is_enabled(&self) -> bool {
        self.tau_slow > 0.0
    }

    /// Validates the time-constant range.
    ///
    /// # Errors
    ///
    /// Returns a description if the constants are negative, non-finite, or
    /// inverted. Both-zero (disabled) is valid.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.tau_fast == 0.0 && self.tau_slow == 0.0 {
            return Ok(());
        }
        if !(self.tau_fast.is_finite() && self.tau_slow.is_finite()) {
            return Err(format!(
                "drift time constants must be finite, got tau_fast = {}, tau_slow = {}",
                self.tau_fast, self.tau_slow
            ));
        }
        if self.tau_fast <= 0.0 || self.tau_slow <= 0.0 {
            return Err(format!(
                "drift time constants must both be positive (or both zero to \
                 disable), got tau_fast = {}, tau_slow = {}",
                self.tau_fast, self.tau_slow
            ));
        }
        if self.tau_fast > self.tau_slow {
            return Err(format!(
                "tau_fast must not exceed tau_slow, got tau_fast = {} > tau_slow = {}",
                self.tau_fast, self.tau_slow
            ));
        }
        Ok(())
    }

    /// Draws `n` per-cell time constants, log-uniform in
    /// `[tau_fast, tau_slow]`, deterministically from `seed`.
    ///
    /// When drift is disabled every constant is `+∞` (no decay).
    pub fn sample_taus(&self, n: usize, seed: u64) -> Vec<f64> {
        if !self.is_enabled() {
            return vec![f64::INFINITY; n];
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = (self.tau_fast.ln(), self.tau_slow.ln());
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                (lo + u * (hi - lo)).exp()
            })
            .collect()
    }

    /// Expected decay fraction `E_τ[1 − exp(−t/τ)]` at elapsed time `t`,
    /// integrated numerically over the log-uniform τ distribution.
    pub fn mean_decay(&self, t: f64) -> f64 {
        if !self.is_enabled() || t <= 0.0 {
            return 0.0;
        }
        let (lo, hi) = (self.tau_fast.ln(), self.tau_slow.ln());
        if hi <= lo {
            return 1.0 - (-t / self.tau_fast).exp();
        }
        const N: usize = 512;
        let step = (hi - lo) / N as f64;
        let mut acc = 0.0;
        for k in 0..N {
            let tau = (lo + (k as f64 + 0.5) * step).exp();
            acc += 1.0 - (-t / tau).exp();
        }
        acc / N as f64
    }

    /// Inverts [`mean_decay`](Self::mean_decay) by bisection: the elapsed
    /// time at which the expected decay fraction reaches `frac`.
    ///
    /// # Panics
    ///
    /// Panics if drift is disabled or `frac` is outside `(0, 1)`.
    pub fn horizon_for_decay(&self, frac: f64) -> f64 {
        assert!(
            self.is_enabled(),
            "horizon_for_decay requires an enabled drift model"
        );
        assert!(
            frac > 0.0 && frac < 1.0,
            "decay fraction must be in (0, 1), got {frac}"
        );
        let mut hi = self.tau_slow;
        for _ in 0..200 {
            if self.mean_decay(hi) >= frac {
                break;
            }
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..128 {
            let mid = 0.5 * (lo + hi);
            if self.mean_decay(mid) < frac {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// A differential pair *as programmed*, plus the per-device retention state
/// needed to replay its conductances at any later time.
///
/// Cell index space: `0..n` addresses the positive array in row-major order,
/// `n..2n` the negative array, where `n = rows·cols`.
#[derive(Debug, Clone)]
pub struct ProgrammedPair {
    target: DifferentialPair,
    model: DriftModel,
    g_off: f64,
    seed: u64,
    /// Per-cell retention constants (positive array, then negative).
    taus: Vec<f64>,
    /// Per-cell time of the last programming event.
    t_prog: Vec<f64>,
    elapsed: f64,
}

impl ProgrammedPair {
    /// Wraps a freshly programmed differential pair at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns the [`DriftModel::validate`] description if the model is
    /// inconsistent.
    pub fn new(
        target: DifferentialPair,
        model: DriftModel,
        g_off: f64,
        seed: u64,
    ) -> std::result::Result<Self, String> {
        model.validate()?;
        let n = 2 * target.pos.as_slice().len();
        Ok(Self {
            taus: model.sample_taus(n, seed),
            t_prog: vec![0.0; n],
            elapsed: 0.0,
            target,
            model,
            g_off,
            seed,
        })
    }

    /// The conductances as originally programmed.
    pub fn target(&self) -> &DifferentialPair {
        &self.target
    }

    /// Elapsed time since initial programming, seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Number of devices across both arrays.
    pub fn cell_count(&self) -> usize {
        2 * self.target.pos.as_slice().len()
    }

    /// Advances the clock by `dt` seconds. Time only moves forward and only
    /// through this call, so `advance_time(a); advance_time(b)` is exactly
    /// `advance_time(a + b)`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn advance_time(&mut self, dt: f64) {
        assert!(
            dt >= 0.0 && dt.is_finite(),
            "dt must be finite and >= 0, got {dt}"
        );
        self.elapsed += dt;
    }

    fn drifted(&self, idx: usize, g0: f64) -> f64 {
        let age = self.elapsed - self.t_prog[idx];
        if age <= 0.0 {
            return g0;
        }
        self.g_off + (g0 - self.g_off) * (-age / self.taus[idx]).exp()
    }

    /// Decay fraction `1 − exp(−age/τ)` of one cell (0 = as programmed,
    /// 1 = fully relaxed to `G_off`).
    pub fn decay_fraction(&self, idx: usize) -> f64 {
        if !self.model.is_enabled() {
            return 0.0;
        }
        let age = self.elapsed - self.t_prog[idx];
        if age <= 0.0 {
            return 0.0;
        }
        1.0 - (-age / self.taus[idx]).exp()
    }

    /// The conductances at the current elapsed time.
    ///
    /// With drift disabled, or for any cell whose age is zero (freshly
    /// programmed or refreshed), the programmed value is returned
    /// bit-identically — no float round-trip through the decay formula.
    pub fn current(&self) -> DifferentialPair {
        let mut out = self.target.clone();
        if !self.model.is_enabled() {
            return out;
        }
        let n = out.pos.as_slice().len();
        for (i, v) in out.pos.as_mut_slice().iter_mut().enumerate() {
            *v = self.drifted(i, *v);
        }
        for (i, v) in out.neg.as_mut_slice().iter_mut().enumerate() {
            *v = self.drifted(n + i, *v);
        }
        out
    }

    /// Mean decay fraction over all cells.
    pub fn mean_decay(&self) -> f64 {
        let n = self.cell_count();
        if n == 0 {
            return 0.0;
        }
        (0..n).map(|i| self.decay_fraction(i)).sum::<f64>() / n as f64
    }

    /// Largest per-cell decay fraction.
    pub fn max_decay(&self) -> f64 {
        (0..self.cell_count())
            .map(|i| self.decay_fraction(i))
            .fold(0.0, f64::max)
    }

    /// Per-column mean decay fraction (averaged over rows and both arrays):
    /// the ranking signal for spare-column remapping.
    pub fn column_decay(&self) -> Vec<f64> {
        let rows = self.target.pos.rows();
        let cols = self.target.pos.cols();
        let n = rows * cols;
        let mut out = vec![0.0; cols];
        if rows == 0 || !self.model.is_enabled() {
            return out;
        }
        for r in 0..rows {
            for (c, acc) in out.iter_mut().enumerate() {
                let idx = r * cols + c;
                *acc += self.decay_fraction(idx) + self.decay_fraction(n + idx);
            }
        }
        for acc in &mut out {
            *acc /= 2.0 * rows as f64;
        }
        out
    }

    /// Program-and-verify refresh: every cell whose decay fraction exceeds
    /// `tol` is rewritten to its target conductance (its `t_prog` becomes
    /// the current time, so it reads back bit-identical to the programmed
    /// value). Returns the number of cells rewritten.
    pub fn refresh_drifted(&mut self, tol: f64) -> usize {
        let mut rewritten = 0;
        for idx in 0..self.cell_count() {
            if self.decay_fraction(idx) > tol {
                self.t_prog[idx] = self.elapsed;
                rewritten += 1;
            }
        }
        rewritten
    }

    /// Rewrites every cell to its target conductance. Returns the cell
    /// count.
    pub fn reprogram_all(&mut self) -> usize {
        for t in &mut self.t_prog {
            *t = self.elapsed;
        }
        self.t_prog.len()
    }

    /// Relocates the given columns onto spare physical devices: each cell in
    /// those columns gets a *new* retention constant (drawn deterministically
    /// from the pair seed, `salt` and the column index) and is reprogrammed
    /// to its target conductance. Returns the number of columns remapped.
    pub fn remap_columns(&mut self, columns: &[usize], salt: u64) -> usize {
        let rows = self.target.pos.rows();
        let cols = self.target.pos.cols();
        let n = rows * cols;
        let mut remapped = 0;
        for &c in columns {
            if c >= cols {
                continue;
            }
            let col_seed = self
                .seed
                .wrapping_add(salt.wrapping_mul(SEED_MIX))
                .wrapping_add((c as u64 + 1).wrapping_mul(SEED_MIX));
            let fresh = self.model.sample_taus(2 * rows, col_seed);
            for r in 0..rows {
                let idx = r * cols + c;
                self.taus[idx] = fresh[2 * r];
                self.taus[n + idx] = fresh[2 * r + 1];
                self.t_prog[idx] = self.elapsed;
                self.t_prog[n + idx] = self.elapsed;
            }
            remapped += 1;
        }
        remapped
    }

    /// Whether every cell currently reads back its programmed value exactly.
    pub fn is_pristine(&self) -> bool {
        !self.model.is_enabled() || self.t_prog.iter().all(|&t| self.elapsed - t <= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conductance::{weights_to_conductances, MappingScale};
    use crate::params::CrossbarParams;
    use xbar_tensor::Tensor;

    fn pair(n: usize) -> (DifferentialPair, f64) {
        let params = CrossbarParams::with_size(n);
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i as f32) / (n * n) as f32) - 0.5)
            .collect();
        let w = Tensor::from_vec(data, &[n, n]).unwrap();
        let p = weights_to_conductances(&w, MappingScale::PerTileMax, 0.0, &params);
        (p, params.g_min())
    }

    #[test]
    fn validate_rejects_inverted_and_negative() {
        assert!(DriftModel::new(10.0, 1.0).validate().is_err());
        assert!(DriftModel::new(-1.0, 1.0).validate().is_err());
        assert!(DriftModel::new(0.0, 1.0).validate().is_err());
        assert!(DriftModel::disabled().validate().is_ok());
        assert!(DriftModel::new(1.0, 1.0).validate().is_ok());
        assert!(DriftModel::new(1.0, 1e6).validate().is_ok());
    }

    #[test]
    fn mean_decay_is_monotone_and_bounded() {
        let m = DriftModel::new(10.0, 1e5);
        assert_eq!(m.mean_decay(0.0), 0.0);
        let mut prev = 0.0;
        for k in 1..=8 {
            let d = m.mean_decay(10f64.powi(k - 2));
            assert!(d >= prev, "decay must be monotone");
            assert!((0.0..=1.0).contains(&d));
            prev = d;
        }
        assert!(m.mean_decay(1e9) > 0.999);
    }

    #[test]
    fn horizon_inverts_mean_decay() {
        let m = DriftModel::new(10.0, 1e5);
        for frac in [0.01, 0.05, 0.2, 0.8] {
            let t = m.horizon_for_decay(frac);
            assert!(
                (m.mean_decay(t) - frac).abs() < 1e-6,
                "frac {frac}: decay at horizon {t} = {}",
                m.mean_decay(t)
            );
        }
    }

    #[test]
    fn disabled_model_is_passthrough() {
        let (p, g_off) = pair(6);
        let mut pp = ProgrammedPair::new(p.clone(), DriftModel::disabled(), g_off, 7).unwrap();
        pp.advance_time(1e12);
        assert_eq!(pp.current(), p);
        assert_eq!(pp.mean_decay(), 0.0);
        assert!(pp.is_pristine());
    }

    #[test]
    fn drift_decays_toward_g_off() {
        let (p, g_off) = pair(8);
        let m = DriftModel::new(10.0, 1e5);
        let mut pp = ProgrammedPair::new(p.clone(), m, g_off, 3).unwrap();
        pp.advance_time(m.horizon_for_decay(0.5));
        let drifted = pp.current();
        for (d, t) in drifted
            .pos
            .as_slice()
            .iter()
            .chain(drifted.neg.as_slice())
            .zip(p.pos.as_slice().iter().chain(p.neg.as_slice()))
        {
            assert!(*d <= *t + 1e-18, "drift never raises conductance");
            assert!(*d >= g_off - 1e-18, "drift never undershoots G_off");
        }
        assert!(pp.mean_decay() > 0.3);
        assert!(!pp.is_pristine());
    }

    #[test]
    fn refresh_restores_programmed_values_bit_identically() {
        let (p, g_off) = pair(8);
        let m = DriftModel::new(10.0, 1e4);
        let mut pp = ProgrammedPair::new(p.clone(), m, g_off, 11).unwrap();
        pp.advance_time(5e3);
        assert_ne!(pp.current(), p);
        let rewritten = pp.refresh_drifted(0.0);
        assert!(rewritten > 0);
        assert_eq!(pp.current(), p, "refresh must restore exact values");
        assert!(pp.is_pristine());
        // A partial refresh leaves slow (low-decay) cells untouched.
        let mut pp2 = ProgrammedPair::new(p, m, g_off, 11).unwrap();
        pp2.advance_time(5e3);
        let partial = pp2.refresh_drifted(0.5);
        assert!(partial < rewritten);
    }

    #[test]
    fn remap_columns_redraws_taus_deterministically() {
        let (p, g_off) = pair(8);
        let m = DriftModel::new(10.0, 1e4);
        let mut a = ProgrammedPair::new(p.clone(), m, g_off, 5).unwrap();
        let mut b = ProgrammedPair::new(p.clone(), m, g_off, 5).unwrap();
        a.advance_time(1e3);
        b.advance_time(1e3);
        assert_eq!(a.remap_columns(&[2, 5], 1), 2);
        assert_eq!(b.remap_columns(&[2, 5], 1), 2);
        // Remapped columns restore their targets now...
        let decay = a.column_decay();
        assert_eq!(decay[2], 0.0);
        assert!(decay[3] > 0.0);
        // ...and two pairs remapped identically stay in lockstep later.
        a.advance_time(1e3);
        b.advance_time(1e3);
        assert_eq!(a.current(), b.current());
        // Out-of-range columns are ignored.
        assert_eq!(a.remap_columns(&[99], 2), 0);
    }

    #[test]
    fn column_decay_matches_mean() {
        let (p, g_off) = pair(6);
        let m = DriftModel::new(10.0, 1e4);
        let mut pp = ProgrammedPair::new(p, m, g_off, 9).unwrap();
        pp.advance_time(500.0);
        let cols = pp.column_decay();
        let mean_of_cols = cols.iter().sum::<f64>() / cols.len() as f64;
        assert!((mean_of_cols - pp.mean_decay()).abs() < 1e-12);
    }
}
