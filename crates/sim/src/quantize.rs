//! Discrete conductance levels (programming quantization).
//!
//! Practical memristive devices are programmed to a finite number of
//! conductance levels (e.g. 16 or 32 between `Gmin` and `Gmax`) rather than
//! a continuum. Quantization is applied after the weight→conductance mapping
//! and before device variation; `CrossbarParams::levels == 0` keeps the
//! continuous model the paper's framework uses.

use crate::conductance::ConductanceMatrix;

/// Snaps every conductance to the nearest of `levels` equally spaced values
/// in `[g_min, g_max]`, in place. `levels == 0` or `1` is a no-op (a single
/// level cannot represent the mapping and is treated as "disabled").
///
/// # Panics
///
/// Panics if `g_min >= g_max`.
pub fn quantize_conductances(g: &mut ConductanceMatrix, g_min: f64, g_max: f64, levels: u32) {
    assert!(g_min < g_max, "conductance window must be non-empty");
    if levels < 2 {
        return;
    }
    let span = g_max - g_min;
    let steps = (levels - 1) as f64;
    for v in g.as_mut_slice() {
        let x = ((*v - g_min) / span).clamp(0.0, 1.0);
        *v = g_min + (x * steps).round() / steps * span;
    }
}

/// The worst-case conductance error introduced by `levels`-level
/// quantization: half a step.
pub fn quantization_error_bound(g_min: f64, g_max: f64, levels: u32) -> f64 {
    if levels < 2 {
        0.0
    } else {
        (g_max - g_min) / ((levels - 1) as f64) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_levels_snap_to_extremes() {
        let mut g = ConductanceMatrix::from_vec(1, 4, vec![1.0, 1.4, 1.6, 2.0]);
        quantize_conductances(&mut g, 1.0, 2.0, 2);
        assert_eq!(g.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn levels_zero_and_one_are_noops() {
        let mut g = ConductanceMatrix::from_vec(1, 2, vec![1.3, 1.7]);
        let orig = g.clone();
        quantize_conductances(&mut g, 1.0, 2.0, 0);
        assert_eq!(g, orig);
        quantize_conductances(&mut g, 1.0, 2.0, 1);
        assert_eq!(g, orig);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let (g_min, g_max, levels) = (1e-6, 1e-5, 16u32);
        let bound = quantization_error_bound(g_min, g_max, levels);
        let mut s = 3u64;
        for _ in 0..100 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = g_min + (s % 1000) as f64 / 1000.0 * (g_max - g_min);
            let mut g = ConductanceMatrix::from_vec(1, 1, vec![v]);
            quantize_conductances(&mut g, g_min, g_max, levels);
            assert!((g.as_slice()[0] - v).abs() <= bound + 1e-18);
        }
    }

    #[test]
    fn out_of_window_values_clamp() {
        let mut g = ConductanceMatrix::from_vec(1, 2, vec![0.5, 3.0]);
        quantize_conductances(&mut g, 1.0, 2.0, 4);
        assert_eq!(g.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn quantized_values_are_on_the_grid() {
        let (g_min, g_max, levels) = (1.0, 2.0, 5u32);
        let mut g = ConductanceMatrix::from_vec(1, 3, vec![1.1, 1.55, 1.9]);
        quantize_conductances(&mut g, g_min, g_max, levels);
        for &v in g.as_slice() {
            let step = (v - g_min) / (g_max - g_min) * (levels - 1) as f64;
            assert!((step - step.round()).abs() < 1e-12, "off-grid value {v}");
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn inverted_window_panics() {
        let mut g = ConductanceMatrix::filled(1, 1, 1.0);
        quantize_conductances(&mut g, 2.0, 1.0, 4);
    }
}
