//! Stuck-at device faults.
//!
//! Fabricated crossbars contain a fraction of devices stuck at low
//! conductance (stuck-at-`Gmin`, e.g. broken filament) or high conductance
//! (stuck-at-`Gmax`, e.g. shorted cell). Fault injection is applied after
//! programming (mapping + quantization) and before read-out, and is the
//! failure-injection hook used by the robustness tests: a pruned model's
//! few surviving weights make it disproportionately fragile to faults, the
//! same mechanism the paper identifies for parasitic non-idealities.

use crate::conductance::ConductanceMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rates of stuck-at faults, as independent per-device probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultModel {
    /// Probability a device is stuck at `Gmin`.
    pub stuck_at_gmin: f64,
    /// Probability a device is stuck at `Gmax`.
    pub stuck_at_gmax: f64,
}

impl FaultModel {
    /// A fault-free model.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault can occur.
    pub fn is_active(&self) -> bool {
        self.stuck_at_gmin > 0.0 || self.stuck_at_gmax > 0.0
    }

    /// Validates the rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]` or they sum above 1.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.stuck_at_gmin) && (0.0..=1.0).contains(&self.stuck_at_gmax),
            "fault rates must be probabilities"
        );
        assert!(
            self.stuck_at_gmin + self.stuck_at_gmax <= 1.0,
            "fault rates sum above one"
        );
    }

    /// Injects faults into a conductance array in place, deterministically
    /// from `seed`. Returns the number of faulted devices.
    pub fn inject(&self, g: &mut ConductanceMatrix, g_min: f64, g_max: f64, seed: u64) -> usize {
        self.validate();
        if !self.is_active() {
            return 0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faulted = 0usize;
        for v in g.as_mut_slice() {
            let roll: f64 = rng.gen();
            if roll < self.stuck_at_gmin {
                *v = g_min;
                faulted += 1;
            } else if roll < self.stuck_at_gmin + self.stuck_at_gmax {
                *v = g_max;
                faulted += 1;
            }
        }
        faulted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_noop() {
        let fm = FaultModel::none();
        assert!(!fm.is_active());
        let mut g = ConductanceMatrix::filled(4, 4, 5e-6);
        let orig = g.clone();
        assert_eq!(fm.inject(&mut g, 1e-6, 1e-5, 1), 0);
        assert_eq!(g, orig);
    }

    #[test]
    fn rates_produce_expected_fault_counts() {
        let fm = FaultModel {
            stuck_at_gmin: 0.1,
            stuck_at_gmax: 0.05,
        };
        let mut g = ConductanceMatrix::filled(100, 100, 5e-6);
        let n = fm.inject(&mut g, 1e-6, 1e-5, 42);
        let frac = n as f64 / 10_000.0;
        assert!((frac - 0.15).abs() < 0.02, "fault fraction {frac}");
        // Faulted values are exactly at the rails.
        let rails = g
            .as_slice()
            .iter()
            .filter(|&&v| v == 1e-6 || v == 1e-5)
            .count();
        assert_eq!(rails, n);
    }

    #[test]
    fn deterministic_given_seed() {
        let fm = FaultModel {
            stuck_at_gmin: 0.2,
            stuck_at_gmax: 0.0,
        };
        let mut a = ConductanceMatrix::filled(10, 10, 5e-6);
        let mut b = ConductanceMatrix::filled(10, 10, 5e-6);
        fm.inject(&mut a, 1e-6, 1e-5, 9);
        fm.inject(&mut b, 1e-6, 1e-5, 9);
        assert_eq!(a, b);
        let mut c = ConductanceMatrix::filled(10, 10, 5e-6);
        fm.inject(&mut c, 1e-6, 1e-5, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn negative_rate_panics() {
        let fm = FaultModel {
            stuck_at_gmin: -0.1,
            stuck_at_gmax: 0.0,
        };
        fm.validate();
    }

    #[test]
    #[should_panic(expected = "sum above one")]
    fn rates_summing_above_one_panic() {
        let fm = FaultModel {
            stuck_at_gmin: 0.7,
            stuck_at_gmax: 0.7,
        };
        fm.validate();
    }
}
