//! Stuck-at device faults.
//!
//! Fabricated crossbars contain a fraction of devices stuck at low
//! conductance (stuck-at-`Gmin`, e.g. broken filament) or high conductance
//! (stuck-at-`Gmax`, e.g. shorted cell). Fault injection is applied after
//! programming (mapping + quantization) and before read-out, and is the
//! failure-injection hook used by the robustness tests: a pruned model's
//! few surviving weights make it disproportionately fragile to faults, the
//! same mechanism the paper identifies for parasitic non-idealities.
//!
//! Faults are drawn as a deterministic per-array *mask* ([`FaultModel::mask`])
//! so the program-and-verify retry loop in [`crate::program`] can re-draw
//! programming noise any number of times while the stuck devices stay put —
//! retries never "heal" a broken filament.

use crate::conductance::ConductanceMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rates of stuck-at faults, as independent per-device probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultModel {
    /// Probability a device is stuck at `Gmin`.
    pub stuck_at_gmin: f64,
    /// Probability a device is stuck at `Gmax`.
    pub stuck_at_gmax: f64,
}

/// What a faulty device is stuck at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stuck at the minimum conductance (broken filament): the device reads
    /// as `Gmin` regardless of what was programmed.
    StuckAtGmin,
    /// Stuck at the maximum conductance (shorted cell).
    StuckAtGmax,
}

/// Invalid fault-rate configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A rate is outside `[0, 1]`.
    RateOutOfRange {
        /// Which rate (`"stuck_at_gmin"` / `"stuck_at_gmax"`).
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The rates sum above one, so they cannot be disjoint probabilities.
    RatesSumAboveOne {
        /// `stuck_at_gmin + stuck_at_gmax`.
        sum: f64,
    },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RateOutOfRange { which, value } => write!(
                f,
                "fault rates must be probabilities: {which} = {value} is outside [0, 1]"
            ),
            Self::RatesSumAboveOne { sum } => write!(
                f,
                "fault rates sum above one ({sum}); stuck-at-Gmin and stuck-at-Gmax \
                 are disjoint per-device outcomes"
            ),
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl FaultModel {
    /// A fault-free model.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault can occur.
    pub fn is_active(&self) -> bool {
        self.stuck_at_gmin > 0.0 || self.stuck_at_gmax > 0.0
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`FaultConfigError`] if either rate is outside
    /// `[0, 1]` or the rates sum above 1.
    pub fn validate(&self) -> std::result::Result<(), FaultConfigError> {
        for (which, value) in [
            ("stuck_at_gmin", self.stuck_at_gmin),
            ("stuck_at_gmax", self.stuck_at_gmax),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError::RateOutOfRange { which, value });
            }
        }
        let sum = self.stuck_at_gmin + self.stuck_at_gmax;
        if sum > 1.0 {
            return Err(FaultConfigError::RatesSumAboveOne { sum });
        }
        Ok(())
    }

    /// Draws the deterministic stuck-device mask for one `rows × cols`
    /// array. Entry `r * cols + c` is `Some(kind)` when device `(r, c)` is
    /// stuck. The draw consumes exactly one RNG roll per device, so the mask
    /// is a pure function of `(rates, shape, seed)` and is stable across
    /// program-and-verify retries.
    ///
    /// Rates are assumed valid (see [`FaultModel::validate`], enforced at
    /// configuration time); out-of-range values simply saturate the rolls.
    pub fn mask(&self, rows: usize, cols: usize, seed: u64) -> Vec<Option<FaultKind>> {
        if !self.is_active() {
            return vec![None; rows * cols];
        }
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * cols)
            .map(|_| {
                let roll: f64 = rng.gen();
                if roll < self.stuck_at_gmin {
                    Some(FaultKind::StuckAtGmin)
                } else if roll < self.stuck_at_gmin + self.stuck_at_gmax {
                    Some(FaultKind::StuckAtGmax)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Injects faults into a conductance array in place, deterministically
    /// from `seed`. Returns the number of faulted devices.
    pub fn inject(&self, g: &mut ConductanceMatrix, g_min: f64, g_max: f64, seed: u64) -> usize {
        if !self.is_active() {
            return 0;
        }
        let mask = self.mask(g.rows(), g.cols(), seed);
        apply_mask(g, &mask, g_min, g_max)
    }
}

/// Overrides masked devices with their stuck rail value. Returns the number
/// of faulted devices.
pub fn apply_mask(
    g: &mut ConductanceMatrix,
    mask: &[Option<FaultKind>],
    g_min: f64,
    g_max: f64,
) -> usize {
    debug_assert_eq!(mask.len(), g.as_slice().len());
    let mut faulted = 0usize;
    for (v, kind) in g.as_mut_slice().iter_mut().zip(mask) {
        match kind {
            Some(FaultKind::StuckAtGmin) => {
                *v = g_min;
                faulted += 1;
            }
            Some(FaultKind::StuckAtGmax) => {
                *v = g_max;
                faulted += 1;
            }
            None => {}
        }
    }
    faulted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_noop() {
        let fm = FaultModel::none();
        assert!(!fm.is_active());
        let mut g = ConductanceMatrix::filled(4, 4, 5e-6);
        let orig = g.clone();
        assert_eq!(fm.inject(&mut g, 1e-6, 1e-5, 1), 0);
        assert_eq!(g, orig);
    }

    #[test]
    fn rates_produce_expected_fault_counts() {
        let fm = FaultModel {
            stuck_at_gmin: 0.1,
            stuck_at_gmax: 0.05,
        };
        let mut g = ConductanceMatrix::filled(100, 100, 5e-6);
        let n = fm.inject(&mut g, 1e-6, 1e-5, 42);
        let frac = n as f64 / 10_000.0;
        assert!((frac - 0.15).abs() < 0.02, "fault fraction {frac}");
        // Faulted values are exactly at the rails.
        let rails = g
            .as_slice()
            .iter()
            .filter(|&&v| v == 1e-6 || v == 1e-5)
            .count();
        assert_eq!(rails, n);
    }

    #[test]
    fn deterministic_given_seed() {
        let fm = FaultModel {
            stuck_at_gmin: 0.2,
            stuck_at_gmax: 0.0,
        };
        let mut a = ConductanceMatrix::filled(10, 10, 5e-6);
        let mut b = ConductanceMatrix::filled(10, 10, 5e-6);
        fm.inject(&mut a, 1e-6, 1e-5, 9);
        fm.inject(&mut b, 1e-6, 1e-5, 9);
        assert_eq!(a, b);
        let mut c = ConductanceMatrix::filled(10, 10, 5e-6);
        fm.inject(&mut c, 1e-6, 1e-5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn mask_matches_inject() {
        let fm = FaultModel {
            stuck_at_gmin: 0.15,
            stuck_at_gmax: 0.1,
        };
        let mask = fm.mask(20, 20, 7);
        let mut g = ConductanceMatrix::filled(20, 20, 5e-6);
        let n = fm.inject(&mut g, 1e-6, 1e-5, 7);
        assert_eq!(mask.iter().filter(|k| k.is_some()).count(), n);
        for (i, kind) in mask.iter().enumerate() {
            let v = g.as_slice()[i];
            match kind {
                Some(FaultKind::StuckAtGmin) => assert_eq!(v, 1e-6),
                Some(FaultKind::StuckAtGmax) => assert_eq!(v, 1e-5),
                None => assert_eq!(v, 5e-6),
            }
        }
    }

    #[test]
    fn negative_rate_is_descriptive_error() {
        let fm = FaultModel {
            stuck_at_gmin: -0.1,
            stuck_at_gmax: 0.0,
        };
        let err = fm.validate().unwrap_err();
        assert_eq!(
            err,
            FaultConfigError::RateOutOfRange {
                which: "stuck_at_gmin",
                value: -0.1
            }
        );
        assert!(err.to_string().contains("probabilities"), "{err}");
    }

    #[test]
    fn rates_summing_above_one_are_rejected() {
        let fm = FaultModel {
            stuck_at_gmin: 0.7,
            stuck_at_gmax: 0.7,
        };
        let err = fm.validate().unwrap_err();
        assert!(
            matches!(err, FaultConfigError::RatesSumAboveOne { sum } if (sum - 1.4).abs() < 1e-12),
            "{err:?}"
        );
        assert!(err.to_string().contains("sum above one"), "{err}");
    }

    #[test]
    fn valid_rates_pass() {
        assert!(FaultModel::none().validate().is_ok());
        assert!(FaultModel {
            stuck_at_gmin: 0.5,
            stuck_at_gmax: 0.5,
        }
        .validate()
        .is_ok());
    }
}
