//! The trained surrogate: feature encoding, batched prediction, and the
//! [`TileEmulator`] implementation the mapping pipeline consumes.

use xbar_core::artifact::{surrogate_input_dim, SurrogateMeta};
use xbar_core::pipeline::TileEmulator;
use xbar_nn::arch::{spec_of, LayerSpec};
use xbar_nn::{Mode, Sequential};
use xbar_sim::conductance::ConductanceMatrix;
use xbar_tensor::Tensor;

/// A trained per-tile-shape crossbar emulator.
///
/// Wraps the MLP together with the [`SurrogateMeta`] record (tile shape,
/// normalisation constants, held-out validation errors) that the XBARMDL
/// bundle format persists. Construct via [`crate::train::train_surrogate`]
/// or [`Surrogate::from_parts`].
#[derive(Debug, Clone)]
pub struct Surrogate {
    meta: SurrogateMeta,
    net: Sequential,
}

impl Surrogate {
    /// Reassembles a surrogate from its persisted parts, validating that
    /// the net matches the record's declared architecture and tile shape.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on any geometry disagreement.
    pub fn from_parts(meta: SurrogateMeta, net: Sequential) -> Result<Self, String> {
        let got = spec_of(&net);
        if got != meta.arch {
            return Err(format!(
                "surrogate net architecture {:?} does not match the record's \
                 declared {:?}",
                got, meta.arch
            ));
        }
        let in_dim = surrogate_input_dim(meta.rows, meta.cols);
        let first_in = meta.arch.iter().find_map(|l| match l {
            LayerSpec::Linear { in_f, .. } => Some(*in_f),
            _ => None,
        });
        let last_out = meta.arch.iter().rev().find_map(|l| match l {
            LayerSpec::Linear { out_f, .. } => Some(*out_f),
            _ => None,
        });
        if first_in != Some(in_dim) || last_out != Some(meta.cols) {
            return Err(format!(
                "surrogate net maps {first_in:?} → {last_out:?} features but \
                 {}×{} tiles need {in_dim} → {}",
                meta.rows, meta.cols, meta.cols
            ));
        }
        Ok(Self { meta, net })
    }

    /// Splits the surrogate into the meta record and net that
    /// `save_artifact_bundle` embeds.
    pub fn into_parts(self) -> (SurrogateMeta, Sequential) {
        (self.meta, self.net)
    }

    /// The persisted record (tile shape, normalisation, validation errors).
    pub fn meta(&self) -> &SurrogateMeta {
        &self.meta
    }

    /// Current scale the net's outputs are normalised by: the ideal current
    /// of a fully-ON, fully-driven column.
    fn current_scale(&self) -> f64 {
        current_scale(&self.meta)
    }

    /// Appends the feature vector for one (array, voltages) query. The
    /// layout is part of the artifact format — see
    /// [`xbar_core::artifact::surrogate_input_dim`].
    fn encode_into(&self, g: &ConductanceMatrix, v: &[f64], out: &mut Vec<f32>) {
        encode_query(&self.meta, g, v, out);
    }

    fn check_query(&self, g: &ConductanceMatrix, v: &[f64]) -> Result<(), String> {
        let m = &self.meta;
        if (g.rows(), g.cols()) != (m.rows, m.cols) {
            return Err(format!(
                "surrogate was trained for {}×{} tiles but got a {}×{} array",
                m.rows,
                m.cols,
                g.rows(),
                g.cols()
            ));
        }
        if v.len() != m.rows {
            return Err(format!(
                "surrogate expects {} input voltages, got {}",
                m.rows,
                v.len()
            ));
        }
        Ok(())
    }

    /// Predicted non-ideal column currents (A) for a batch of queries, one
    /// forward pass for the whole batch.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when a query does not fit the trained
    /// tile geometry or the net rejects the batch.
    pub fn predict_currents_batch(
        &self,
        queries: &[(&ConductanceMatrix, &[f64])],
    ) -> Result<Vec<Vec<f64>>, String> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let m = &self.meta;
        let in_dim = surrogate_input_dim(m.rows, m.cols);
        let mut features = Vec::with_capacity(queries.len() * in_dim);
        for (g, v) in queries {
            self.check_query(g, v)?;
            self.encode_into(g, v, &mut features);
        }
        let x = Tensor::from_vec(features, &[queries.len(), in_dim])
            .map_err(|e| format!("surrogate feature batch: {e}"))?;
        // `forward` needs `&mut` for layer scratch space; the net is small,
        // so a clone per batch keeps the public API (and TileEmulator)
        // `&self` + thread-safe.
        let mut net = self.net.clone();
        let y = net
            .forward(&x, Mode::Eval)
            .map_err(|e| format!("surrogate forward: {e}"))?;
        let scale = self.current_scale();
        let data = y.as_slice();
        Ok((0..queries.len())
            .map(|i| {
                (0..m.cols)
                    .map(|c| {
                        // Reconstruct: ideal current (the query's last
                        // feature block) times the predicted ratio.
                        let ideal = x.as_slice()[i * in_dim + in_dim - m.cols + c] as f64;
                        let dev = (data[i * m.cols + c] as f64 / RATIO_GAIN)
                            .clamp(-RATIO_CLAMP, RATIO_CLAMP);
                        // Column currents are physically non-negative;
                        // clamp the regression output accordingly.
                        (ideal * (1.0 + dev) * scale).max(0.0)
                    })
                    .collect()
            })
            .collect())
    }

    /// Predicted non-ideal column currents (A) for one query.
    ///
    /// # Errors
    ///
    /// Same as [`Surrogate::predict_currents_batch`].
    pub fn predict_currents(&self, g: &ConductanceMatrix, v: &[f64]) -> Result<Vec<f64>, String> {
        let mut out = self.predict_currents_batch(&[(g, v)])?;
        Ok(out.pop().expect("one query in, one prediction out"))
    }
}

/// Current the net's outputs are normalised by: the ideal current of a
/// fully-ON, fully-driven column of `meta`'s tile shape.
pub(crate) fn current_scale(meta: &SurrogateMeta) -> f64 {
    meta.g_max * meta.v_read * meta.rows as f64
}

/// The net regresses the per-column current *ratio* deviation
/// `I_exact/I_ideal − 1`, not the absolute current: the ideal current is
/// already an input feature, and the ratio (one minus the column's
/// non-ideality factor) is a near-linear function of the aggregate
/// conductance/current features, which a small MLP learns readily — this
/// is exactly the quantity the `W''` fold consumes. Ratios are clamped to
/// `1 ± RATIO_CLAMP` (sneak paths can inflate the ratio arbitrarily on
/// near-zero ideal currents) and amplified by `RATIO_GAIN` during training
/// so targets sit in a healthy range for SGD; predictions invert both.
pub(crate) const RATIO_GAIN: f64 = 40.0;
/// Largest ratio deviation the net models; matches the fold's `[0, 2]`
/// scale clamp in `xbar_core::pipeline`.
pub(crate) const RATIO_CLAMP: f64 = 1.0;

/// Appends the feature vector for one (array, voltages) query: normalised
/// row voltages, per-row ideal currents, per-column conductance sums,
/// per-column depth-weighted ideal currents (each device weighted by how
/// far down the column wire its current enters — the first-order spatial
/// moment column IR drop responds to), then normalised per-column ideal
/// currents. One pass over the array, row-major. The layout is part of the
/// artifact format — see [`xbar_core::artifact::surrogate_input_dim`].
pub(crate) fn encode_query(
    meta: &SurrogateMeta,
    g: &ConductanceMatrix,
    v: &[f64],
    out: &mut Vec<f32>,
) {
    let (rows, cols) = (meta.rows, meta.cols);
    out.extend(v.iter().map(|&x| (x / meta.v_read) as f32));
    let mut col_g = vec![0.0f64; cols];
    let mut col_depth = vec![0.0f64; cols];
    let mut col_ideal = vec![0.0f64; cols];
    let row_scale = meta.g_max * meta.v_read * cols as f64;
    let flat = g.as_slice();
    for r in 0..rows {
        let vr = v[r];
        // Depth of row `r`'s injection point along the column wire, in
        // (0, 1]; deeper devices see more wire resistance to the sense amp.
        let depth = (r + 1) as f64 / rows as f64;
        let row = &flat[r * cols..(r + 1) * cols];
        let mut row_current = 0.0f64;
        for (c, &gc) in row.iter().enumerate() {
            let i = gc * vr;
            row_current += i;
            col_g[c] += gc;
            col_depth[c] += i * depth;
            col_ideal[c] += i;
        }
        out.push((row_current / row_scale) as f32);
    }
    let col_g_scale = meta.g_max * rows as f64;
    let scale = current_scale(meta);
    out.extend(col_g.iter().map(|&x| (x / col_g_scale) as f32));
    out.extend(col_depth.iter().map(|&x| (x / scale) as f32));
    out.extend(col_ideal.iter().map(|&x| (x / scale) as f32));
}

impl TileEmulator for Surrogate {
    fn tile_shape(&self) -> (usize, usize) {
        (self.meta.rows, self.meta.cols)
    }

    fn column_currents_batch(&self, arrays: &[ConductanceMatrix]) -> Result<Vec<Vec<f64>>, String> {
        // The fold drives every row at the nominal read voltage.
        let v = vec![self.meta.v_read; self.meta.rows];
        let queries: Vec<_> = arrays.iter().map(|g| (g, v.as_slice())).collect();
        self.predict_currents_batch(&queries)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xbar_nn::arch::build_from_spec;

    pub(crate) fn record(rows: usize, cols: usize) -> SurrogateMeta {
        SurrogateMeta {
            rows,
            cols,
            g_min: 1e-6,
            g_max: 1e-5,
            v_read: 0.25,
            val_max_err: 0.01,
            val_rms_err: 0.002,
            train_pairs: 16,
            seed: 1,
            arch: vec![
                LayerSpec::Linear {
                    in_f: surrogate_input_dim(rows, cols),
                    out_f: 8,
                },
                LayerSpec::ReLU,
                LayerSpec::Linear {
                    in_f: 8,
                    out_f: cols,
                },
            ],
        }
    }

    #[test]
    fn parts_round_trip_and_geometry_is_enforced() {
        let meta = record(4, 4);
        let net = build_from_spec(&meta.arch);
        let s = Surrogate::from_parts(meta.clone(), net).unwrap();
        assert_eq!(s.tile_shape(), (4, 4));
        let (back, net) = s.into_parts();
        assert_eq!(back, meta);

        // Net that disagrees with the declared arch.
        let err = Surrogate::from_parts(record(8, 4), net).unwrap_err();
        assert!(err.contains("does not match"), "{err}");

        // Declared arch that does not fit the tile shape.
        let mut bad = record(4, 4);
        bad.arch[0] = LayerSpec::Linear { in_f: 3, out_f: 8 };
        let net = build_from_spec(&bad.arch);
        let err = Surrogate::from_parts(bad, net).unwrap_err();
        assert!(err.contains("tiles need"), "{err}");
    }

    #[test]
    fn mismatched_queries_are_rejected() {
        let meta = record(4, 4);
        let net = build_from_spec(&meta.arch);
        let s = Surrogate::from_parts(meta, net).unwrap();
        let g = ConductanceMatrix::filled(3, 4, 1e-6);
        let err = s.predict_currents(&g, &[0.25; 3]).unwrap_err();
        assert!(err.contains("3×4"), "{err}");
        let g = ConductanceMatrix::filled(4, 4, 1e-6);
        let err = s.predict_currents(&g, &[0.25; 5]).unwrap_err();
        assert!(err.contains("4 input voltages"), "{err}");
    }

    #[test]
    fn predictions_are_finite_and_nonnegative() {
        let meta = record(4, 4);
        let net = build_from_spec(&meta.arch);
        let s = Surrogate::from_parts(meta, net).unwrap();
        let g = ConductanceMatrix::filled(4, 4, 5e-6);
        let out = s.column_currents_batch(&[g.clone(), g]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 4);
        assert!(out[0].iter().all(|&i| i.is_finite() && i >= 0.0));
        assert_eq!(out[0], out[1], "identical arrays, identical predictions");
    }
}
