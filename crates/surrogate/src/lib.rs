//! # xbar-surrogate
//!
//! A learned stand-in for the exact non-ideal crossbar solver (a
//! self-hosted GENIEx-style emulator). The exact circuit solve in
//! `xbar-sim` is the slowest path in the pipeline; this crate trains a
//! small per-tile-shape MLP on (conductances, input voltages) → non-ideal
//! column currents pairs generated *by that same solver*, then serves
//! predictions orders of magnitude faster.
//!
//! The flow:
//!
//! 1. [`pairs::generate_pairs`] samples random conductance arrays (varied
//!    sparsity, spanning the programmable range plus variation headroom)
//!    and voltage patterns, and labels each with the exact solver's column
//!    currents.
//! 2. [`train::train_surrogate`] fits an MLP (`xbar-nn` layers, plain MSE
//!    SGD) to the pairs, holding out a validation split whose max/RMS
//!    current error — relative to the largest exact current in the split —
//!    is recorded on the returned [`Surrogate`] and exported as gauges.
//! 3. The [`Surrogate`] implements [`xbar_core::pipeline::TileEmulator`],
//!    so `map_to_crossbars_with` can fold its predicted currents into
//!    `W''` weights exactly the way the exact path folds `G'` into `W'`.
//! 4. `into_parts`/`from_parts` convert to/from the
//!    [`xbar_core::artifact::SurrogateMeta`] record + `Sequential` pair
//!    that the XBARMDL bundle format embeds.
//!
//! The feature encoding is owned by the artifact format
//! ([`xbar_core::artifact::surrogate_input_dim`]): normalised row
//! voltages, per-row ideal currents, per-column conductance sums,
//! per-column depth-weighted ideal currents, then per-column ideal
//! currents — aggregates only, no raw per-device conductances, which keeps
//! a tile evaluation an order of magnitude cheaper than the circuit solve
//! while the ratio-deviation target stays near-linear in the features.

pub mod net;
pub mod pairs;
pub mod train;

pub use net::Surrogate;
pub use pairs::{generate_pairs, TrainingPair};
pub use train::{train_surrogate, TrainConfig};
