//! Training-pair generation against the exact non-ideal solver.
//!
//! Each pair is a random conductance array plus an input-voltage vector,
//! labelled with the column currents the exact circuit solve produces.
//! Sampling covers what mapping actually programs: sparsity from dense to
//! heavily pruned (pruned devices sit near `Gmin`), magnitudes across the
//! full programmable range with headroom for Gaussian variation, and a
//! 50/50 mix of the nominal all-rows read pattern (the query the `W''`
//! fold issues) and random partial-drive patterns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_obs::{metrics, names};
use xbar_sim::conductance::ConductanceMatrix;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::{NonIdealSolver, SolveMethod};

/// Variation can push a programmed device below `Gmin` (floored at a
/// fraction of it) or above `Gmax`; sampling covers that headroom so the
/// net never sees out-of-distribution conductances at fold time.
const G_LOW_HEADROOM: f64 = 0.5;
const G_HIGH_HEADROOM: f64 = 1.3;

/// One labelled training example.
#[derive(Debug, Clone)]
pub struct TrainingPair {
    /// The programmed conductance array.
    pub g: ConductanceMatrix,
    /// Input voltages, one per row (non-negative).
    pub v: Vec<f64>,
    /// Exact non-ideal column currents, A.
    pub currents: Vec<f64>,
}

/// Generates `count` labelled pairs for `params`-shaped tiles,
/// deterministically from `seed`.
///
/// # Errors
///
/// Returns a descriptive message when `params` is physically inconsistent
/// or the exact solver fails on a sampled array.
pub fn generate_pairs(
    params: &CrossbarParams,
    count: usize,
    seed: u64,
) -> Result<Vec<TrainingPair>, String> {
    let solver =
        NonIdealSolver::try_new(*params, SolveMethod::LineRelaxation).map_err(|e| e.to_string())?;
    let (rows, cols) = (params.rows, params.cols);
    let (g_min, g_max) = (params.g_min(), params.g_max());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let sparsity = rng.gen_range(0.0..0.95);
        let mut g = ConductanceMatrix::filled(rows, cols, g_min);
        for value in g.as_mut_slice() {
            let base: f64 = if rng.gen_range(0.0..1.0) < sparsity {
                // Pruned synapse: at Gmin up to programming jitter.
                g_min * rng.gen_range(0.8..1.2)
            } else {
                rng.gen_range(g_min..g_max) * rng.gen_range(0.9..1.1)
            };
            *value = base.clamp(G_LOW_HEADROOM * g_min, G_HIGH_HEADROOM * g_max);
        }
        // Half the patterns are the nominal all-rows read the W'' fold
        // issues; the rest exercise partial drives.
        let v: Vec<f64> = if i % 2 == 0 {
            vec![params.v_read; rows]
        } else {
            (0..rows)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.3 {
                        0.0
                    } else {
                        params.v_read * rng.gen_range(0.1..1.0)
                    }
                })
                .collect()
        };
        let currents = solver
            .column_currents(&g, &v)
            .map_err(|e| format!("exact solve for pair {i}: {e}"))?;
        out.push(TrainingPair { g, v, currents });
    }
    metrics::counter_add(names::SURROGATE_TRAIN_PAIRS, count as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CrossbarParams {
        CrossbarParams::with_size(8)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_pairs(&params(), 4, 9).unwrap();
        let b = generate_pairs(&params(), 4, 9).unwrap();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.g, y.g);
            assert_eq!(x.v, y.v);
            assert_eq!(x.currents, y.currents);
        }
        let c = generate_pairs(&params(), 4, 10).unwrap();
        assert_ne!(a[0].g, c[0].g, "different seed, different arrays");
    }

    #[test]
    fn labels_are_physical() {
        let pairs = generate_pairs(&params(), 6, 3).unwrap();
        let p = params();
        let bound = p.g_max() * p.v_read * p.rows as f64 * G_HIGH_HEADROOM;
        for pair in &pairs {
            assert_eq!(pair.currents.len(), p.cols);
            for &i in &pair.currents {
                assert!(i >= 0.0 && i < bound, "current {i} out of range");
            }
        }
        // The nominal pattern drives every row.
        assert!(pairs[0].v.iter().all(|&v| v == p.v_read));
        // Random patterns exist and differ from nominal.
        assert!(pairs[1].v.iter().any(|&v| v != p.v_read));
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = params();
        p.rows = 0;
        let err = generate_pairs(&p, 1, 0).unwrap_err();
        assert!(err.contains("non-empty"), "{err}");
    }
}
