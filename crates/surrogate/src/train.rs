//! Surrogate training: plain MSE regression with SGD over solver-labelled
//! pairs, with a held-out validation split whose error becomes the
//! artifact's accuracy contract.

use crate::net::{current_scale, encode_query, Surrogate, RATIO_CLAMP, RATIO_GAIN};
use crate::pairs::generate_pairs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_core::artifact::{surrogate_input_dim, SurrogateMeta};
use xbar_nn::layers::{Linear, ReLU};
use xbar_nn::optim::{Sgd, SgdConfig};
use xbar_nn::{Layer, Mode, Sequential};
use xbar_obs::{metrics, names};
use xbar_sim::params::CrossbarParams;
use xbar_tensor::Tensor;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Tile geometry and device parameters the surrogate is trained for.
    pub params: CrossbarParams,
    /// Total solver-labelled pairs to generate.
    pub pairs: usize,
    /// Pairs held out of training; their error is the validation contract.
    pub holdout: usize,
    /// Hidden width of the MLP.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Initial learning rate (stepped down late in training).
    pub lr: f32,
    /// Seed for pair sampling, net init, and shuffling.
    pub seed: u64,
}

impl TrainConfig {
    /// Defaults that land low-single-digit-percent held-out max error on
    /// 16×16–64×64 tiles in a few seconds of CPU training. The hidden
    /// width is deliberately small: with the aggregate feature layout the
    /// ratio-deviation target is near-linear, and a wider net buys no
    /// accuracy while eroding the tile-eval speedup the bench gate
    /// enforces.
    pub fn for_params(params: CrossbarParams) -> Self {
        Self {
            params,
            pairs: 768,
            holdout: 128,
            hidden: 32,
            epochs: 160,
            batch: 32,
            lr: 0.05,
            seed: 0xCBA8,
        }
    }
}

/// Trains a surrogate for `cfg.params`-shaped tiles against the exact
/// solver, recording held-out max/RMS current error (relative to the
/// largest exact current in the split) in the returned surrogate's meta
/// and as `surrogate/val_*` gauges.
///
/// Deterministic for a fixed config: pair sampling, initialisation, and
/// shuffling all derive from `cfg.seed`.
///
/// # Errors
///
/// Returns a descriptive message for inconsistent configuration, solver
/// failures during pair generation, or shape errors during training.
pub fn train_surrogate(cfg: &TrainConfig) -> Result<Surrogate, String> {
    if cfg.holdout == 0 || cfg.pairs <= cfg.holdout {
        return Err(format!(
            "training needs pairs > holdout > 0, got pairs = {}, holdout = {}",
            cfg.pairs, cfg.holdout
        ));
    }
    if cfg.hidden == 0 || cfg.epochs == 0 || cfg.batch == 0 {
        return Err(format!(
            "hidden, epochs, and batch must be positive, got {}, {}, {}",
            cfg.hidden, cfg.epochs, cfg.batch
        ));
    }
    let p = &cfg.params;
    let (rows, cols) = (p.rows, p.cols);
    let in_dim = surrogate_input_dim(rows, cols);
    let mut meta = SurrogateMeta {
        rows,
        cols,
        g_min: p.g_min(),
        g_max: p.g_max(),
        v_read: p.v_read,
        val_max_err: 0.0,
        val_rms_err: 0.0,
        train_pairs: cfg.pairs - cfg.holdout,
        seed: cfg.seed,
        arch: Vec::new(),
    };

    let pairs = generate_pairs(p, cfg.pairs, cfg.seed)?;
    let scale = current_scale(&meta);
    let mut features = Vec::with_capacity(cfg.pairs * in_dim);
    let mut targets = Vec::with_capacity(cfg.pairs * cols);
    for pair in &pairs {
        encode_query(&meta, &pair.g, &pair.v, &mut features);
        // The net learns the amplified per-column current-ratio deviation
        // from the ideal current (its own last feature block) — see
        // `net::RATIO_GAIN`.
        let row = features.len() - in_dim;
        for (c, &exact) in pair.currents.iter().enumerate() {
            let ideal = features[row + in_dim - cols + c] as f64;
            let dev = if ideal > 0.0 {
                (exact / scale / ideal - 1.0).clamp(-RATIO_CLAMP, RATIO_CLAMP)
            } else {
                0.0
            };
            targets.push((dev * RATIO_GAIN) as f32);
        }
    }

    if std::env::var_os("XBAR_SURROGATE_DEBUG").is_some() {
        let stats = |label: &str, rows: Vec<usize>| {
            let vals: Vec<f32> = rows
                .iter()
                .flat_map(|&r| targets[r * cols..(r + 1) * cols].iter().copied())
                .collect();
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            eprintln!("{label}: n={} mean={mean:.5} var={var:.6}", vals.len());
        };
        stats("nominal", (0..cfg.pairs).filter(|i| i % 2 == 0).collect());
        stats("sparse ", (0..cfg.pairs).filter(|i| i % 2 == 1).collect());
    }

    // Deterministic split: shuffle indices, first `holdout` become the
    // validation set.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5D0_77E5);
    let mut order: Vec<usize> = (0..cfg.pairs).collect();
    shuffle(&mut order, &mut rng);
    let (val_idx, train_idx) = order.split_at(cfg.holdout);

    let mut net = Sequential::new(vec![
        Layer::Linear(Linear::new(in_dim, cfg.hidden, cfg.seed)),
        Layer::ReLU(ReLU::new()),
        Layer::Linear(Linear::new(
            cfg.hidden,
            cols,
            cfg.seed ^ 0x9E37_79B9_7F4A_7C15,
        )),
    ]);

    let mut train_idx = train_idx.to_vec();
    for epoch in 0..cfg.epochs {
        // Step the learning rate down twice: the net is fitting
        // sub-percent residuals by the back half of training.
        let lr = if 5 * epoch >= 4 * cfg.epochs {
            cfg.lr * 0.02
        } else if 2 * epoch >= cfg.epochs {
            cfg.lr * 0.2
        } else {
            cfg.lr
        };
        let sgd = Sgd::new(SgdConfig {
            lr,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        shuffle(&mut train_idx, &mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in train_idx.chunks(cfg.batch) {
            let x = gather(&features, chunk, in_dim);
            let t = gather(&targets, chunk, cols);
            let pred = net
                .forward(&x, Mode::Train)
                .map_err(|e| format!("surrogate forward: {e}"))?;
            // Mean over the batch, sum over columns: with a per-element
            // mean the gradient shrinks with the tile width and the net
            // never learns past the bias.
            let n = chunk.len() as f32;
            let grad = Tensor::from_fn(pred.shape(), |i| {
                2.0 * (pred.as_slice()[i] - t.as_slice()[i]) / n
            });
            epoch_loss += pred
                .as_slice()
                .iter()
                .zip(t.as_slice())
                .map(|(&p, &e)| ((p - e) * (p - e)) as f64)
                .sum::<f64>()
                / (chunk.len() * cols) as f64;
            batches += 1;
            net.backward(&grad)
                .map_err(|e| format!("surrogate backward: {e}"))?;
            sgd.step(&mut net);
            net.zero_grad();
        }
        if std::env::var_os("XBAR_SURROGATE_DEBUG").is_some() && epoch % 10 == 0 {
            eprintln!("epoch {epoch}: mse {}", epoch_loss / batches as f64);
        }
    }

    // Held-out validation, in physical units, relative to the largest
    // exact current in the split — the contract recorded in artifact meta.
    let x = gather(&features, val_idx, in_dim);
    let t = gather(&targets, val_idx, cols);
    let pred = net
        .forward(&x, Mode::Eval)
        .map_err(|e| format!("surrogate validation forward: {e}"))?;
    // Reconstruct currents (normalised units) from the ratio deviations;
    // errors are reported relative to the split's largest exact current.
    let current_at = |dev: f64, row: usize, c: usize| {
        let ideal = x.as_slice()[row * in_dim + in_dim - cols + c] as f64;
        ideal * (1.0 + (dev / RATIO_GAIN).clamp(-RATIO_CLAMP, RATIO_CLAMP))
    };
    let mut largest = f32::MIN_POSITIVE as f64;
    let mut exact = Vec::with_capacity(t.as_slice().len());
    for (i, &e) in t.as_slice().iter().enumerate() {
        let cur = current_at(e as f64, i / cols, i % cols);
        largest = largest.max(cur.abs());
        exact.push(cur);
    }
    let mut max_err = 0.0f64;
    let mut sq_sum = 0.0f64;
    for (i, (&p, e)) in pred.as_slice().iter().zip(&exact).enumerate() {
        let cur = current_at(p as f64, i / cols, i % cols).max(0.0);
        let err = (cur - e).abs() / largest;
        max_err = max_err.max(err);
        sq_sum += err * err;
    }
    meta.val_max_err = max_err;
    meta.val_rms_err = (sq_sum / t.as_slice().len() as f64).sqrt();
    meta.arch = xbar_nn::arch::spec_of(&net);
    metrics::gauge_set(names::SURROGATE_VAL_MAX_ERR, meta.val_max_err);
    metrics::gauge_set(names::SURROGATE_VAL_RMS_ERR, meta.val_rms_err);
    Surrogate::from_parts(meta, net)
}

/// Fisher–Yates with the compat `StdRng` — deterministic for a fixed seed.
fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

/// Gathers `rows` of width `width` from a flat buffer into a 2-D tensor.
fn gather(flat: &[f32], rows: &[usize], width: usize) -> Tensor {
    let mut out = Vec::with_capacity(rows.len() * width);
    for &r in rows {
        out.extend_from_slice(&flat[r * width..(r + 1) * width]);
    }
    Tensor::from_vec(out, &[rows.len(), width]).expect("gather buffer matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_sim::conductance::ConductanceMatrix;
    use xbar_sim::solve::{NonIdealSolver, SolveMethod};

    fn quick_config() -> TrainConfig {
        let mut params = CrossbarParams::with_size(8);
        params.sigma_variation = 0.0;
        TrainConfig {
            pairs: 320,
            holdout: 48,
            hidden: 32,
            epochs: 240,
            batch: 32,
            lr: 0.05,
            seed: 11,
            params,
        }
    }

    #[test]
    fn trains_to_small_validation_error_and_beats_ideal() {
        let cfg = quick_config();
        let s = train_surrogate(&cfg).unwrap();
        let m = s.meta();
        assert!(m.val_rms_err > 0.0);
        assert!(
            m.val_max_err < 0.08,
            "held-out max error too large: {}",
            m.val_max_err
        );
        assert!(m.val_rms_err <= m.val_max_err);
        assert_eq!(m.train_pairs, 272);

        // On fresh arrays the surrogate must predict the *non-ideal*
        // current better than the ideal dot product does.
        let p = &cfg.params;
        let solver = NonIdealSolver::try_new(*p, SolveMethod::LineRelaxation).unwrap();
        let v = vec![p.v_read; p.rows];
        let mut surr_err = 0.0f64;
        let mut ideal_err = 0.0f64;
        for k in 0..4 {
            let g = ConductanceMatrix::from_vec(
                p.rows,
                p.cols,
                (0..p.rows * p.cols)
                    .map(|i| {
                        let t = ((i * 131 + k * 977) % 97) as f64 / 96.0;
                        p.g_min() + t * (p.g_max() - p.g_min())
                    })
                    .collect(),
            );
            let exact = solver.column_currents(&g, &v).unwrap();
            let pred = s.predict_currents(&g, &v).unwrap();
            for c in 0..p.cols {
                let ideal: f64 = (0..p.rows).map(|r| g.at(r, c) * v[r]).sum();
                surr_err += (pred[c] - exact[c]).abs();
                ideal_err += (ideal - exact[c]).abs();
            }
        }
        assert!(
            surr_err < ideal_err * 0.5,
            "surrogate ({surr_err:.3e} A) should at least halve the ideal \
             model's error ({ideal_err:.3e} A)"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = quick_config();
        let a = train_surrogate(&cfg).unwrap();
        let b = train_surrogate(&cfg).unwrap();
        assert_eq!(a.meta(), b.meta());
        let g = ConductanceMatrix::filled(8, 8, 5e-6);
        let v = vec![cfg.params.v_read; 8];
        assert_eq!(
            a.predict_currents(&g, &v).unwrap(),
            b.predict_currents(&g, &v).unwrap()
        );
    }

    #[test]
    fn inconsistent_configs_are_rejected() {
        let mut cfg = quick_config();
        cfg.holdout = cfg.pairs;
        let err = train_surrogate(&cfg).unwrap_err();
        assert!(err.contains("pairs > holdout"), "{err}");
        let mut cfg = quick_config();
        cfg.epochs = 0;
        let err = train_surrogate(&cfg).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }
}
