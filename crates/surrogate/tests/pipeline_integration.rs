//! End-to-end: a trained surrogate plugged into the mapping pipeline must
//! reproduce the exact solver's `W'` weights closely, and must do so
//! deterministically regardless of run or tensor thread count.

use proptest::prelude::*;
use xbar_core::pipeline::{map_to_crossbars, map_to_crossbars_with, MapConfig};
use xbar_nn::layers::Linear;
use xbar_nn::{Layer, Sequential};
use xbar_sim::conductance::ConductanceMatrix;
use xbar_sim::params::CrossbarParams;
use xbar_surrogate::{train_surrogate, TrainConfig};

fn quick_train(seed: u64) -> TrainConfig {
    let mut params = CrossbarParams::with_size(8);
    params.sigma_variation = 0.0;
    TrainConfig {
        pairs: 320,
        holdout: 48,
        hidden: 32,
        epochs: 240,
        batch: 32,
        lr: 0.05,
        seed,
        params,
    }
}

#[test]
fn emulated_mapping_tracks_the_exact_solver() {
    let cfg = quick_train(11);
    let surrogate = train_surrogate(&cfg).unwrap();
    let model = Sequential::new(vec![Layer::Linear(Linear::new(8, 8, 5))]);
    let map_cfg = MapConfig {
        params: cfg.params,
        ..Default::default()
    };
    let (exact, exact_report) = map_to_crossbars(&model, &map_cfg).unwrap();
    let (emulated, emu_report) = map_to_crossbars_with(&model, &map_cfg, Some(&surrogate)).unwrap();

    // The emulated fold is per-column (coarser than the exact per-synapse
    // G'), so weights agree to a few percent of the weight scale, not
    // bit-for-bit.
    let w_scale = model
        .layers()
        .iter()
        .flat_map(|l| l.as_linear())
        .map(|l| l.weight().value.abs_max())
        .fold(0.0f32, f32::max);
    let mut max_diff = 0.0f32;
    for (a, b) in exact
        .layers()
        .iter()
        .zip(emulated.layers())
        .flat_map(|(a, b)| a.as_linear().zip(b.as_linear()))
        .flat_map(|(a, b)| {
            a.weight()
                .value
                .as_slice()
                .iter()
                .zip(b.weight().value.as_slice())
        })
    {
        max_diff = max_diff.max((a - b).abs());
    }
    assert!(
        max_diff < 0.05 * w_scale,
        "emulated W'' drifted {max_diff} from exact W' (scale {w_scale})"
    );
    // Both mappings see the same non-ideality regime.
    assert!(
        (exact_report.mean_nf() - emu_report.mean_nf()).abs() < 0.02,
        "mean NF disagrees: exact {} vs emulated {}",
        exact_report.mean_nf(),
        emu_report.mean_nf()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite: surrogate inference is deterministic across runs and
    /// tensor thread counts for a fixed seed.
    #[test]
    fn inference_is_deterministic_across_runs_and_thread_counts(
        seed in 0u64..1u64 << 16,
        threads in 1usize..5,
    ) {
        let cfg = {
            // Train fast: determinism, not accuracy, is under test.
            let mut c = quick_train(seed);
            c.pairs = 48;
            c.holdout = 8;
            c.epochs = 4;
            c
        };
        let baseline = xbar_tensor::threads::max_threads();
        let a = train_surrogate(&cfg).unwrap();
        let b = train_surrogate(&cfg).unwrap();
        prop_assert_eq!(a.meta(), b.meta());

        let g = ConductanceMatrix::from_vec(
            8,
            8,
            (0..64).map(|i| 1e-6 + (i as f64 % 9.0) * 1e-6).collect(),
        );
        let v = vec![cfg.params.v_read; 8];
        let one = a.predict_currents(&g, &v).unwrap();
        xbar_tensor::threads::set_max_threads(threads);
        let other = b.predict_currents(&g, &v).unwrap();
        xbar_tensor::threads::set_max_threads(baseline);
        prop_assert_eq!(one, other, "thread count changed the prediction");
    }
}
