//! Property-based tests for the tensor crate's core invariants.

use proptest::prelude::*;
use xbar_tensor::Tensor;

fn small_matrix() -> impl Strategy<Value = Tensor> {
    ((1usize..10), (1usize..10)).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).expect("consistent"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_is_involution(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_every_entry(m in small_matrix()) {
        let t = m.transpose();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert_eq!(m.at2(r, c), t.at2(c, r));
            }
        }
    }

    #[test]
    fn reshape_preserves_buffer(m in small_matrix()) {
        let n = m.len();
        let flat = m.reshape(&[n]).unwrap();
        prop_assert_eq!(flat.as_slice(), m.as_slice());
        let back = flat.reshape(&[m.rows(), m.cols()]).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn identity_matmul_is_noop(m in small_matrix()) {
        let left = Tensor::eye(m.rows()).matmul(&m).unwrap();
        let right = m.matmul(&Tensor::eye(m.cols())).unwrap();
        for (a, b) in m.as_slice().iter().zip(left.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0));
        }
        for (a, b) in m.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0));
        }
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(), seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ for a random compatible B.
        let k = a.cols();
        let n = 1 + (seed as usize % 6);
        let mut s = seed | 1;
        let b = Tensor::from_fn(&[k, n], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 200) as f32 - 100.0) / 50.0
        });
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0), "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_variants_agree(a in small_matrix(), b in small_matrix()) {
        // matmul_at_b(A, B) == Aᵀ·B whenever shapes allow.
        if a.rows() == b.rows() {
            let fused = a.matmul_at_b(&b).unwrap();
            let naive = a.transpose().matmul(&b).unwrap();
            for (x, y) in fused.as_slice().iter().zip(naive.as_slice()) {
                prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
            }
        }
        if a.cols() == b.cols() {
            let fused = a.matmul_a_bt(&b).unwrap();
            let naive = a.matmul(&b.transpose()).unwrap();
            for (x, y) in fused.as_slice().iter().zip(naive.as_slice()) {
                prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
            }
        }
    }

    #[test]
    fn submatrix_write_round_trip(
        m in small_matrix(),
        tr in 1usize..6,
        tc in 1usize..6,
    ) {
        let mut rebuilt = Tensor::zeros(&[m.rows(), m.cols()]);
        let mut r0 = 0;
        while r0 < m.rows() {
            let mut c0 = 0;
            while c0 < m.cols() {
                let tile = m.submatrix_padded(r0, c0, tr, tc);
                rebuilt.write_submatrix(r0, c0, &tile);
                c0 += tc;
            }
            r0 += tr;
        }
        prop_assert_eq!(rebuilt, m);
    }

    #[test]
    fn sum_axis_agrees_with_total(m in small_matrix()) {
        let by_rows = m.sum_axis(0).unwrap().sum();
        let by_cols = m.sum_axis(1).unwrap().sum();
        let total = m.sum();
        prop_assert!((by_rows - total).abs() < 1e-2 * total.abs().max(1.0));
        prop_assert!((by_cols - total).abs() < 1e-2 * total.abs().max(1.0));
    }

    #[test]
    fn clamp_is_idempotent_and_bounded(m in small_matrix(), limit in 0.0f32..50.0) {
        let mut once = m.clone();
        once.clamp_symmetric(limit);
        prop_assert!(once.abs_max() <= limit + 1e-6);
        let mut twice = once.clone();
        twice.clamp_symmetric(limit);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn quantile_is_monotone(
        data in proptest::collection::vec(-10.0f32..10.0, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = xbar_tensor::stats::abs_quantile(&data, lo);
        let b = xbar_tensor::stats::abs_quantile(&data, hi);
        prop_assert!(a <= b + 1e-6);
    }
}
