//! Worker-thread budget shared by every parallel section in the workspace.
//!
//! Parallel kernels (blocked matmul, tile simulation, the inference server's
//! worker pools) all ask [`max_threads`] how many workers they may spawn.
//! The budget resolves, in priority order:
//!
//! 1. a programmatic override set via [`set_max_threads`] (CLI `--threads`;
//!    `0` clears the override and falls through to the next step);
//! 2. the `XBAR_THREADS` environment variable (parsed once);
//! 3. `available_parallelism()` capped at 8 — the historical default, which
//!    keeps small boxes responsive and avoids oversubscription on large
//!    ones unless the user explicitly asks for more.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cap applied to the auto-detected default (not to explicit requests).
const DEFAULT_CAP: usize = 8;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("XBAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(0)
    })
}

/// Sets the process-wide worker budget, overriding `XBAR_THREADS` and the
/// auto-detected default.
///
/// Passing `0` clears any previous override, restoring auto-detection
/// (`XBAR_THREADS`, then `available_parallelism()` capped at 8) — it does
/// *not* mean "one thread". CLI `--threads` flags document the same
/// convention.
pub fn set_max_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of worker threads parallel sections may use.
pub fn max_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced >= 1 {
        return forced;
    }
    let env = env_threads();
    if env >= 1 {
        return env;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(DEFAULT_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_positive_and_capped() {
        // No override in this process (tests must not call set_max_threads
        // globally — it is process-wide).
        let n = max_threads();
        assert!(n >= 1);
        if OVERRIDE.load(Ordering::Relaxed) == 0 && env_threads() == 0 {
            assert!(n <= DEFAULT_CAP);
        }
    }

    #[test]
    fn override_wins_and_zero_resets_to_auto() {
        // Save and restore OVERRIDE state: it is process-wide.
        let before = OVERRIDE.load(Ordering::Relaxed);
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        // 0 clears the override: the budget returns to the auto default
        // (env or detected parallelism), not to a single thread.
        set_max_threads(0);
        let auto = max_threads();
        assert!(auto >= 1);
        if env_threads() == 0 {
            assert!(auto <= DEFAULT_CAP);
        }
        OVERRIDE.store(before, Ordering::Relaxed);
    }
}
