//! # xbar-tensor
//!
//! A small, dependency-light N-dimensional `f32` tensor library that serves as
//! the numerical substrate for the `xbar-repro` workspace (a reproduction of
//! the DATE 2022 paper *"Examining and Mitigating the Impact of Crossbar
//! Non-idealities for Accurate Implementation of Sparse Deep Neural
//! Networks"*).
//!
//! The crate provides:
//!
//! * [`Tensor`] — an owned, row-major, contiguous `f32` tensor with shape
//!   bookkeeping and checked reshaping;
//! * element-wise and reduction operations ([`ops`]);
//! * cache-blocked, optionally multi-threaded matrix multiplication
//!   ([`matmul`]);
//! * `im2col`/`col2im` convolution lowering ([`conv`]) used both by the DNN
//!   library and by the crossbar mapping framework (convolutions are unrolled
//!   into MAC operations exactly as the paper's Python wrapper does);
//! * weight initialisers ([`init`]) and summary statistics ([`stats`]).
//!
//! # Example
//!
//! ```
//! use xbar_tensor::Tensor;
//!
//! # fn main() -> Result<(), xbar_tensor::ShapeError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

pub mod conv;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod reduce;
pub mod shape;
pub mod stats;
mod tensor;
pub mod threads;

pub use shape::ShapeError;
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ShapeError>;
