//! Convolution lowering: `im2col` and its adjoint `col2im`.
//!
//! The paper's hardware evaluation framework "unrolls each and every
//! convolution operation in the software DNN into MAC operations" — that is
//! exactly what `im2col` does. A convolution with weight `(out_c, in_c, kh,
//! kw)` becomes a matrix product between the `out_c × (in_c·kh·kw)` reshaped
//! weight and the `(in_c·kh·kw) × (out_h·out_w)` patch matrix produced here.

use crate::shape::ShapeError;
use crate::Tensor;

/// Geometry of a 2-D convolution over a single `(in_c, h, w)` image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height of the convolution.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width of the convolution.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Rows of the patch matrix: `in_c * kh * kw` (the fan-in of one output
    /// pixel, and the row count of the unrolled crossbar weight matrix).
    pub fn patch_len(&self) -> usize {
        self.in_c * self.kh * self.kw
    }

    /// Columns of the patch matrix: `out_h * out_w`.
    pub fn n_patches(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validates that the geometry is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the kernel (plus padding) does not fit the
    /// image or stride is zero.
    pub fn validate(&self) -> Result<(), ShapeError> {
        if self.stride == 0 {
            return Err(ShapeError::new("convolution stride must be non-zero"));
        }
        if self.h + 2 * self.pad < self.kh || self.w + 2 * self.pad < self.kw {
            return Err(ShapeError::new(format!(
                "kernel {}x{} does not fit padded image {}x{}",
                self.kh,
                self.kw,
                self.h + 2 * self.pad,
                self.w + 2 * self.pad
            )));
        }
        Ok(())
    }
}

/// Lowers one `(in_c, h, w)` image to its `(in_c·kh·kw) × (out_h·out_w)` patch
/// matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] if `image` does not have shape `[in_c, h, w]` or the
/// geometry is invalid.
pub fn im2col(image: &Tensor, geom: &ConvGeom) -> Result<Tensor, ShapeError> {
    geom.validate()?;
    if image.shape() != [geom.in_c, geom.h, geom.w] {
        return Err(ShapeError::mismatch(
            "im2col",
            &[geom.in_c, geom.h, geom.w],
            image.shape(),
        ));
    }
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_patches = oh * ow;
    let patch_len = geom.patch_len();
    let src = image.as_slice();
    let mut out = vec![0.0f32; patch_len * n_patches];
    let (h, w) = (geom.h as isize, geom.w as isize);
    for c in 0..geom.in_c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (c * geom.kh + ky) * geom.kw + kx;
                let out_row = &mut out[row * n_patches..(row + 1) * n_patches];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w {
                            continue;
                        }
                        out_row[oy * ow + ox] =
                            src[(c * geom.h + iy as usize) * geom.w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[patch_len, n_patches])
}

/// Adjoint of [`im2col`]: scatters a patch-matrix gradient back onto the image
/// grid, accumulating overlapping contributions.
///
/// # Errors
///
/// Returns [`ShapeError`] if `cols` does not have shape
/// `[patch_len, n_patches]` or the geometry is invalid.
pub fn col2im(cols: &Tensor, geom: &ConvGeom) -> Result<Tensor, ShapeError> {
    geom.validate()?;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_patches = oh * ow;
    let patch_len = geom.patch_len();
    if cols.shape() != [patch_len, n_patches] {
        return Err(ShapeError::mismatch(
            "col2im",
            &[patch_len, n_patches],
            cols.shape(),
        ));
    }
    let src = cols.as_slice();
    let mut out = vec![0.0f32; geom.in_c * geom.h * geom.w];
    let (h, w) = (geom.h as isize, geom.w as isize);
    for c in 0..geom.in_c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (c * geom.kh + ky) * geom.kw + kx;
                let in_row = &src[row * n_patches..(row + 1) * n_patches];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w {
                            continue;
                        }
                        out[(c * geom.h + iy as usize) * geom.w + ix as usize] +=
                            in_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[geom.in_c, geom.h, geom.w])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(in_c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> ConvGeom {
        ConvGeom {
            in_c,
            h,
            w,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(3, 32, 32, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = geom(1, 5, 5, 3, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
    }

    #[test]
    fn validate_catches_bad_geometry() {
        assert!(geom(1, 2, 2, 5, 1, 0).validate().is_err());
        let mut g = geom(1, 4, 4, 3, 1, 0);
        g.stride = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: patch matrix equals flattened image.
        let img = Tensor::from_fn(&[2, 3, 3], |i| i as f32);
        let g = ConvGeom {
            in_c: 2,
            h: 3,
            w: 3,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_extracts_expected_patch() {
        let img = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 3, 3]).unwrap();
        let g = geom(1, 3, 3, 2, 1, 0);
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 4]);
        // First patch (top-left): rows are kernel positions, column 0.
        assert_eq!(cols.col(0), vec![1.0, 2.0, 4.0, 5.0]);
        // Last patch (bottom-right).
        assert_eq!(cols.col(3), vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let img = Tensor::ones(&[1, 2, 2]);
        let g = geom(1, 2, 2, 3, 1, 1);
        let cols = im2col(&img, &g).unwrap();
        // Centre kernel tap always hits the image; corner taps hit padding at
        // corner patches.
        assert_eq!(cols.shape(), &[9, 4]);
        assert_eq!(cols.get(&[4, 0]).unwrap(), 1.0);
        assert_eq!(cols.get(&[0, 0]).unwrap(), 0.0);
    }

    /// `col2im` is the adjoint of `im2col`: for any `x`, `y`,
    /// `<im2col(x), y> == <x, col2im(y)>`. This is the property the conv
    /// backward pass relies on.
    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let g = geom(2, 6, 5, 3, 2, 1);
        let mut s = 12345u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f32 - 500.0) / 250.0
        };
        let x = Tensor::from_fn(&[g.in_c, g.h, g.w], |_| rnd());
        let y = Tensor::from_fn(&[g.patch_len(), g.n_patches()], |_| rnd());
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, &g).unwrap();
        let lhs: f64 = ax
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(aty.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn shape_errors() {
        let img = Tensor::ones(&[1, 3, 3]);
        let g = geom(2, 3, 3, 2, 1, 0);
        assert!(im2col(&img, &g).is_err());
        let cols = Tensor::ones(&[3, 3]);
        assert!(col2im(&cols, &g).is_err());
    }
}
