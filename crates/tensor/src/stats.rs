//! Summary statistics used by the mitigation strategies.
//!
//! The R transformation orders weight-matrix columns by `(μ·σ)^½` of their
//! absolute values, and WCT picks its cut-off `W_cut` from the percentile of
//! the trained weight distribution — both computed here.

/// Mean of the absolute values of `xs`; `0.0` for an empty slice.
pub fn abs_mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x.abs() as f64).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of the absolute values of `xs`; `0.0` for an
/// empty slice.
pub fn abs_std(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = abs_mean(xs);
    let var = xs
        .iter()
        .map(|&x| {
            let d = x.abs() as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64;
    var.sqrt()
}

/// The column score `(μ·σ)^½` used by the paper's R transformation, where `μ`
/// and `σ` are the mean and standard deviation of the absolute values.
///
/// ```
/// let score = xbar_tensor::stats::mu_sigma_score(&[1.0, -1.0, 1.0, -1.0]);
/// assert_eq!(score, 0.0); // σ of |x| is zero
/// ```
pub fn mu_sigma_score(xs: &[f32]) -> f64 {
    (abs_mean(xs) * abs_std(xs)).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) of the *absolute values* of `xs`, by linear
/// interpolation on the sorted data. Returns `0.0` for an empty slice.
///
/// WCT determines `W_cut` as a high quantile (default 0.9) of `|W|` across
/// all layers, mirroring the paper's "heuristically determine a cut-off value
/// based on the weight distributions of all the layers".
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn abs_quantile(xs: &[f32], q: f64) -> f32 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f32> = xs.iter().map(|x| x.abs()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = (pos - lo as f64) as f32;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Histogram of `xs` over `bins` equal-width buckets spanning `[lo, hi)`.
/// Values outside the range are clamped into the first/last bucket.
///
/// NaN values are *skipped*, not counted — the saturating float→int cast
/// used to drop them silently into bucket 0, skewing heatmap exports. The
/// second return value is the number of NaNs skipped so callers can log or
/// surface it.
///
/// Used to export the weight-heatmap data behind the paper's Fig. 3(f).
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(xs: &[f32], lo: f32, hi: f32, bins: usize) -> (Vec<usize>, usize) {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(lo < hi, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let mut skipped = 0usize;
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        if x.is_nan() {
            skipped += 1;
            continue;
        }
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    (counts, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_mean_ignores_sign() {
        assert_eq!(abs_mean(&[1.0, -1.0, 3.0, -3.0]), 2.0);
        assert_eq!(abs_mean(&[]), 0.0);
    }

    #[test]
    fn abs_std_of_constant_is_zero() {
        assert_eq!(abs_std(&[2.0, -2.0, 2.0]), 0.0);
        assert_eq!(abs_std(&[]), 0.0);
    }

    #[test]
    fn abs_std_known_value() {
        // |x| = [1, 3] → mean 2, var 1, std 1.
        assert!((abs_std(&[-1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mu_sigma_score_monotone_in_magnitude() {
        let small = mu_sigma_score(&[0.1, 0.0, 0.2, 0.0]);
        let big = mu_sigma_score(&[1.0, 0.0, 2.0, 0.0]);
        assert!(big > small);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(abs_quantile(&xs, 0.0), 1.0);
        assert_eq!(abs_quantile(&xs, 1.0), 3.0);
        assert_eq!(abs_quantile(&xs, 0.5), 2.0);
        assert_eq!(abs_quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 1.0];
        assert!((abs_quantile(&xs, 0.25) - 0.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        abs_quantile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let (h, skipped) = histogram(&[-10.0, 0.1, 0.6, 0.9, 10.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn histogram_skips_nan_and_reports_it() {
        let xs = [0.1, f32::NAN, 0.6, f32::NAN, f32::NAN];
        let (h, skipped) = histogram(&xs, 0.0, 1.0, 2);
        // NaNs must not inflate bucket 0 (the old saturating-cast bug).
        assert_eq!(h, vec![1, 1]);
        assert_eq!(skipped, 3);
        assert_eq!(h.iter().sum::<usize>() + skipped, xs.len());
    }
}
