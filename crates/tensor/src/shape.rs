//! Shape bookkeeping and the crate-wide error type.

use std::fmt;

/// Error returned when tensor shapes are inconsistent with an operation.
///
/// The error carries a human-readable description of the mismatch; it is the
/// only error type produced by this crate ([C-GOOD-ERR]).
///
/// # Example
///
/// ```
/// use xbar_tensor::Tensor;
///
/// let err = Tensor::from_vec(vec![1.0], &[2, 2]).unwrap_err();
/// assert!(err.to_string().contains("2, 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a new shape error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Builds the canonical "mismatch" error between an expected and an
    /// actual shape.
    pub fn mismatch(context: &str, expected: &[usize], actual: &[usize]) -> Self {
        Self::new(format!(
            "{context}: expected shape [{}], got [{}]",
            join(expected),
            join(actual)
        ))
    }
}

fn join(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// Returns the number of elements implied by `shape`.
///
/// An empty shape denotes a scalar and has one element.
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Computes row-major strides for `shape`.
///
/// ```
/// assert_eq!(xbar_tensor::shape::strides(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Flattens a multi-dimensional index into a linear offset.
///
/// # Errors
///
/// Returns [`ShapeError`] if `index` has the wrong rank or any coordinate is
/// out of bounds.
pub fn flatten_index(shape: &[usize], index: &[usize]) -> Result<usize, ShapeError> {
    if shape.len() != index.len() {
        return Err(ShapeError::new(format!(
            "index rank {} does not match tensor rank {}",
            index.len(),
            shape.len()
        )));
    }
    let mut offset = 0usize;
    let strides = strides(shape);
    for ((&i, &dim), &stride) in index.iter().zip(shape).zip(&strides) {
        if i >= dim {
            return Err(ShapeError::new(format!(
                "index {i} out of bounds for dimension of size {dim}"
            )));
        }
        offset += i * stride;
    }
    Ok(offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_counts_products() {
        assert_eq!(num_elements(&[2, 3, 4]), 24);
        assert_eq!(num_elements(&[]), 1);
        assert_eq!(num_elements(&[0, 5]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[2, 3]), vec![3, 1]);
        assert_eq!(strides(&[4, 1, 6]), vec![6, 6, 1]);
        assert!(strides(&[]).is_empty());
    }

    #[test]
    fn flatten_index_round_trips() {
        let shape = [3, 4, 5];
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    let off = flatten_index(&shape, &[i, j, k]).unwrap();
                    assert!(off < 60);
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn flatten_index_rejects_bad_rank() {
        assert!(flatten_index(&[2, 2], &[0]).is_err());
    }

    #[test]
    fn flatten_index_rejects_out_of_bounds() {
        assert!(flatten_index(&[2, 2], &[0, 2]).is_err());
    }

    #[test]
    fn mismatch_message_lists_both_shapes() {
        let err = ShapeError::mismatch("matmul", &[2, 3], &[4, 5]);
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2, 3"));
        assert!(msg.contains("4, 5"));
    }
}
