//! Axis reductions over tensors.
//!
//! Used by the reporting layers (per-channel statistics, per-column scores)
//! and handy for downstream users of the tensor crate.

use crate::shape::ShapeError;
use crate::Tensor;

impl Tensor {
    /// Sums over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `axis` is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use xbar_tensor::Tensor;
    /// # fn main() -> Result<(), xbar_tensor::ShapeError> {
    /// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
    /// assert_eq!(t.sum_axis(0)?.as_slice(), &[5.0, 7.0, 9.0]);
    /// assert_eq!(t.sum_axis(1)?.as_slice(), &[6.0, 15.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor, ShapeError> {
        if axis >= self.ndim() {
            return Err(ShapeError::new(format!(
                "axis {axis} out of range for rank {}",
                self.ndim()
            )));
        }
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let axis_len = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out_shape: Vec<usize> = shape.to_vec();
        out_shape.remove(axis);
        let mut out = vec![0.0f32; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    *d += s;
                }
            }
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Means over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `axis` is out of range or has zero length
    /// (the mean would be undefined).
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor, ShapeError> {
        let len = *self
            .shape()
            .get(axis)
            .ok_or_else(|| ShapeError::new(format!("axis {axis} out of range")))?;
        if len == 0 {
            return Err(ShapeError::new("mean over an empty axis is undefined"));
        }
        Ok(self.sum_axis(axis)?.scale(1.0 / len as f32))
    }

    /// Maximum over one axis, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `axis` is out of range or has zero length.
    pub fn max_axis(&self, axis: usize) -> Result<Tensor, ShapeError> {
        if axis >= self.ndim() {
            return Err(ShapeError::new(format!(
                "axis {axis} out of range for rank {}",
                self.ndim()
            )));
        }
        let shape = self.shape();
        let axis_len = shape[axis];
        if axis_len == 0 {
            return Err(ShapeError::new("max over an empty axis is undefined"));
        }
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out_shape: Vec<usize> = shape.to_vec();
        out_shape.remove(axis);
        let mut out = vec![f32::NEG_INFINITY; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    if s > *d {
                        *d = s;
                    }
                }
            }
        }
        Tensor::from_vec(out, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t234() -> Tensor {
        Tensor::from_fn(&[2, 3, 4], |i| i as f32)
    }

    #[test]
    fn sum_axis_matches_manual() {
        let t = t234();
        let s0 = t.sum_axis(0).unwrap();
        assert_eq!(s0.shape(), &[3, 4]);
        assert_eq!(s0.get(&[0, 0]).unwrap(), 0.0 + 12.0);
        let s2 = t.sum_axis(2).unwrap();
        assert_eq!(s2.shape(), &[2, 3]);
        assert_eq!(s2.get(&[0, 0]).unwrap(), 0.0 + 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn sum_all_axes_matches_total() {
        let t = t234();
        let total = t.sum();
        let collapsed = t
            .sum_axis(0)
            .unwrap()
            .sum_axis(0)
            .unwrap()
            .sum_axis(0)
            .unwrap();
        assert_eq!(collapsed.shape(), &[] as &[usize]);
        assert!((collapsed.sum() - total).abs() < 1e-3);
    }

    #[test]
    fn mean_axis_scales_sum() {
        let t = t234();
        let m = t.mean_axis(1).unwrap();
        let s = t.sum_axis(1).unwrap();
        for (a, b) in m.as_slice().iter().zip(s.as_slice()) {
            assert!((a * 3.0 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn max_axis_picks_largest() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0, 4.0, 0.0], &[2, 3]).unwrap();
        assert_eq!(t.max_axis(0).unwrap().as_slice(), &[2.0, 5.0, 3.0]);
        assert_eq!(t.max_axis(1).unwrap().as_slice(), &[5.0, 4.0]);
    }

    #[test]
    fn errors_on_bad_axis() {
        let t = t234();
        assert!(t.sum_axis(3).is_err());
        assert!(t.mean_axis(9).is_err());
        assert!(t.max_axis(5).is_err());
        let empty = Tensor::zeros(&[2, 0]);
        assert!(empty.mean_axis(1).is_err());
        assert!(empty.max_axis(1).is_err());
        // Summing an empty axis is fine (zeros).
        assert_eq!(empty.sum_axis(1).unwrap().as_slice(), &[0.0, 0.0]);
    }
}
