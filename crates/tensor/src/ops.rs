//! Element-wise operations and reductions on [`Tensor`].

use crate::shape::ShapeError;
use crate::Tensor;

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor::from_vec(
            self.as_slice().iter().map(|&x| f(x)).collect(),
            self.shape(),
        )
        .expect("map preserves shape")
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::mismatch("zip_map", self.shape(), other.shape()));
        }
        Tensor::from_vec(
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape(),
        )
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self, ShapeError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self, ShapeError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self, ShapeError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other * alpha` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::mismatch("axpy", self.shape(), other.shape()));
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element, returning a new tensor.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements; `0.0` for empty tensors.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Maximum element; `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::max)
    }

    /// Minimum element; `None` for empty tensors.
    pub fn min(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::min)
    }

    /// Maximum absolute value; `0.0` for empty tensors.
    pub fn abs_max(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element of a 1-D slice view of the tensor.
    pub fn argmax(&self) -> Option<usize> {
        self.as_slice()
            .iter()
            .enumerate()
            .fold(None, |best, (i, &x)| match best {
                Some((_, bx)) if bx >= x => best,
                _ => Some((i, x)),
            })
            .map(|(i, _)| i)
    }

    /// Per-row argmax for a 2-D tensor, e.g. picking the predicted class from
    /// a batch of logits.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bx), (i, &x)| {
                        if x > bx {
                            (i, x)
                        } else {
                            (bi, bx)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.as_slice()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Number of elements with magnitude at most `eps`.
    pub fn count_near_zero(&self, eps: f32) -> usize {
        self.as_slice().iter().filter(|x| x.abs() <= eps).count()
    }

    /// Fraction of elements with magnitude at most `eps` (the observed
    /// sparsity of a weight tensor).
    pub fn sparsity(&self, eps: f32) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.count_near_zero(eps) as f64 / self.len() as f64
        }
    }

    /// Clamps every element into `[-limit, limit]`, in place.
    ///
    /// This is the WCT transformation `W = min{|W|, W_cut} * sign(W)` of the
    /// paper, applied with `limit = W_cut`.
    pub fn clamp_symmetric(&mut self, limit: f32) {
        assert!(limit >= 0.0, "clamp limit must be non-negative");
        for x in self.as_mut_slice() {
            *x = x.clamp(-limit, limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = t(&[1.0]);
        let b = t(&[1.0, 2.0]);
        assert!(a.add(&b).is_err());
        assert!(a.clone().axpy(1.0, &b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0])).unwrap();
        assert_eq!(a.as_slice(), &[7.0, 9.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[-3.0, 1.0, 2.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), Some(2.0));
        assert_eq!(a.min(), Some(-3.0));
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(a.argmax(), Some(2));
        assert!((a.norm() - 14.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_reductions() {
        let e = Tensor::zeros(&[0]);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), None);
        assert_eq!(e.argmax(), None);
    }

    #[test]
    fn argmax_rows_picks_per_row() {
        let m = Tensor::from_vec(vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0], &[2, 3]).unwrap();
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn sparsity_counts_near_zero() {
        let a = t(&[0.0, 1e-9, 0.5, -0.5]);
        assert_eq!(a.count_near_zero(1e-6), 2);
        assert_eq!(a.sparsity(1e-6), 0.5);
    }

    #[test]
    fn clamp_symmetric_is_wct_transform() {
        let mut a = t(&[-2.0, -0.3, 0.0, 0.7, 3.0]);
        a.clamp_symmetric(1.0);
        assert_eq!(a.as_slice(), &[-1.0, -0.3, 0.0, 0.7, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn clamp_rejects_negative_limit() {
        t(&[1.0]).clamp_symmetric(-1.0);
    }
}
