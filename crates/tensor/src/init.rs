//! Weight initialisers.
//!
//! The paper prunes DNNs *at initialisation* (following the lottery-ticket
//! line of work it cites), so the initial weight distribution matters: both
//! pruning scores and the trained weight statistics that drive crossbar
//! conductances descend from it. We provide the standard Kaiming/Xavier
//! schemes used for VGG-style networks.

use crate::Tensor;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Initialisation scheme for a weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`, the default for layers
    /// followed by ReLU.
    KaimingNormal,
    /// Kaiming/He uniform: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
    KaimingUniform,
    /// Xavier/Glorot uniform: `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a tensor of the given shape.
    ///
    /// `fan_in` and `fan_out` are supplied by the caller because they depend
    /// on layer semantics (for a conv layer `fan_in = in_c·kh·kw`), not just
    /// on the raw shape.
    pub fn sample(self, shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::KaimingNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                let normal = rand::distributions::Uniform::new(0.0f64, 1.0f64);
                // Box–Muller from two uniforms keeps us off rand_distr.
                Tensor::from_fn(shape, |_| {
                    let u1: f64 = normal.sample(&mut rng).max(f64::MIN_POSITIVE);
                    let u2: f64 = normal.sample(&mut rng);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (z * std) as f32
                })
            }
            Init::KaimingUniform => {
                let bound = (6.0 / fan_in.max(1) as f64).sqrt();
                let dist = rand::distributions::Uniform::new(-bound, bound);
                Tensor::from_fn(shape, |_| dist.sample(&mut rng) as f32)
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
                let dist = rand::distributions::Uniform::new(-bound, bound);
                Tensor::from_fn(shape, |_| dist.sample(&mut rng) as f32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let t = Init::Zeros.sample(&[4, 4], 16, 16, 0);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn kaiming_normal_std_matches_fan_in() {
        let fan_in = 128;
        let t = Init::KaimingNormal.sample(&[20_000], fan_in, 1, 42);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        let want = 2.0 / fan_in as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - want).abs() < 0.2 * want, "var {var} want {want}");
    }

    #[test]
    fn uniform_inits_respect_bounds() {
        let fan_in = 50;
        let bound = (6.0f64 / fan_in as f64).sqrt() as f32;
        let t = Init::KaimingUniform.sample(&[10_000], fan_in, 10, 7);
        assert!(t.abs_max() <= bound);
        // Spread should fill a good part of the interval.
        assert!(t.abs_max() > 0.8 * bound);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::XavierUniform.sample(&[64], 8, 8, 99);
        let b = Init::XavierUniform.sample(&[64], 8, 8, 99);
        let c = Init::XavierUniform.sample(&[64], 8, 8, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
