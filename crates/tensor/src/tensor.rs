//! The owned, contiguous, row-major `f32` tensor type.

use crate::shape::{self, ShapeError};
use std::fmt;

/// An owned, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single numerical container used throughout the workspace:
/// DNN activations and weights, unrolled 2-D weight matrices, crossbar
/// conductance matrices and report data are all `Tensor`s.
///
/// # Example
///
/// ```
/// use xbar_tensor::Tensor;
///
/// # fn main() -> Result<(), xbar_tensor::ShapeError> {
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape::num_elements(shape)],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape::num_elements(shape)],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match the number of
    /// elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected = shape::num_elements(shape);
        if data.len() != expected {
            return Err(ShapeError::new(format!(
                "buffer of {} elements cannot have shape [{}] ({} elements)",
                data.len(),
                shape
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                expected
            )));
        }
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a tensor by evaluating `f` at every linear index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape::num_elements(shape);
        Self {
            data: (0..n).map(&mut f).collect(),
            shape: shape.to_vec(),
        }
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying buffer as an immutable slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying buffer as a mutable slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy of this tensor with a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, ShapeError> {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Reshapes in place (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<(), ShapeError> {
        if shape::num_elements(shape) != self.data.len() {
            return Err(ShapeError::mismatch("reshape", shape, &self.shape));
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for rank mismatch or out-of-bounds coordinates.
    pub fn get(&self, index: &[usize]) -> Result<f32, ShapeError> {
        Ok(self.data[shape::flatten_index(&self.shape, index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for rank mismatch or out-of-bounds coordinates.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), ShapeError> {
        let off = shape::flatten_index(&self.shape, index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.ndim(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.ndim(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Unchecked 2-D read; the caller guarantees `self` is 2-D and in bounds.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Unchecked 2-D write; the caller guarantees `self` is 2-D and in bounds.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c] = v;
    }

    /// Returns row `r` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Returns row `r` of a 2-D tensor as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Copies column `c` of a 2-D tensor into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f32> {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(c < cols, "column {c} out of bounds for {cols} columns");
        (0..rows).map(|r| self.data[r * cols + c]).collect()
    }

    /// Returns the transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Self {
        let (rows, cols) = (self.rows(), self.cols());
        let mut out = Self::zeros(&[cols, rows]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c * rows + r] = self.data[r * cols + c];
            }
        }
        out
    }

    /// Extracts the sub-matrix `rows_range` × `cols_range` of a 2-D tensor,
    /// zero-padding reads past the edge.
    ///
    /// This is the primitive used to partition unrolled weight matrices into
    /// fixed-size crossbar tiles: the final tiles of a layer are padded with
    /// zeros exactly like unused crossbar cells are left at `Gmin`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn submatrix_padded(
        &self,
        row_start: usize,
        col_start: usize,
        out_rows: usize,
        out_cols: usize,
    ) -> Self {
        let (rows, cols) = (self.rows(), self.cols());
        let mut out = Self::zeros(&[out_rows, out_cols]);
        for r in 0..out_rows {
            let src_r = row_start + r;
            if src_r >= rows {
                break;
            }
            for c in 0..out_cols {
                let src_c = col_start + c;
                if src_c >= cols {
                    break;
                }
                out.data[r * out_cols + c] = self.data[src_r * cols + src_c];
            }
        }
        out
    }

    /// Writes `block` into this 2-D tensor at (`row_start`, `col_start`),
    /// silently clipping writes past the edge (the inverse of
    /// [`Tensor::submatrix_padded`]).
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D.
    pub fn write_submatrix(&mut self, row_start: usize, col_start: usize, block: &Tensor) {
        let (rows, cols) = (self.rows(), self.cols());
        let (brows, bcols) = (block.rows(), block.cols());
        for r in 0..brows {
            let dst_r = row_start + r;
            if dst_r >= rows {
                break;
            }
            for c in 0..bcols {
                let dst_c = col_start + c;
                if dst_c >= cols {
                    break;
                }
                self.data[dst_r * cols + dst_c] = block.data[r * bcols + c];
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape=[{:?}]", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ... {} elements])",
                self.data[0],
                self.data[1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_right_contents() {
        let z = Tensor::zeros(&[2, 2]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[3]);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn eye_is_identity() {
        let e = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(e.at2(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 7.5);
        assert!(t.get(&[2, 0, 0]).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_fn(&[3, 5], |i| i as f32);
        let tt = t.transpose().transpose();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose_swaps_indices() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tr = t.transpose();
        assert_eq!(tr.shape(), &[3, 2]);
        assert_eq!(tr.at2(0, 1), t.at2(1, 0));
        assert_eq!(tr.at2(2, 0), t.at2(0, 2));
    }

    #[test]
    fn row_and_col_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn submatrix_pads_past_edges() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let s = t.submatrix_padded(1, 1, 2, 2);
        assert_eq!(s.as_slice(), &[4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn write_submatrix_inverts_submatrix_padded() {
        let t = Tensor::from_fn(&[5, 7], |i| i as f32);
        let mut rebuilt = Tensor::zeros(&[5, 7]);
        let (tr, tc) = (2usize, 3usize);
        for r0 in (0..5).step_by(tr) {
            for c0 in (0..7).step_by(tc) {
                let tile = t.submatrix_padded(r0, c0, tr, tc);
                rebuilt.write_submatrix(r0, c0, &tile);
            }
        }
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(&[100]);
        assert!(!format!("{t:?}").is_empty());
    }
}
