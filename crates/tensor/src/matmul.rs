//! Cache-blocked, optionally multi-threaded matrix multiplication.
//!
//! Three kernels cover everything the DNN library needs for forward and
//! backward passes without materialising transposes:
//!
//! * [`Tensor::matmul`]      — `C = A · B`
//! * [`Tensor::matmul_at_b`] — `C = Aᵀ · B`
//! * [`Tensor::matmul_a_bt`] — `C = A · Bᵀ`
//!
//! All kernels use an `i-k-j` loop order so the innermost loop streams
//! contiguously over rows of `B` (or `Bᵀ`'s logical rows), which LLVM
//! auto-vectorises. Work is split over row blocks with `std::thread::scope`
//! when the problem is large enough to amortise thread startup.

use crate::shape::ShapeError;
use crate::Tensor;

/// Problems with at least this many multiply-accumulates use threads.
const PARALLEL_THRESHOLD: usize = 1 << 20;

fn worker_count() -> usize {
    crate::threads::max_threads()
}

impl Tensor {
    /// Matrix product `C = A · B` for 2-D tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `A` is `m×k` and `B` is `k×n`.
    ///
    /// # Example
    ///
    /// ```
    /// use xbar_tensor::Tensor;
    /// # fn main() -> Result<(), xbar_tensor::ShapeError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        check_2d("matmul", self, other)?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(ShapeError::new(format!(
                "matmul: inner dimensions differ ({k} vs {k2})"
            )));
        }
        let mut out = vec![0.0f32; m * n];
        let a = self.as_slice();
        let b = other.as_slice();
        run_rows(m, k, n, &mut out, |row_range, out_chunk| {
            for (local_i, i) in row_range.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                for (p, &apv) in arow.iter().enumerate() {
                    if apv == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += apv * bv;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `C = Aᵀ · B` without materialising `Aᵀ`.
    ///
    /// For `A` of shape `k×m` and `B` of shape `k×n`, produces `m×n`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if either operand is not 2-D or the shared
    /// dimension differs.
    pub fn matmul_at_b(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        check_2d("matmul_at_b", self, other)?;
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(ShapeError::new(format!(
                "matmul_at_b: leading dimensions differ ({k} vs {k2})"
            )));
        }
        // C[i][j] = sum_p A[p][i] * B[p][j]; accumulate outer products of the
        // p-th row of A with the p-th row of B, sharded over output rows.
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        run_rows(m, k, n, &mut out, |row_range, out_chunk| {
            let start = row_range.start;
            for p in 0..k {
                let brow = &b[p * n..(p + 1) * n];
                for (local_i, i) in row_range.clone().enumerate() {
                    let av = a[p * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
            let _ = start;
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `C = A · Bᵀ` without materialising `Bᵀ`.
    ///
    /// For `A` of shape `m×k` and `B` of shape `n×k`, produces `m×n`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if either operand is not 2-D or the shared
    /// dimension differs.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        check_2d("matmul_a_bt", self, other)?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(ShapeError::new(format!(
                "matmul_a_bt: trailing dimensions differ ({k} vs {k2})"
            )));
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        run_rows(m, k, n, &mut out, |row_range, out_chunk| {
            for (local_i, i) in row_range.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *cv += acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product `y = A · x` for a 2-D `A` and 1-D `x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank or dimension mismatch.
    pub fn matvec(&self, x: &Tensor) -> Result<Tensor, ShapeError> {
        if self.ndim() != 2 || x.ndim() != 1 {
            return Err(ShapeError::new(
                "matvec requires a 2-D matrix and 1-D vector",
            ));
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        if x.len() != k {
            return Err(ShapeError::new(format!(
                "matvec: matrix has {k} columns but vector has {} elements",
                x.len()
            )));
        }
        let a = self.as_slice();
        let xv = x.as_slice();
        let out: Vec<f32> = (0..m)
            .map(|i| {
                a[i * k..(i + 1) * k]
                    .iter()
                    .zip(xv)
                    .map(|(&av, &xvv)| av * xvv)
                    .sum()
            })
            .collect();
        Tensor::from_vec(out, &[m])
    }
}

fn check_2d(op: &str, a: &Tensor, b: &Tensor) -> Result<(), ShapeError> {
    if a.ndim() != 2 || b.ndim() != 2 {
        return Err(ShapeError::new(format!(
            "{op} requires 2-D operands, got ranks {} and {}",
            a.ndim(),
            b.ndim()
        )));
    }
    Ok(())
}

/// Runs `body` over disjoint row blocks of the `m×n` output, in parallel when
/// the problem is big enough. `body(rows, chunk)` must fill `chunk`, the
/// row-major slice corresponding to `rows`.
fn run_rows(
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    body: impl Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
) {
    let flops = m * k * n;
    let workers = worker_count();
    if flops < PARALLEL_THRESHOLD || workers <= 1 || m < 2 {
        body(0..m, out);
        return;
    }
    let rows_per = m.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0usize;
        let body = &body;
        while start < m {
            let end = (start + rows_per).min(m);
            let (chunk, tail) = rest.split_at_mut((end - start) * n);
            rest = tail;
            let range = start..end;
            scope.spawn(move || body(range, chunk));
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                c.set2(i, j, acc);
            }
        }
        c
    }

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        // Simple xorshift so the test has no RNG dependency.
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        Tensor::from_fn(shape, |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 500.0
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_tensor(&[7, 11], 1);
        let b = rand_tensor(&[11, 5], 2);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_large_parallel_matches_naive() {
        let a = rand_tensor(&[130, 90], 3);
        let b = rand_tensor(&[90, 117], 4);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_tensor(&[6, 6], 5);
        assert_close(&a.matmul(&Tensor::eye(6)).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = rand_tensor(&[9, 4], 6);
        let b = rand_tensor(&[9, 7], 7);
        let want = a.transpose().matmul(&b).unwrap();
        assert_close(&a.matmul_at_b(&b).unwrap(), &want, 1e-4);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = rand_tensor(&[5, 8], 8);
        let b = rand_tensor(&[6, 8], 9);
        let want = a.matmul(&b.transpose()).unwrap();
        assert_close(&a.matmul_a_bt(&b).unwrap(), &want, 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = rand_tensor(&[5, 3], 10);
        let x = rand_tensor(&[3], 11);
        let xm = x.reshape(&[3, 1]).unwrap();
        let want = a.matmul(&xm).unwrap();
        let got = a.matvec(&x).unwrap();
        assert_close(&got.reshape(&[5, 1]).unwrap(), &want, 1e-5);
    }

    #[test]
    fn dimension_errors() {
        let a = rand_tensor(&[2, 3], 12);
        let b = rand_tensor(&[4, 2], 13);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_at_b(&b).is_err());
        assert!(a.matmul_a_bt(&b).is_err());
        let v = rand_tensor(&[5], 14);
        assert!(a.matvec(&v).is_err());
    }

    #[test]
    fn degenerate_shapes_multiply() {
        let row = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let col = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3, 1]).unwrap();
        let dot = row.matmul(&col).unwrap();
        assert_eq!(dot.shape(), &[1, 1]);
        assert_eq!(dot.as_slice(), &[32.0]);
        let outer = col.matmul(&row).unwrap();
        assert_eq!(outer.shape(), &[3, 3]);
        assert_eq!(outer.at2(2, 0), 6.0);
    }

    #[test]
    fn empty_inner_dimension_gives_zeros() {
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rank_errors() {
        let a = rand_tensor(&[2, 3, 4], 15);
        let b = rand_tensor(&[3, 4], 16);
        assert!(a.matmul(&b).is_err());
    }
}
