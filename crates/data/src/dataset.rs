//! In-memory labelled image dataset.

use xbar_tensor::Tensor;

/// Which split of a dataset to access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Held-out test split.
    Test,
}

/// An in-memory image-classification dataset with train and test splits.
///
/// Images are stored `[N, C, H, W]`, already normalised to roughly zero mean
/// and unit variance per channel.
#[derive(Debug, Clone)]
pub struct Dataset {
    num_classes: usize,
    train_images: Tensor,
    train_labels: Vec<usize>,
    test_images: Tensor,
    test_labels: Vec<usize>,
}

impl Dataset {
    /// Assembles a dataset from its parts.
    ///
    /// # Panics
    ///
    /// Panics if image counts and label counts disagree, or a label is out of
    /// range.
    pub fn new(
        num_classes: usize,
        train_images: Tensor,
        train_labels: Vec<usize>,
        test_images: Tensor,
        test_labels: Vec<usize>,
    ) -> Self {
        assert_eq!(train_images.shape()[0], train_labels.len());
        assert_eq!(test_images.shape()[0], test_labels.len());
        assert!(
            train_labels
                .iter()
                .chain(&test_labels)
                .all(|&l| l < num_classes),
            "label out of range"
        );
        Self {
            num_classes,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Images of a split, `[N, C, H, W]`.
    pub fn images(&self, split: Split) -> &Tensor {
        match split {
            Split::Train => &self.train_images,
            Split::Test => &self.test_images,
        }
    }

    /// Labels of a split.
    pub fn labels(&self, split: Split) -> &[usize] {
        match split {
            Split::Train => &self.train_labels,
            Split::Test => &self.test_labels,
        }
    }

    /// Number of examples in a split.
    pub fn len(&self, split: Split) -> usize {
        self.labels(split).len()
    }

    /// Whether a split is empty.
    pub fn is_empty(&self, split: Split) -> bool {
        self.labels(split).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            2,
            Tensor::zeros(&[3, 1, 2, 2]),
            vec![0, 1, 0],
            Tensor::zeros(&[1, 1, 2, 2]),
            vec![1],
        )
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.len(Split::Train), 3);
        assert_eq!(d.len(Split::Test), 1);
        assert!(!d.is_empty(Split::Train));
        assert_eq!(d.labels(Split::Test), &[1]);
        assert_eq!(d.images(Split::Train).shape(), &[3, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        Dataset::new(
            1,
            Tensor::zeros(&[1, 1, 1, 1]),
            vec![1],
            Tensor::zeros(&[0, 1, 1, 1]),
            vec![],
        );
    }

    #[test]
    #[should_panic]
    fn count_mismatch_panics() {
        Dataset::new(
            2,
            Tensor::zeros(&[2, 1, 1, 1]),
            vec![0],
            Tensor::zeros(&[0, 1, 1, 1]),
            vec![],
        );
    }
}
