//! Synthetic CIFAR-like image generator.
//!
//! Each class gets a deterministic *prototype* built from three ingredients
//! chosen to mimic natural-image statistics at 32×32:
//!
//! 1. a smooth colour gradient (low-frequency content),
//! 2. a handful of Gaussian blobs at class-specific positions (mid-frequency
//!    blob structure), and
//! 3. a class-specific sinusoidal texture (oriented high-frequency content).
//!
//! Samples are the prototype plus per-sample Gaussian pixel noise, a random
//! sub-pixel shift (implemented as integer shift up to ±`max_shift`), and an
//! optional horizontal flip. Difficulty is controlled by `noise_std`: higher
//! noise pushes trained accuracy down toward the paper's CIFAR100 regime.

use crate::dataset::Dataset;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_tensor::Tensor;

const SIDE: usize = 32;
const CHANNELS: usize = 3;

/// Configuration for the synthetic CIFAR-like generator ([C-BUILDER]).
///
/// # Example
///
/// ```
/// use xbar_data::CifarLikeConfig;
///
/// let ds = CifarLikeConfig::cifar10_like()
///     .train_size(128)
///     .test_size(64)
///     .generate(7);
/// assert_eq!(ds.num_classes(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CifarLikeConfig {
    num_classes: usize,
    train_size: usize,
    test_size: usize,
    noise_std: f32,
    max_shift: usize,
    flip: bool,
    class_overlap: f32,
}

impl CifarLikeConfig {
    /// A 10-class task in the CIFAR10 difficulty regime (software accuracy
    /// in the mid-80s, as in the paper's Table I).
    pub fn cifar10_like() -> Self {
        Self {
            num_classes: 10,
            train_size: 4000,
            test_size: 1000,
            noise_std: 1.2,
            max_shift: 2,
            flip: true,
            class_overlap: 0.62,
        }
    }

    /// A 100-class task in the CIFAR100 difficulty regime (more classes and
    /// heavier class overlap, so software accuracy lands near the paper's
    /// ~50 %).
    pub fn cifar100_like() -> Self {
        Self {
            num_classes: 100,
            train_size: 8000,
            test_size: 2000,
            noise_std: 1.3,
            max_shift: 2,
            flip: true,
            class_overlap: 0.75,
        }
    }

    /// Overrides the number of classes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn num_classes_override(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        self.num_classes = n;
        self
    }

    /// Number of training examples.
    pub fn train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Number of test examples.
    pub fn test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Per-pixel Gaussian noise standard deviation (task difficulty).
    pub fn noise_std(mut self, std: f32) -> Self {
        self.noise_std = std;
        self
    }

    /// Maximum random translation in pixels.
    pub fn max_shift(mut self, shift: usize) -> Self {
        self.max_shift = shift;
        self
    }

    /// Maximum class-overlap mixing coefficient in `[0, 1)`: each sample is
    /// `(1−m)·proto_class + m·proto_other` with `m ~ U(0, class_overlap)`.
    /// Values above `0.5` create inherently ambiguous samples, capping the
    /// achievable accuracy below 100 % the way natural-image class overlap
    /// does — the knob that places software accuracy in the paper's regime.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ class_overlap < 1`.
    pub fn class_overlap(mut self, overlap: f32) -> Self {
        assert!((0.0..1.0).contains(&overlap), "overlap must be in [0, 1)");
        self.class_overlap = overlap;
        self
    }

    /// Number of classes this config will generate.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<Vec<f32>> = (0..self.num_classes)
            .map(|c| class_prototype(c, seed))
            .collect();
        let (train_images, train_labels) =
            self.sample_split(&prototypes, self.train_size, &mut rng);
        let (test_images, test_labels) = self.sample_split(&prototypes, self.test_size, &mut rng);
        Dataset::new(
            self.num_classes,
            train_images,
            train_labels,
            test_images,
            test_labels,
        )
    }

    fn sample_split(
        &self,
        prototypes: &[Vec<f32>],
        n: usize,
        rng: &mut StdRng,
    ) -> (Tensor, Vec<usize>) {
        let image_len = CHANNELS * SIDE * SIDE;
        let mut data = Vec::with_capacity(n * image_len);
        let mut labels = Vec::with_capacity(n);
        let shift_dist =
            Uniform::new_inclusive(-(self.max_shift as isize), self.max_shift as isize);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            let dy = shift_dist.sample(rng);
            let dx = shift_dist.sample(rng);
            let flip = self.flip && rng.gen_bool(0.5);
            let proto = &prototypes[class];
            // Class-overlap mixing toward a random other class.
            let (mix, other) = if self.class_overlap > 0.0 && self.num_classes > 1 {
                let m: f32 = rng.gen_range(0.0..self.class_overlap);
                let mut o = rng.gen_range(0..self.num_classes - 1);
                if o >= class {
                    o += 1;
                }
                (m, o)
            } else {
                (0.0, class)
            };
            let proto_other = &prototypes[other];
            for c in 0..CHANNELS {
                for y in 0..SIDE {
                    for x in 0..SIDE {
                        let sx = if flip { SIDE - 1 - x } else { x };
                        let py = (y as isize + dy).rem_euclid(SIDE as isize) as usize;
                        let px = (sx as isize + dx).rem_euclid(SIDE as isize) as usize;
                        let idx = (c * SIDE + py) * SIDE + px;
                        let base = (1.0 - mix) * proto[idx] + mix * proto_other[idx];
                        let noise = gaussian(rng) * self.noise_std;
                        data.push(base + noise);
                    }
                }
            }
        }
        let images = Tensor::from_vec(data, &[n, CHANNELS, SIDE, SIDE])
            .expect("generator shape is consistent");
        (images, labels)
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Deterministic per-class prototype image, normalised to zero mean and unit
/// variance across the image.
fn class_prototype(class: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ (class as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut img = vec![0.0f32; CHANNELS * SIDE * SIDE];
    // 1. Smooth colour gradient.
    let gx: [f32; CHANNELS] = [
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
    ];
    let gy: [f32; CHANNELS] = [
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
    ];
    // 2. Blobs.
    let n_blobs = 3 + (class % 3);
    let blobs: Vec<(f32, f32, f32, [f32; CHANNELS])> = (0..n_blobs)
        .map(|_| {
            (
                rng.gen_range(4.0..28.0),
                rng.gen_range(4.0..28.0),
                rng.gen_range(2.0..6.0),
                [
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                ],
            )
        })
        .collect();
    // 3. Oriented sinusoid.
    let freq: f32 = rng.gen_range(0.2..0.9);
    let angle: f32 = rng.gen_range(0.0..std::f32::consts::PI);
    let (sin_a, cos_a) = angle.sin_cos();
    let tex_amp: [f32; CHANNELS] = [
        rng.gen_range(0.2..0.8),
        rng.gen_range(0.2..0.8),
        rng.gen_range(0.2..0.8),
    ];
    for c in 0..CHANNELS {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let (fx, fy) = (x as f32, y as f32);
                let mut v = gx[c] * (fx / SIDE as f32 - 0.5) + gy[c] * (fy / SIDE as f32 - 0.5);
                for &(bx, by, r, amp) in &blobs {
                    let d2 = (fx - bx).powi(2) + (fy - by).powi(2);
                    v += amp[c] * (-d2 / (2.0 * r * r)).exp();
                }
                v += tex_amp[c] * (freq * (cos_a * fx + sin_a * fy)).sin();
                img[(c * SIDE + y) * SIDE + x] = v;
            }
        }
    }
    // Normalise.
    let mean: f32 = img.iter().sum::<f32>() / img.len() as f32;
    let var: f32 = img.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / img.len() as f32;
    let inv = 1.0 / var.sqrt().max(1e-6);
    for v in &mut img {
        *v = (*v - mean) * inv;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Split;

    #[test]
    fn shapes_and_labels() {
        let ds = CifarLikeConfig::cifar10_like()
            .train_size(20)
            .test_size(10)
            .generate(1);
        assert_eq!(ds.images(Split::Train).shape(), &[20, 3, 32, 32]);
        assert_eq!(ds.images(Split::Test).shape(), &[10, 3, 32, 32]);
        assert!(ds.labels(Split::Train).iter().all(|&l| l < 10));
        // Round-robin class assignment covers all classes.
        let mut seen = std::collections::HashSet::new();
        seen.extend(ds.labels(Split::Train).iter().copied());
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CifarLikeConfig::cifar10_like()
            .train_size(8)
            .test_size(4)
            .generate(5);
        let b = CifarLikeConfig::cifar10_like()
            .train_size(8)
            .test_size(4)
            .generate(5);
        assert_eq!(a.images(Split::Train), b.images(Split::Train));
        let c = CifarLikeConfig::cifar10_like()
            .train_size(8)
            .test_size(4)
            .generate(6);
        assert_ne!(a.images(Split::Train), c.images(Split::Train));
    }

    #[test]
    fn prototypes_are_roughly_normalised() {
        let p = class_prototype(3, 42);
        let mean: f32 = p.iter().sum::<f32>() / p.len() as f32;
        let var: f32 = p.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / p.len() as f32;
        assert!(mean.abs() < 1e-3);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity: with moderate noise, nearest-prototype classification on
        // clean prototypes should beat chance comfortably.
        let cfg = CifarLikeConfig::cifar10_like()
            .train_size(0)
            .test_size(100)
            .noise_std(0.7)
            .max_shift(0)
            .class_overlap(0.0);
        let ds = cfg.generate(11);
        let protos: Vec<Vec<f32>> = (0..10).map(|c| class_prototype(c, 11)).collect();
        let images = ds.images(Split::Test);
        let labels = ds.labels(Split::Test);
        let image_len = 3 * 32 * 32;
        let mut correct = 0;
        for i in 0..labels.len() {
            let img = &images.as_slice()[i * image_len..(i + 1) * image_len];
            let best = protos
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = a.iter().zip(img).map(|(x, y)| (x - y).powi(2)).sum();
                    let db: f32 = b.iter().zip(img).map(|(x, y)| (x - y).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(c, _)| c)
                .unwrap();
            if best == labels[i] {
                correct += 1;
            }
        }
        assert!(correct > 50, "nearest prototype got {correct}/100");
    }

    #[test]
    fn cifar100_like_has_100_classes() {
        let cfg = CifarLikeConfig::cifar100_like()
            .train_size(200)
            .test_size(100);
        let ds = cfg.generate(3);
        assert_eq!(ds.num_classes(), 100);
        let mut seen = std::collections::HashSet::new();
        seen.extend(ds.labels(Split::Train).iter().copied());
        assert_eq!(seen.len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let _ = CifarLikeConfig::cifar10_like().num_classes_override(0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlap_of_one_rejected() {
        let _ = CifarLikeConfig::cifar10_like().class_overlap(1.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn class_overlap_makes_nearest_prototype_harder() {
        let base = CifarLikeConfig::cifar10_like()
            .train_size(0)
            .test_size(150)
            .noise_std(0.3)
            .max_shift(0);
        let protos: Vec<Vec<f32>> = (0..10).map(|c| class_prototype(c, 21)).collect();
        let nearest_acc = |ds: &crate::Dataset| {
            let images = ds.images(Split::Test);
            let labels = ds.labels(Split::Test);
            let image_len = 3 * 32 * 32;
            let mut correct = 0;
            for i in 0..labels.len() {
                let img = &images.as_slice()[i * image_len..(i + 1) * image_len];
                let best = protos
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da: f32 = a.iter().zip(img).map(|(x, y)| (x - y).powi(2)).sum();
                        let db: f32 = b.iter().zip(img).map(|(x, y)| (x - y).powi(2)).sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .map(|(c, _)| c)
                    .unwrap();
                if best == labels[i] {
                    correct += 1;
                }
            }
            correct
        };
        let clean = nearest_acc(&base.class_overlap(0.0).generate(21));
        let mixed = nearest_acc(&base.class_overlap(0.7).generate(21));
        assert!(mixed < clean, "overlap must hurt: {mixed} vs {clean}");
    }
}
