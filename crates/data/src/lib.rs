//! # xbar-data
//!
//! Deterministic synthetic CIFAR-like image datasets for the `xbar-repro`
//! workspace.
//!
//! The paper evaluates on CIFAR10 and CIFAR100. Those datasets are not
//! available offline, so this crate generates a *CIFAR-like* substitute:
//! 32×32×3 images drawn from per-class prototypes (smooth colour gradients +
//! Gaussian blobs + class-specific frequency textures) with per-sample noise,
//! random shifts and horizontal flips. The task difficulty (noise level) is
//! tunable so trained software accuracies land in the same regime as the
//! paper's Table I, and — crucially for the reproduction — the *relative*
//! behaviour of pruned vs unpruned models under crossbar non-idealities
//! depends only on having a non-trivial natural-image-like task, which this
//! provides. The substitution is documented in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use xbar_data::{CifarLikeConfig, Split};
//!
//! let cfg = CifarLikeConfig::cifar10_like().train_size(64).test_size(32);
//! let ds = cfg.generate(42);
//! assert_eq!(ds.images(Split::Train).shape(), &[64, 3, 32, 32]);
//! assert_eq!(ds.labels(Split::Test).len(), 32);
//! ```

mod cifar_like;
mod dataset;

pub use cifar_like::CifarLikeConfig;
pub use dataset::{Dataset, Split};
