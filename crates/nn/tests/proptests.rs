//! Property-based tests for the DNN library's training-critical invariants.

use proptest::prelude::*;
use xbar_nn::layers::{Flatten, Linear, ReLU};
use xbar_nn::loss::{softmax, softmax_cross_entropy};
use xbar_nn::train::{ClampConstraint, WeightConstraint};
use xbar_nn::{Layer, Mode, Sequential};
use xbar_tensor::Tensor;

fn logits_batch() -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    ((1usize..6), (2usize..8)).prop_flat_map(|(n, k)| {
        (
            proptest::collection::vec(-5.0f32..5.0, n * k),
            proptest::collection::vec(0usize..k, n),
        )
            .prop_map(move |(data, targets)| {
                (
                    Tensor::from_vec(data, &[n, k]).expect("consistent"),
                    targets,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn softmax_rows_are_probability_distributions((logits, _) in logits_batch()) {
        let p = softmax(&logits).unwrap();
        for r in 0..p.rows() {
            let row = p.row(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_with_zero_sum_grad_rows((logits, targets) in logits_batch()) {
        let out = softmax_cross_entropy(&logits, &targets).unwrap();
        prop_assert!(out.loss >= -1e-9);
        for r in 0..out.grad.rows() {
            let sum: f32 = out.grad.row(r).iter().sum();
            prop_assert!(sum.abs() < 1e-5);
        }
    }

    #[test]
    fn loss_gradient_matches_numeric_at_random_points((logits, targets) in logits_batch()) {
        let out = softmax_cross_entropy(&logits, &targets).unwrap();
        // Check a couple of coordinates by central differences.
        let eps = 1e-3f32;
        for idx in [0usize, logits.len() / 2] {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let lp = softmax_cross_entropy(&plus, &targets).unwrap().loss;
            let lm = softmax_cross_entropy(&minus, &targets).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = out.grad.as_slice()[idx] as f64;
            prop_assert!(
                (numeric - analytic).abs() < 1e-3,
                "idx {}: {} vs {}",
                idx,
                numeric,
                analytic
            );
        }
    }

    #[test]
    fn relu_backward_never_flips_gradient_sign(
        xs in proptest::collection::vec(-3.0f32..3.0, 1..30),
        gs in proptest::collection::vec(-3.0f32..3.0, 1..30),
    ) {
        let n = xs.len().min(gs.len());
        let x = Tensor::from_vec(xs[..n].to_vec(), &[n]).unwrap();
        let g = Tensor::from_vec(gs[..n].to_vec(), &[n]).unwrap();
        let mut relu = ReLU::new();
        relu.forward(&x, Mode::Train).unwrap();
        let dx = relu.backward(&g).unwrap();
        for ((&xi, &gi), &di) in x.as_slice().iter().zip(g.as_slice()).zip(dx.as_slice()) {
            if xi > 0.0 {
                prop_assert_eq!(di, gi);
            } else {
                prop_assert_eq!(di, 0.0);
            }
        }
    }

    #[test]
    fn clamp_constraint_bounds_all_synaptic_weights(limit in 0.01f32..2.0, seed in 0u64..100) {
        let mut model = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(6, 4, seed)),
            Layer::ReLU(ReLU::new()),
            Layer::Linear(Linear::new(4, 3, seed + 1)),
        ]);
        ClampConstraint { limit }.apply(&mut model);
        for p in model.params_mut() {
            if p.kind.is_synaptic() {
                prop_assert!(p.value.abs_max() <= limit + 1e-6);
            }
        }
    }

    #[test]
    fn eval_forward_is_deterministic(seed in 0u64..500) {
        let mut model = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8, 4, seed)),
            Layer::ReLU(ReLU::new()),
            Layer::Linear(Linear::new(4, 2, seed + 7)),
        ]);
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 7 + seed as usize) % 13) as f32 / 6.0);
        let a = model.forward(&x, Mode::Eval).unwrap();
        let b = model.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(a, b);
    }
}
