//! Learnable parameters with their gradients and optimiser state.

use xbar_tensor::Tensor;

/// What role a parameter plays; the pruning and crossbar-mapping crates use
/// this to select the weights that become crossbar conductances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Convolution kernel, stored as `[out_c, in_c·kh·kw]`.
    ConvWeight,
    /// Fully-connected weight, stored as `[out_f, in_f]`.
    LinearWeight,
    /// Additive bias.
    Bias,
    /// BatchNorm scale (γ).
    BnGamma,
    /// BatchNorm shift (β).
    BnBeta,
}

impl ParamKind {
    /// Whether weight decay applies (biases and BatchNorm parameters are
    /// conventionally excluded).
    pub fn decays(self) -> bool {
        matches!(self, ParamKind::ConvWeight | ParamKind::LinearWeight)
    }

    /// Whether this parameter is mapped onto crossbars as synaptic
    /// conductances.
    pub fn is_synaptic(self) -> bool {
        matches!(self, ParamKind::ConvWeight | ParamKind::LinearWeight)
    }
}

/// A learnable tensor together with its gradient accumulator and momentum
/// buffer.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
    /// SGD momentum buffer (lazily initialised by the optimiser).
    pub momentum: Option<Tensor>,
    /// Parameter role.
    pub kind: ParamKind,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            value,
            grad,
            momentum: None,
            kind,
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[3, 3]), ParamKind::ConvWeight);
        assert_eq!(p.grad.shape(), &[3, 3]);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert!(p.momentum.is_none());
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]), ParamKind::Bias);
        p.grad.as_mut_slice().fill(5.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn decay_policy() {
        assert!(ParamKind::ConvWeight.decays());
        assert!(ParamKind::LinearWeight.decays());
        assert!(!ParamKind::Bias.decays());
        assert!(!ParamKind::BnGamma.decays());
        assert!(!ParamKind::BnBeta.decays());
    }

    #[test]
    fn synaptic_policy() {
        assert!(ParamKind::ConvWeight.is_synaptic());
        assert!(ParamKind::LinearWeight.is_synaptic());
        assert!(!ParamKind::BnGamma.is_synaptic());
    }
}
