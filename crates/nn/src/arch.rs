//! Architecture descriptors: a serialisable, layer-by-layer summary of a
//! [`Sequential`] model.
//!
//! Checkpoints (`crate::checkpoint`) deliberately store only tensor values
//! and require the caller to rebuild the architecture; a *served* artifact
//! must be self-contained, so [`LayerSpec`] captures the hyper-parameters of
//! every layer. [`spec_of`] extracts the descriptor from a live model and
//! [`build_from_spec`] reconstructs an identically-shaped model (with fresh
//! parameters — load a tensor block over them afterwards).

use crate::layers::{BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU};
use crate::{Layer, Sequential};
use xbar_obs::json::Json;

/// The hyper-parameters of one layer, sufficient to reconstruct it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerSpec {
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel side length.
        kernel: usize,
        /// Spatial stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Fully-connected layer.
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// Batch normalisation over channels.
    BatchNorm2d {
        /// Channel count.
        channels: usize,
    },
    /// Rectified linear unit.
    ReLU,
    /// Max pooling.
    MaxPool2d {
        /// Window side length.
        kernel: usize,
        /// Window stride.
        stride: usize,
    },
    /// Flatten to `[N, features]`.
    Flatten,
    /// Inverted dropout.
    Dropout {
        /// Drop probability.
        p: f32,
    },
}

/// Extracts the architecture descriptor of `model`.
pub fn spec_of(model: &Sequential) -> Vec<LayerSpec> {
    model
        .layers()
        .iter()
        .map(|layer| match layer {
            Layer::Conv2d(l) => LayerSpec::Conv2d {
                in_c: l.in_channels(),
                out_c: l.out_channels(),
                kernel: l.kernel_size(),
                stride: l.stride(),
                pad: l.padding(),
            },
            Layer::Linear(l) => LayerSpec::Linear {
                in_f: l.in_features(),
                out_f: l.out_features(),
            },
            Layer::BatchNorm2d(l) => LayerSpec::BatchNorm2d {
                channels: l.channels(),
            },
            Layer::ReLU(_) => LayerSpec::ReLU,
            Layer::MaxPool2d(l) => LayerSpec::MaxPool2d {
                kernel: l.kernel_size(),
                stride: l.stride(),
            },
            Layer::Flatten(_) => LayerSpec::Flatten,
            Layer::Dropout(l) => LayerSpec::Dropout { p: l.probability() },
        })
        .collect()
}

/// Builds a model matching `spec`. Learnable parameters are freshly
/// initialised (deterministically, per-layer seeds) — callers restoring a
/// saved model overwrite them from a tensor block.
pub fn build_from_spec(spec: &[LayerSpec]) -> Sequential {
    let layers = spec
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let seed = i as u64;
            match *s {
                LayerSpec::Conv2d {
                    in_c,
                    out_c,
                    kernel,
                    stride,
                    pad,
                } => Layer::Conv2d(Conv2d::new(in_c, out_c, kernel, stride, pad, seed)),
                LayerSpec::Linear { in_f, out_f } => Layer::Linear(Linear::new(in_f, out_f, seed)),
                LayerSpec::BatchNorm2d { channels } => {
                    Layer::BatchNorm2d(BatchNorm2d::new(channels))
                }
                LayerSpec::ReLU => Layer::ReLU(ReLU::new()),
                LayerSpec::MaxPool2d { kernel, stride } => {
                    Layer::MaxPool2d(MaxPool2d::new(kernel, stride))
                }
                LayerSpec::Flatten => Layer::Flatten(Flatten::new()),
                LayerSpec::Dropout { p } => Layer::Dropout(Dropout::new(p, seed)),
            }
        })
        .collect();
    Sequential::new(layers)
}

impl LayerSpec {
    /// JSON object representation (`{"kind": "conv2d", ...}`).
    pub fn to_json(&self) -> Json {
        let num = |v: usize| Json::Num(v as f64);
        match *self {
            LayerSpec::Conv2d {
                in_c,
                out_c,
                kernel,
                stride,
                pad,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("conv2d".into())),
                ("in".into(), num(in_c)),
                ("out".into(), num(out_c)),
                ("kernel".into(), num(kernel)),
                ("stride".into(), num(stride)),
                ("pad".into(), num(pad)),
            ]),
            LayerSpec::Linear { in_f, out_f } => Json::Obj(vec![
                ("kind".into(), Json::Str("linear".into())),
                ("in".into(), num(in_f)),
                ("out".into(), num(out_f)),
            ]),
            LayerSpec::BatchNorm2d { channels } => Json::Obj(vec![
                ("kind".into(), Json::Str("batchnorm2d".into())),
                ("channels".into(), num(channels)),
            ]),
            LayerSpec::ReLU => Json::Obj(vec![("kind".into(), Json::Str("relu".into()))]),
            LayerSpec::MaxPool2d { kernel, stride } => Json::Obj(vec![
                ("kind".into(), Json::Str("maxpool2d".into())),
                ("kernel".into(), num(kernel)),
                ("stride".into(), num(stride)),
            ]),
            LayerSpec::Flatten => Json::Obj(vec![("kind".into(), Json::Str("flatten".into()))]),
            LayerSpec::Dropout { p } => Json::Obj(vec![
                ("kind".into(), Json::Str("dropout".into())),
                ("p".into(), Json::Num(p as f64)),
            ]),
        }
    }

    /// Parses a [`LayerSpec::to_json`] object back.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing/unknown field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("layer spec without \"kind\"")?;
        let field = |name: &str| -> Result<usize, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("layer spec {kind:?} missing field {name:?}"))
        };
        match kind {
            "conv2d" => Ok(LayerSpec::Conv2d {
                in_c: field("in")?,
                out_c: field("out")?,
                kernel: field("kernel")?,
                stride: field("stride")?,
                pad: field("pad")?,
            }),
            "linear" => Ok(LayerSpec::Linear {
                in_f: field("in")?,
                out_f: field("out")?,
            }),
            "batchnorm2d" => Ok(LayerSpec::BatchNorm2d {
                channels: field("channels")?,
            }),
            "relu" => Ok(LayerSpec::ReLU),
            "maxpool2d" => Ok(LayerSpec::MaxPool2d {
                kernel: field("kernel")?,
                stride: field("stride")?,
            }),
            "flatten" => Ok(LayerSpec::Flatten),
            "dropout" => Ok(LayerSpec::Dropout {
                p: j.get("p")
                    .and_then(Json::as_f64)
                    .ok_or("dropout spec missing \"p\"")? as f32,
            }),
            other => Err(format!("unknown layer kind {other:?}")),
        }
    }
}

/// Serialises a whole architecture as a JSON array.
pub fn spec_to_json(spec: &[LayerSpec]) -> Json {
    Json::Arr(spec.iter().map(LayerSpec::to_json).collect())
}

/// Parses a [`spec_to_json`] array back.
///
/// # Errors
///
/// Returns a description of the first malformed layer entry.
pub fn spec_from_json(j: &Json) -> Result<Vec<LayerSpec>, String> {
    j.as_arr()
        .ok_or("architecture spec is not an array")?
        .iter()
        .map(LayerSpec::from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use xbar_tensor::Tensor;

    fn sample() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(3, 4, 3, 1, 1, 7)),
            Layer::BatchNorm2d(BatchNorm2d::new(4)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dropout(Dropout::new(0.5, 8)),
            Layer::Linear(Linear::new(4 * 2 * 2, 5, 9)),
        ])
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = spec_of(&sample());
        let json = spec_to_json(&spec);
        let parsed = spec_from_json(&Json::parse(&json.to_json()).unwrap()).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn rebuilt_model_has_matching_shapes() {
        let mut original = sample();
        let spec = spec_of(&original);
        let mut rebuilt = build_from_spec(&spec);
        let a: Vec<Vec<usize>> = original
            .state_tensors_mut()
            .iter()
            .map(|t| t.shape().to_vec())
            .collect();
        let b: Vec<Vec<usize>> = rebuilt
            .state_tensors_mut()
            .iter()
            .map(|t| t.shape().to_vec())
            .collect();
        assert_eq!(a, b);
        // And it runs.
        let y = rebuilt
            .forward(&Tensor::zeros(&[2, 3, 4, 4]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[2, 5]);
    }

    #[test]
    fn unknown_kind_rejected() {
        let j = Json::parse("[{\"kind\":\"gelu\"}]").unwrap();
        let err = spec_from_json(&j).unwrap_err();
        assert!(err.contains("gelu"), "{err}");
    }
}
