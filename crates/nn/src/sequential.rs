//! The [`Sequential`] model container and the [`Layer`] sum type.
//!
//! A closed enum (rather than trait objects) lets the pruning and
//! crossbar-mapping crates pattern-match on the weighted layers without
//! downcasting — they need typed access to convolution geometry to build the
//! unrolled `fan_in × fan_out` matrices of the paper's Fig. 2 pipeline.

use crate::layers::{BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU};
use crate::param::Param;
use crate::Mode;
use xbar_tensor::{ShapeError, Tensor};

/// One layer of a [`Sequential`] model.
#[derive(Debug, Clone)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// Batch normalisation.
    BatchNorm2d(BatchNorm2d),
    /// Rectified linear unit.
    ReLU(ReLU),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Flatten to `[N, features]`.
    Flatten(Flatten),
    /// Inverted dropout.
    Dropout(Dropout),
}

impl Layer {
    /// Forward pass, dispatching to the concrete layer.
    ///
    /// # Errors
    ///
    /// Propagates the concrete layer's [`ShapeError`].
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        match self {
            Layer::Conv2d(l) => l.forward(x, mode),
            Layer::Linear(l) => l.forward(x, mode),
            Layer::BatchNorm2d(l) => l.forward(x, mode),
            Layer::ReLU(l) => l.forward(x, mode),
            Layer::MaxPool2d(l) => l.forward(x, mode),
            Layer::Flatten(l) => l.forward(x, mode),
            Layer::Dropout(l) => l.forward(x, mode),
        }
    }

    /// Backward pass, dispatching to the concrete layer.
    ///
    /// # Errors
    ///
    /// Propagates the concrete layer's [`ShapeError`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        match self {
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::BatchNorm2d(l) => l.backward(grad_out),
            Layer::ReLU(l) => l.backward(grad_out),
            Layer::MaxPool2d(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
            Layer::Dropout(l) => l.backward(grad_out),
        }
    }

    /// Learnable parameters of this layer (empty for activation layers).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Layer::Conv2d(l) => l.params_mut(),
            Layer::Linear(l) => l.params_mut(),
            Layer::BatchNorm2d(l) => l.params_mut(),
            Layer::ReLU(_) | Layer::MaxPool2d(_) | Layer::Flatten(_) | Layer::Dropout(_) => {
                Vec::new()
            }
        }
    }

    /// Short layer name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Linear(_) => "linear",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::ReLU(_) => "relu",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::Flatten(_) => "flatten",
            Layer::Dropout(_) => "dropout",
        }
    }

    /// Returns the convolution if this is a conv layer.
    pub fn as_conv(&self) -> Option<&Conv2d> {
        match self {
            Layer::Conv2d(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable variant of [`Layer::as_conv`].
    pub fn as_conv_mut(&mut self) -> Option<&mut Conv2d> {
        match self {
            Layer::Conv2d(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the linear layer if this is one.
    pub fn as_linear(&self) -> Option<&Linear> {
        match self {
            Layer::Linear(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable variant of [`Layer::as_linear`].
    pub fn as_linear_mut(&mut self) -> Option<&mut Linear> {
        match self {
            Layer::Linear(l) => Some(l),
            _ => None,
        }
    }
}

/// A feed-forward stack of layers.
///
/// # Example
///
/// ```
/// use xbar_nn::layers::{Linear, ReLU};
/// use xbar_nn::{Layer, Mode, Sequential};
/// use xbar_tensor::Tensor;
///
/// # fn main() -> Result<(), xbar_tensor::ShapeError> {
/// let mut model = Sequential::new(vec![
///     Layer::Linear(Linear::new(4, 8, 0)),
///     Layer::ReLU(ReLU::new()),
///     Layer::Linear(Linear::new(8, 2, 1)),
/// ]);
/// let y = model.forward(&Tensor::zeros(&[3, 4]), Mode::Eval)?;
/// assert_eq!(y.shape(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Builds a model from layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer [`ShapeError`].
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode)?;
        }
        Ok(cur)
    }

    /// Runs the full backward pass from the loss gradient at the output.
    ///
    /// # Errors
    ///
    /// Propagates the first layer [`ShapeError`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    /// All learnable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar learnable parameters.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Every tensor that defines the model's inference behaviour, in a
    /// stable order: each layer's learnable parameter values followed by any
    /// non-learnable state (BatchNorm running statistics). This is the set a
    /// checkpoint must capture — saving only `params_mut()` would silently
    /// drop the running statistics.
    pub fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = Vec::new();
        for layer in &mut self.layers {
            match layer {
                Layer::BatchNorm2d(bn) => out.extend(bn.state_tensors_mut()),
                other => out.extend(other.params_mut().into_iter().map(|p| &mut p.value)),
            }
        }
        out
    }

    /// Indices of the layers that carry synaptic weights (conv and linear),
    /// in network order — the layers that are mapped onto crossbars.
    pub fn weighted_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, 0)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(2 * 2 * 2, 3, 1)),
        ])
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = tiny_model();
        let x = Tensor::ones(&[4, 1, 4, 4]);
        let y = m.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[4, 3]);
    }

    #[test]
    fn backward_runs_through_all_layers() {
        let mut m = tiny_model();
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let y = m.forward(&x, Mode::Train).unwrap();
        let dx = m.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn weighted_layer_indices_finds_conv_and_linear() {
        let m = tiny_model();
        assert_eq!(m.weighted_layer_indices(), vec![0, 4]);
    }

    #[test]
    fn param_count() {
        let mut m = tiny_model();
        // conv: 2*9 + 2; linear: 3*8 + 3
        assert_eq!(m.num_params(), 18 + 2 + 24 + 3);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut m = tiny_model();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = m.forward(&x, Mode::Train).unwrap();
        m.backward(&Tensor::ones(y.shape())).unwrap();
        assert!(m.params_mut().iter().any(|p| p.grad.abs_max() > 0.0));
        m.zero_grad();
        assert!(m.params_mut().iter().all(|p| p.grad.abs_max() == 0.0));
    }

    #[test]
    fn accessors_discriminate() {
        let m = tiny_model();
        assert!(m.layers()[0].as_conv().is_some());
        assert!(m.layers()[0].as_linear().is_none());
        assert!(m.layers()[4].as_linear().is_some());
        assert_eq!(m.layers()[1].kind_name(), "relu");
    }
}
