//! Classification metrics.

use xbar_tensor::Tensor;

/// Result of comparing predictions against labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracyCount {
    /// Correct predictions.
    pub correct: usize,
    /// Total examples.
    pub total: usize,
}

impl AccuracyCount {
    /// Fraction correct; `0.0` when empty.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Counts top-1 correct predictions from `[N, K]` logits.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or the label count disagrees.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> AccuracyCount {
    assert_eq!(logits.ndim(), 2, "accuracy expects [N, K] logits");
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(&p, &l)| p == l).count();
    AccuracyCount {
        correct,
        total: labels.len(),
    }
}

/// A `K×K` confusion matrix: `matrix[truth][prediction]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix from logits and labels.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or out-of-range labels.
    pub fn from_logits(logits: &Tensor, labels: &[usize]) -> Self {
        assert_eq!(logits.ndim(), 2);
        assert_eq!(logits.rows(), labels.len());
        let k = logits.cols();
        let mut counts = vec![0usize; k * k];
        for (pred, &truth) in logits.argmax_rows().iter().zip(labels) {
            assert!(truth < k, "label {truth} out of range");
            counts[truth * k + pred] += 1;
        }
        Self { k, counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Count at `(truth, prediction)`.
    pub fn at(&self, truth: usize, prediction: usize) -> usize {
        self.counts[truth * self.k + prediction]
    }

    /// Overall accuracy implied by the matrix.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.k).map(|i| self.at(i, i)).sum();
        diag as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]);
        assert_eq!(acc.correct, 2);
        assert_eq!(acc.total, 3);
        assert!((acc.fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_with_zero_total_is_zero_not_nan() {
        let acc = AccuracyCount {
            correct: 0,
            total: 0,
        };
        assert_eq!(acc.fraction(), 0.0);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]).fraction(), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        let cm = ConfusionMatrix::from_logits(&logits, &[0, 1, 1]);
        assert_eq!(cm.at(0, 0), 1);
        assert_eq!(cm.at(1, 1), 1);
        assert_eq!(cm.at(1, 0), 1);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn accuracy_panics_on_mismatch() {
        accuracy(&Tensor::zeros(&[2, 2]), &[0]);
    }
}
