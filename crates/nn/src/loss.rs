//! Softmax cross-entropy loss.

use xbar_tensor::{ShapeError, Tensor};

/// Result of a loss evaluation: the scalar loss and the gradient with respect
/// to the logits, ready to feed into [`crate::Sequential::backward`].
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f64,
    /// `dL/dlogits`, shape `[N, K]`.
    pub grad: Tensor,
}

/// Computes mean softmax cross-entropy over a batch.
///
/// `logits` is `[N, K]`; `targets` holds `N` class indices.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes disagree or a target index is out of
/// range.
///
/// # Example
///
/// ```
/// use xbar_nn::loss::softmax_cross_entropy;
/// use xbar_tensor::Tensor;
///
/// # fn main() -> Result<(), xbar_tensor::ShapeError> {
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0])?;
/// assert!(out.loss < 1e-6); // confident and correct
/// # Ok(())
/// # }
/// ```
#[allow(clippy::needless_range_loop)]
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<LossOutput, ShapeError> {
    if logits.ndim() != 2 {
        return Err(ShapeError::new(format!(
            "softmax_cross_entropy expects [N, K] logits, got {:?}",
            logits.shape()
        )));
    }
    let (n, k) = (logits.rows(), logits.cols());
    if targets.len() != n {
        return Err(ShapeError::new(format!(
            "batch of {n} logits but {} targets",
            targets.len()
        )));
    }
    let mut grad = Tensor::zeros(&[n, k]);
    let mut total = 0.0f64;
    for i in 0..n {
        let t = targets[i];
        if t >= k {
            return Err(ShapeError::new(format!(
                "target {t} out of range for {k} classes"
            )));
        }
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let exp: Vec<f64> = row.iter().map(|&v| ((v as f64) - max).exp()).collect();
        let z: f64 = exp.iter().sum();
        let log_z = z.ln() + max;
        total += log_z - logits.row(i)[t] as f64;
        let grow = grad.row_mut(i);
        for (j, g) in grow.iter_mut().enumerate() {
            let p = exp[j] / z;
            *g = ((p - if j == t { 1.0 } else { 0.0 }) / n as f64) as f32;
        }
    }
    Ok(LossOutput {
        loss: total / n as f64,
        grad,
    })
}

/// Softmax probabilities per row of a `[N, K]` logits tensor.
///
/// # Errors
///
/// Returns [`ShapeError`] if `logits` is not 2-D.
pub fn softmax(logits: &Tensor) -> Result<Tensor, ShapeError> {
    if logits.ndim() != 2 {
        return Err(ShapeError::new("softmax expects [N, K] logits"));
    }
    let mut out = logits.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = softmax_cross_entropy(&logits, &[1, 3]).unwrap();
        assert!((out.loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 2]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, 0.0, -0.4], &[2, 3]).unwrap();
        let targets = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let lm_loss = {
                let mut lm = logits.clone();
                lm.as_mut_slice()[idx] -= eps;
                softmax_cross_entropy(&lm, &targets).unwrap().loss
            };
            let lp_loss = softmax_cross_entropy(&lp, &targets).unwrap().loss;
            let numeric = (lp_loss - lm_loss) / (2.0 * eps as f64);
            let analytic = out.grad.as_slice()[idx] as f64;
            assert!(
                (numeric - analytic).abs() < 1e-4,
                "idx {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(out.loss.is_finite());
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn errors() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 5]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[3]), &[0]).is_err());
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
        assert!((p.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }
}
