//! Stochastic gradient descent with momentum and weight decay.

use crate::Sequential;
use xbar_tensor::Tensor;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
    /// L2 weight decay, applied only to conv/linear weights.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

/// SGD optimiser. Momentum buffers live inside each [`crate::Param`], so the
/// optimiser itself is stateless and can be reconfigured between epochs (for
/// learning-rate schedules).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sgd {
    /// Current hyper-parameters.
    pub config: SgdConfig,
}

impl Sgd {
    /// Creates an optimiser with the given hyper-parameters.
    pub fn new(config: SgdConfig) -> Self {
        Self { config }
    }

    /// Applies one update step to every parameter of `model` using the
    /// gradients accumulated by the last backward pass.
    pub fn step(&self, model: &mut Sequential) {
        let cfg = self.config;
        for p in model.params_mut() {
            let decay = if p.kind.decays() {
                cfg.weight_decay
            } else {
                0.0
            };
            if cfg.momentum > 0.0 {
                if p.momentum.is_none() {
                    p.momentum = Some(Tensor::zeros(p.value.shape()));
                }
                let buf = p.momentum.as_mut().expect("just initialised");
                let bufs = buf.as_mut_slice();
                let vals = p.value.as_mut_slice();
                let grads = p.grad.as_slice();
                for ((v, &g), b) in vals.iter_mut().zip(grads).zip(bufs.iter_mut()) {
                    let g = g + decay * *v;
                    *b = cfg.momentum * *b + g;
                    *v -= cfg.lr * *b;
                }
            } else {
                let vals = p.value.as_mut_slice();
                let grads = p.grad.as_slice();
                for (v, &g) in vals.iter_mut().zip(grads) {
                    *v -= cfg.lr * (g + decay * *v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::{Layer, Mode};
    use xbar_tensor::Tensor;

    fn one_param_model() -> Sequential {
        let mut l = Linear::new(1, 1, 0);
        l.weight_mut().value.as_mut_slice()[0] = 1.0;
        l.bias_mut().value.as_mut_slice()[0] = 0.0;
        Sequential::new(vec![Layer::Linear(l)])
    }

    fn set_grad(model: &mut Sequential, wg: f32) {
        // Run a forward/backward producing a known gradient: with x = 1 and
        // dL/dy = wg, dL/dW = wg.
        let x = Tensor::ones(&[1, 1]);
        model.forward(&x, Mode::Train).unwrap();
        model
            .backward(&Tensor::from_vec(vec![wg], &[1, 1]).unwrap())
            .unwrap();
    }

    fn weight(model: &mut Sequential) -> f32 {
        model.layers()[0]
            .as_linear()
            .unwrap()
            .weight()
            .value
            .as_slice()[0]
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut m = one_param_model();
        set_grad(&mut m, 2.0);
        let sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        sgd.step(&mut m);
        assert!((weight(&mut m) - (1.0 - 0.2)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut m = one_param_model();
        m.zero_grad();
        let sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 1.0,
        });
        sgd.step(&mut m);
        // w = 1 - 0.1 * (0 + 1*1) = 0.9
        assert!((weight(&mut m) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn bias_is_not_decayed() {
        let mut m = one_param_model();
        m.layers_mut()[0]
            .as_linear_mut()
            .unwrap()
            .bias_mut()
            .value
            .as_mut_slice()[0] = 1.0;
        m.zero_grad();
        let sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 1.0,
        });
        sgd.step(&mut m);
        let b = m.layers()[0].as_linear().unwrap().bias().value.as_slice()[0];
        assert_eq!(b, 1.0);
    }

    #[test]
    fn momentum_accelerates_repeated_gradients() {
        let mut m = one_param_model();
        let sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        // Two steps with the same gradient: second step is larger.
        set_grad(&mut m, 1.0);
        let w0 = weight(&mut m);
        sgd.step(&mut m);
        let w1 = weight(&mut m);
        m.zero_grad();
        // Gradient through new weight value is still dL/dW = 1 for this probe.
        set_grad(&mut m, 1.0);
        sgd.step(&mut m);
        let w2 = weight(&mut m);
        let step1 = w0 - w1;
        let step2 = w1 - w2;
        assert!(
            step2 > step1 * 1.5,
            "momentum should grow steps: {step1} {step2}"
        );
    }
}
