//! Parameter checkpointing.
//!
//! Saves and restores the full inference state of a [`Sequential`] model —
//! learnable parameters *and* BatchNorm running statistics — in a small
//! self-describing binary format (magic + per-tensor lengths +
//! little-endian `f32` data). The architecture itself is not serialised —
//! the caller rebuilds it (e.g. from a `VggConfig` with the same seed) and
//! loads the parameters into it, which also guards against loading weights
//! into a mismatched model.
//!
//! The generic functions take `R: Read` / `W: Write` by value; pass `&mut
//! reader` / `&mut writer` to keep using them afterwards.

use crate::serialize::{
    read_exact_or_truncated, read_tensor_block_into, write_tensor_block, TensorBlockError,
};
use crate::Sequential;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC_V2: &[u8; 8] = b"XBARCKP2";
const MAGIC_V1: &[u8; 8] = b"XBARCKP1";

/// What a checkpoint contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadedState {
    /// Full inference state: parameters plus BatchNorm running statistics.
    Full,
    /// Parameters only (v1 checkpoints). BatchNorm running statistics were
    /// NOT restored — recalibrate them (or retrain) before trusting
    /// eval-mode outputs.
    ParamsOnly,
}

/// Error from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The data is not a checkpoint or is truncated; the message says what
    /// was wrong or what was being read when the data ran out.
    Malformed(String),
    /// Parameter counts or shapes disagree with the target model.
    Mismatch {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::Mismatch { detail } => {
                write!(f, "checkpoint does not fit the model: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<TensorBlockError> for CheckpointError {
    fn from(e: TensorBlockError) -> Self {
        match e {
            TensorBlockError::Io(e) => CheckpointError::Io(e),
            TensorBlockError::Truncated(what) => {
                CheckpointError::Malformed(format!("truncated checkpoint: {what}"))
            }
            TensorBlockError::Mismatch(detail) => CheckpointError::Mismatch { detail },
        }
    }
}

/// Writes the model's full inference state (parameters and BatchNorm
/// running statistics) to `writer`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_params<W: Write>(model: &mut Sequential, mut writer: W) -> Result<(), CheckpointError> {
    let tensors = model.state_tensors_mut();
    writer.write_all(MAGIC_V2)?;
    write_tensor_block(writer, tensors.iter().map(|t| &**t))?;
    Ok(())
}

/// Reads a checkpoint from `reader` into `model`, validating counts and
/// lengths. Returns whether the checkpoint carried the full inference state
/// or (v1) parameters only — in the latter case the caller must restore the
/// BatchNorm running statistics some other way (see
/// [`LoadedState::ParamsOnly`]).
///
/// # Errors
///
/// * [`CheckpointError::Io`] on read failure;
/// * [`CheckpointError::Malformed`] for bad magic or truncation;
/// * [`CheckpointError::Mismatch`] if the checkpoint does not fit the model.
pub fn load_params<R: Read>(
    model: &mut Sequential,
    mut reader: R,
) -> Result<LoadedState, CheckpointError> {
    let mut magic = [0u8; 8];
    read_exact_or_truncated(&mut reader, &mut magic, || "reading magic".into())?;
    let state = if &magic == MAGIC_V2 {
        LoadedState::Full
    } else if &magic == MAGIC_V1 {
        LoadedState::ParamsOnly
    } else {
        return Err(CheckpointError::Malformed(format!(
            "bad magic {:?} (not an XBARCKP checkpoint)",
            String::from_utf8_lossy(&magic)
        )));
    };
    let mut slots: Vec<&mut xbar_tensor::Tensor> = match state {
        LoadedState::Full => model.state_tensors_mut(),
        LoadedState::ParamsOnly => model
            .params_mut()
            .into_iter()
            .map(|p| &mut p.value)
            .collect(),
    };
    read_tensor_block_into(reader, &mut slots)?;
    Ok(state)
}

/// Saves the model's parameters to a file.
///
/// # Errors
///
/// Propagates [`save_params`] errors.
pub fn save_params_to_file(
    model: &mut Sequential,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    // Crash-safe: temp file + atomic rename, so an interrupted save never
    // leaves a truncated checkpoint behind.
    crate::serialize::write_file_atomic(path, |writer| save_params(model, writer))
}

/// Loads the model's parameters from a file.
///
/// # Errors
///
/// Propagates [`load_params`] errors.
pub fn load_params_from_file(
    model: &mut Sequential,
    path: impl AsRef<Path>,
) -> Result<LoadedState, CheckpointError> {
    let file = std::fs::File::open(path)?;
    load_params(model, io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear};
    use crate::Layer;

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, seed)),
            Layer::Linear(Linear::new(8, 4, seed + 1)),
        ])
    }

    #[test]
    fn round_trip_restores_parameters() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).unwrap();
        let mut dst = model(2); // different init
        let state = load_params(&mut dst, buf.as_slice()).unwrap();
        assert_eq!(state, LoadedState::Full);
        let mut src2 = src.clone();
        for (a, b) in src2.params_mut().iter().zip(dst.params_mut()) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn round_trip_restores_batchnorm_running_stats() {
        use crate::layers::{BatchNorm2d, Flatten};
        use crate::Mode;
        use xbar_tensor::Tensor;
        let build = || {
            Sequential::new(vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, 8)),
                Layer::BatchNorm2d(BatchNorm2d::new(2)),
                Layer::Flatten(Flatten::new()),
                Layer::Linear(Linear::new(8, 2, 9)),
            ])
        };
        let mut src = build();
        // Drive a training-mode forward pass so running stats move off init.
        let x = Tensor::from_fn(&[4, 1, 2, 2], |i| i as f32);
        src.forward(&x, Mode::Train).unwrap();
        let src_out = src.forward(&x, Mode::Eval).unwrap();
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).unwrap();
        let mut dst = build();
        let before = dst.forward(&x, Mode::Eval).unwrap();
        assert_ne!(before, src_out, "fresh stats differ");
        load_params(&mut dst, buf.as_slice()).unwrap();
        let after = dst.forward(&x, Mode::Eval).unwrap();
        assert_eq!(after, src_out, "running stats restored exactly");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut dst = model(3);
        let err = load_params(&mut dst, &b"NOTACKPT........."[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)));
    }

    #[test]
    fn truncated_data_is_descriptive_malformed_error() {
        let mut src = model(4);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        let mut dst = model(4);
        let err = load_params(&mut dst, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("tensor"), "{msg}");
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let mut src = model(5);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).unwrap();
        let mut wrong = Sequential::new(vec![Layer::Linear(Linear::new(8, 4, 0))]);
        let err = load_params(&mut wrong, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        // Same param count but wrong shape.
        let mut wrong_shape = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, 0)),
            Layer::Linear(Linear::new(9, 4, 0)),
        ]);
        let err = load_params(&mut wrong_shape, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
    }

    #[test]
    fn file_helpers_round_trip() {
        let dir = std::env::temp_dir().join("xbar_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ckpt");
        let mut src = model(6);
        save_params_to_file(&mut src, &path).unwrap();
        let mut dst = model(7);
        load_params_from_file(&mut dst, &path).unwrap();
        let mut src2 = src.clone();
        for (a, b) in src2.params_mut().iter().zip(dst.params_mut()) {
            assert_eq!(a.value, b.value);
        }
        std::fs::remove_file(&path).ok();
    }
}
