//! Fully-connected layer.

use crate::param::{Param, ParamKind};
use crate::Mode;
use xbar_tensor::init::Init;
use xbar_tensor::{ShapeError, Tensor};

/// A fully-connected layer `y = x·Wᵀ + b` over `[N, in_f]` activations.
///
/// The weight is stored `[out_f, in_f]`; its transpose is the
/// `fan_in × fan_out` matrix mapped onto crossbars.
#[derive(Debug, Clone)]
pub struct Linear {
    in_f: usize,
    out_f: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights.
    pub fn new(in_f: usize, out_f: usize, seed: u64) -> Self {
        let weight = Param::new(
            Init::KaimingUniform.sample(&[out_f, in_f], in_f, out_f, seed),
            ParamKind::LinearWeight,
        );
        let bias = Param::new(Tensor::zeros(&[out_f]), ParamKind::Bias);
        Self {
            in_f,
            out_f,
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_f
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_f
    }

    /// The `[out_f, in_f]` weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The `[out_f]` bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable access to the bias parameter.
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// Learnable parameters (weight, bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `x` is `[N, in_f]`.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor, ShapeError> {
        if x.ndim() != 2 || x.shape()[1] != self.in_f {
            return Err(ShapeError::new(format!(
                "linear expects [N, {}], got {:?}",
                self.in_f,
                x.shape()
            )));
        }
        let mut y = x.matmul_a_bt(&self.weight.value)?; // [N, out_f]
        let b = self.bias.value.as_slice();
        for r in 0..y.rows() {
            for (v, &bb) in y.row_mut(r).iter_mut().zip(b) {
                *v += bb;
            }
        }
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Backward pass; accumulates gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `forward` was not called first or shapes
    /// disagree.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| ShapeError::new("linear backward called before forward"))?;
        let n = x.shape()[0];
        if grad_out.shape() != [n, self.out_f] {
            return Err(ShapeError::mismatch(
                "linear backward",
                &[n, self.out_f],
                grad_out.shape(),
            ));
        }
        // dW = dYᵀ · X  — [out_f, in_f]
        let dw = grad_out.matmul_at_b(x)?;
        self.weight.grad.axpy(1.0, &dw)?;
        // db = column sums of dY
        for r in 0..n {
            for (g, &d) in self
                .bias
                .grad
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.row(r))
            {
                *g += d;
            }
        }
        // dX = dY · W — [N, in_f]
        grad_out.matmul(&self.weight.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_grad, probe_loss, rand_tensor};

    #[test]
    fn forward_shape_and_bias() {
        let mut l = Linear::new(4, 3, 1);
        l.weight.value.as_mut_slice().fill(0.0);
        l.bias
            .value
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        let y = l.forward(&Tensor::zeros(&[2, 4]), Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_weight_passes_through() {
        let mut l = Linear::new(3, 3, 2);
        l.weight.value = Tensor::eye(3);
        l.bias.value = Tensor::zeros(&[3]);
        let x = rand_tensor(&[2, 3], 5);
        let y = l.forward(&x, Mode::Eval).unwrap();
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_wrong_features() {
        let mut l = Linear::new(4, 3, 3);
        assert!(l.forward(&Tensor::zeros(&[2, 5]), Mode::Eval).is_err());
        assert!(l.forward(&Tensor::zeros(&[2, 4, 1]), Mode::Eval).is_err());
    }

    #[test]
    fn weight_gradient_matches_numeric() {
        let mut l = Linear::new(4, 3, 9);
        let x = rand_tensor(&[2, 4], 10);
        let probe = rand_tensor(&[2, 3], 11);
        l.forward(&x, Mode::Train).unwrap();
        l.backward(&probe).unwrap();
        let w0 = l.weight.value.as_slice().to_vec();
        let analytic = l.weight.grad.as_slice().to_vec();
        let mut eval = |vals: &[f32]| {
            let mut m = Linear::new(4, 3, 9);
            m.weight.value.as_mut_slice().copy_from_slice(vals);
            let out = m.forward(&x, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval, &w0, &analytic, 1e-3, 1e-2);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut l = Linear::new(4, 3, 13);
        let x = rand_tensor(&[2, 4], 14);
        let probe = rand_tensor(&[2, 3], 15);
        l.forward(&x, Mode::Train).unwrap();
        let dx = l.backward(&probe).unwrap();
        let mut eval = |vals: &[f32]| {
            let mut m = Linear::new(4, 3, 13);
            let xi = Tensor::from_vec(vals.to_vec(), &[2, 4]).unwrap();
            let out = m.forward(&xi, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval, x.as_slice(), dx.as_slice(), 1e-3, 1e-2);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut l = Linear::new(2, 2, 17);
        let x = rand_tensor(&[3, 2], 18);
        let probe = Tensor::ones(&[3, 2]);
        l.forward(&x, Mode::Train).unwrap();
        l.backward(&probe).unwrap();
        assert!(l
            .bias
            .grad
            .as_slice()
            .iter()
            .all(|&g| (g - 3.0).abs() < 1e-6));
    }
}
