//! Max pooling.

use crate::Mode;
use xbar_tensor::{ShapeError, Tensor};

/// 2-D max pooling over `[N, C, H, W]` activations with square window and
/// equal stride (the VGG configuration uses 2×2 / stride 2).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    input_shape: Vec<usize>,
    /// For every output element, the linear index of the winning input.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be non-zero"
        );
        Self {
            kernel,
            stride,
            cache: None,
        }
    }

    /// Window side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Window stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `x` is 4-D and at least one window fits.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor, ShapeError> {
        if x.ndim() != 4 {
            return Err(ShapeError::new(format!(
                "maxpool2d expects [N, C, H, W], got {:?}",
                x.shape()
            )));
        }
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        if h < self.kernel || w < self.kernel {
            return Err(ShapeError::new(format!(
                "pooling window {} does not fit {}x{} input",
                self.kernel, h, w
            )));
        }
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let src = x.as_slice();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let dst = out.as_mut_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            for kx in 0..self.kernel {
                                let ix = ox * self.stride + kx;
                                let idx = plane + iy * w + ix;
                                let v = src[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[oi] = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.cache = Some(PoolCache {
            input_shape: x.shape().to_vec(),
            argmax,
        });
        Ok(out)
    }

    /// Backward pass: routes each output gradient to the winning input.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if called before `forward` or the gradient has
    /// the wrong number of elements.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| ShapeError::new("maxpool2d backward called before forward"))?;
        if grad_out.len() != cache.argmax.len() {
            return Err(ShapeError::new(format!(
                "maxpool2d backward: expected {} gradient elements, got {}",
                cache.argmax.len(),
                grad_out.len()
            )));
        }
        let mut dx = Tensor::zeros(&cache.input_shape);
        let dst = dx.as_mut_slice();
        for (&g, &idx) in grad_out.as_slice().iter().zip(&cache.argmax) {
            dst[idx] += g;
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_maximum() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        p.forward(&x, Mode::Train).unwrap();
        let dx = p
            .backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn window_must_fit() {
        let mut p = MaxPool2d::new(3, 3);
        assert!(p
            .forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Train)
            .is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut p = MaxPool2d::new(2, 2);
        assert!(p.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_kernel_panics() {
        MaxPool2d::new(0, 1);
    }
}
