//! Inverted dropout.

use crate::Mode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_tensor::{ShapeError, Tensor};

/// Inverted dropout: in training mode each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation mode
/// is the identity (as in the original VGG classifier head).
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    seed: u64,
    calls: u64,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Self {
            p,
            seed,
            calls: 0,
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// This function currently cannot fail but returns `Result` for layer
    /// uniformity.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.calls));
        self.calls += 1;
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let out = Tensor::from_vec(
            x.as_slice()
                .iter()
                .zip(&mask)
                .map(|(&v, &m)| v * m)
                .collect(),
            x.shape(),
        )?;
        self.mask = Some(mask);
        Ok(out)
    }

    /// Backward pass: applies the same mask to the gradient.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the gradient length differs from the cached
    /// mask (an eval-mode forward leaves no mask and backward is identity).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        match &self.mask {
            None => Ok(grad_out.clone()),
            Some(mask) => {
                if mask.len() != grad_out.len() {
                    return Err(ShapeError::new(format!(
                        "dropout backward: mask of {} vs gradient of {}",
                        mask.len(),
                        grad_out.len()
                    )));
                }
                Tensor::from_vec(
                    grad_out
                        .as_slice()
                        .iter()
                        .zip(mask)
                        .map(|(&g, &m)| g * m)
                        .collect(),
                    grad_out.shape(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_fn(&[20], |i| i as f32);
        assert_eq!(d.forward(&x, Mode::Eval).unwrap(), x);
    }

    #[test]
    fn train_mode_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / 1000.0 - 0.5).abs() < 0.07, "{zeros} zeros");
        // Survivors scaled by 2; expectation preserved.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[100])).unwrap();
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(a, b, "gradient mask must match forward mask");
        }
    }

    #[test]
    fn masks_differ_between_calls() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(&[64]);
        let a = d.forward(&x, Mode::Train).unwrap();
        let b = d.forward(&x, Mode::Train).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor::from_fn(&[8], |i| i as f32);
        assert_eq!(d.forward(&x, Mode::Train).unwrap(), x);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn p_of_one_rejected() {
        Dropout::new(1.0, 6);
    }
}
