//! Flattening between the convolutional trunk and the classifier head.

use crate::Mode;
use xbar_tensor::{ShapeError, Tensor};

/// Reshapes `[N, C, H, W]` activations to `[N, C·H·W]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input has fewer than two dimensions.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor, ShapeError> {
        if x.ndim() < 2 {
            return Err(ShapeError::new(format!(
                "flatten expects at least 2-D input, got {:?}",
                x.shape()
            )));
        }
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        self.input_shape = Some(x.shape().to_vec());
        x.reshape(&[n, rest])
    }

    /// Backward pass: restores the cached input shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if called before `forward` or if element counts
    /// disagree.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| ShapeError::new("flatten backward called before forward"))?;
        grad_out.reshape(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let back = f.backward(&y).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn rejects_scalarish_input() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[3]), Mode::Train).is_err());
    }
}
