//! Neural-network layers with hand-derived backward passes.
//!
//! Every layer follows the same contract:
//!
//! * `forward(&mut self, x, mode)` caches whatever the backward pass needs;
//! * `backward(&mut self, grad_out)` accumulates parameter gradients and
//!   returns the gradient with respect to the input;
//! * `params_mut()` exposes learnable parameters to the optimiser and to the
//!   constraint hooks (pruning masks, WCT clamp).
//!
//! Backward passes are validated against central finite differences in each
//! module's tests.

mod batchnorm;
mod conv2d;
mod dropout;
mod flatten;
mod linear;
mod pool;
mod relu;

pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use relu::ReLU;

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Shared central-difference gradient checking used by layer tests.

    use xbar_tensor::Tensor;

    /// Deterministic pseudo-random tensor for tests.
    pub fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Tensor::from_fn(shape, |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0
        })
    }

    /// Scalar loss `L = Σ out·probe` and its gradient w.r.t. `out`.
    pub fn probe_loss(out: &Tensor, probe: &Tensor) -> f64 {
        out.as_slice()
            .iter()
            .zip(probe.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum()
    }

    /// Checks an analytic gradient against central differences.
    ///
    /// `f(values) -> loss` recomputes the loss after perturbing the flat
    /// parameter vector; `analytic` is the gradient under test.
    pub fn check_grad(
        mut f: impl FnMut(&[f32]) -> f64,
        values: &[f32],
        analytic: &[f32],
        eps: f32,
        tol: f64,
    ) {
        assert_eq!(values.len(), analytic.len());
        let mut buf = values.to_vec();
        for i in 0..values.len() {
            let orig = buf[i];
            buf[i] = orig + eps;
            let lp = f(&buf);
            buf[i] = orig - eps;
            let lm = f(&buf);
            buf[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let a = analytic[i] as f64;
            let denom = numeric.abs().max(a.abs()).max(1.0);
            assert!(
                (numeric - a).abs() / denom < tol,
                "grad mismatch at {i}: numeric {numeric:.6} vs analytic {a:.6}"
            );
        }
    }
}
