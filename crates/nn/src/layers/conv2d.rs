//! 2-D convolution implemented by `im2col` lowering — the same unrolling the
//! paper's hardware framework applies before crossbar mapping.

use crate::param::{Param, ParamKind};
use crate::Mode;
use xbar_tensor::conv::{col2im, im2col, ConvGeom};
use xbar_tensor::init::Init;
use xbar_tensor::{ShapeError, Tensor};

/// A 2-D convolution layer over `[N, C, H, W]` activations.
///
/// The kernel is stored as a 2-D tensor of shape `[out_c, in_c·kh·kw]`; its
/// transpose is precisely the `fan_in × fan_out` weight matrix that the
/// crossbar-mapping pipeline partitions into tiles (columns = filters, as in
/// the paper's C/F-pruning description).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        let weight = Param::new(
            Init::KaimingNormal.sample(&[out_c, fan_in], fan_in, out_c, seed),
            ParamKind::ConvWeight,
        );
        let bias = Param::new(Tensor::zeros(&[out_c]), ParamKind::Bias);
        Self {
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel (filter) count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Stride in both spatial dimensions.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero-padding in both spatial dimensions.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// Kernel side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// The `[out_c, in_c·kh·kw]` weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The `[out_c]` bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable access to the bias parameter.
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// Learnable parameters (weight, bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            in_c: self.in_c,
            h,
            w,
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Forward pass over a `[N, in_c, H, W]` batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input shape disagrees with the layer.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor, ShapeError> {
        if x.ndim() != 4 || x.shape()[1] != self.in_c {
            return Err(ShapeError::new(format!(
                "conv2d expects [N, {}, H, W], got {:?}",
                self.in_c,
                x.shape()
            )));
        }
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let geom = self.geom(h, w);
        geom.validate()?;
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let patches = geom.n_patches();
        let image_len = self.in_c * h * w;
        let mut out = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let out_image_len = self.out_c * oh * ow;
        let bias = self.bias.value.as_slice();
        for i in 0..n {
            let img = Tensor::from_vec(
                x.as_slice()[i * image_len..(i + 1) * image_len].to_vec(),
                &[self.in_c, h, w],
            )?;
            let cols = im2col(&img, &geom)?;
            let y = self.weight.value.matmul(&cols)?; // [out_c, patches]
            let dst = &mut out.as_mut_slice()[i * out_image_len..(i + 1) * out_image_len];
            for (c, &b) in bias.iter().enumerate() {
                let yrow = y.row(c);
                let drow = &mut dst[c * patches..(c + 1) * patches];
                for (d, &v) in drow.iter_mut().zip(yrow) {
                    *d = v + b;
                }
            }
        }
        self.cached_input = Some(x.clone());
        Ok(out)
    }

    /// Backward pass; accumulates weight/bias gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `forward` was not called first or shapes
    /// disagree.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| ShapeError::new("conv2d backward called before forward"))?
            .clone();
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let geom = self.geom(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let patches = geom.n_patches();
        if grad_out.shape() != [n, self.out_c, oh, ow] {
            return Err(ShapeError::mismatch(
                "conv2d backward",
                &[n, self.out_c, oh, ow],
                grad_out.shape(),
            ));
        }
        let image_len = self.in_c * h * w;
        let out_image_len = self.out_c * oh * ow;
        let mut dx = Tensor::zeros(x.shape());
        for i in 0..n {
            let img = Tensor::from_vec(
                x.as_slice()[i * image_len..(i + 1) * image_len].to_vec(),
                &[self.in_c, h, w],
            )?;
            let cols = im2col(&img, &geom)?;
            let dy = Tensor::from_vec(
                grad_out.as_slice()[i * out_image_len..(i + 1) * out_image_len].to_vec(),
                &[self.out_c, patches],
            )?;
            // dW += dY · colsᵀ  — [out_c, patches]·[patches, fan_in]
            let dw = dy.matmul_a_bt(&cols)?;
            self.weight.grad.axpy(1.0, &dw)?;
            // db += row sums of dY
            for c in 0..self.out_c {
                let s: f32 = dy.row(c).iter().sum();
                self.bias.grad.as_mut_slice()[c] += s;
            }
            // dcols = Wᵀ · dY — [fan_in, patches]
            let dcols = self.weight.value.matmul_at_b(&dy)?;
            let dimg = col2im(&dcols, &geom)?;
            dx.as_mut_slice()[i * image_len..(i + 1) * image_len].copy_from_slice(dimg.as_slice());
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_grad, probe_loss, rand_tensor};

    fn tiny() -> Conv2d {
        Conv2d::new(2, 3, 3, 1, 1, 7)
    }

    #[test]
    fn forward_shape() {
        let mut c = tiny();
        let x = rand_tensor(&[2, 2, 5, 5], 1);
        let y = c.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 3, 5, 5]);
    }

    #[test]
    fn forward_stride_two() {
        let mut c = Conv2d::new(1, 1, 3, 2, 1, 3);
        let x = rand_tensor(&[1, 1, 8, 8], 2);
        let y = c.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut c = tiny();
        let x = rand_tensor(&[1, 3, 5, 5], 3);
        assert!(c.forward(&x, Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut c = tiny();
        assert!(c.backward(&Tensor::zeros(&[1, 3, 5, 5])).is_err());
    }

    #[test]
    fn bias_shifts_every_output() {
        let mut c = Conv2d::new(1, 1, 1, 1, 0, 11);
        c.weight.value.as_mut_slice()[0] = 0.0;
        c.bias.value.as_mut_slice()[0] = 2.5;
        let y = c
            .forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn known_convolution_value() {
        // 1x1 input channel, 2x2 image, 3x3 kernel of ones, pad 1:
        // centre output = sum of all inputs under the kernel.
        let mut c = Conv2d::new(1, 1, 3, 1, 1, 5);
        c.weight.value.as_mut_slice().fill(1.0);
        c.bias.value.as_mut_slice().fill(0.0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = c.forward(&x, Mode::Eval).unwrap();
        // Output (0,0) covers the 2x2 image entirely minus nothing: taps at
        // (0,0) position see pixels 1,2,3,4 => 10 (padding contributes 0).
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 10.0);
    }

    #[test]
    fn weight_gradient_matches_numeric() {
        let mut layer = tiny();
        let x = rand_tensor(&[1, 2, 4, 4], 21);
        let probe = rand_tensor(&[1, 3, 4, 4], 22);
        let y = layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&probe).unwrap();
        let _ = y;
        let w0 = layer.weight.value.as_slice().to_vec();
        let analytic = layer.weight.grad.as_slice().to_vec();
        let mut eval = |vals: &[f32]| {
            let mut l = tiny();
            l.weight.value.as_mut_slice().copy_from_slice(vals);
            let out = l.forward(&x, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval, &w0, &analytic, 1e-3, 2e-2);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut layer = tiny();
        let x = rand_tensor(&[1, 2, 4, 4], 31);
        let probe = rand_tensor(&[1, 3, 4, 4], 32);
        layer.forward(&x, Mode::Train).unwrap();
        let dx = layer.backward(&probe).unwrap();
        let x0 = x.as_slice().to_vec();
        let mut eval = |vals: &[f32]| {
            let mut l = tiny();
            let xi = Tensor::from_vec(vals.to_vec(), &[1, 2, 4, 4]).unwrap();
            let out = l.forward(&xi, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval, &x0, dx.as_slice(), 1e-3, 2e-2);
    }

    #[test]
    fn bias_gradient_matches_numeric() {
        let mut layer = tiny();
        let x = rand_tensor(&[2, 2, 4, 4], 41);
        let probe = rand_tensor(&[2, 3, 4, 4], 42);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&probe).unwrap();
        let b0 = layer.bias.value.as_slice().to_vec();
        let analytic = layer.bias.grad.as_slice().to_vec();
        let mut eval = |vals: &[f32]| {
            let mut l = tiny();
            l.bias.value.as_mut_slice().copy_from_slice(vals);
            let out = l.forward(&x, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval, &b0, &analytic, 1e-3, 2e-2);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut layer = tiny();
        let x = rand_tensor(&[1, 2, 4, 4], 51);
        let probe = rand_tensor(&[1, 3, 4, 4], 52);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&probe).unwrap();
        let once = layer.weight.grad.clone();
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&probe).unwrap();
        let twice = layer.weight.grad.clone();
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-4);
        }
    }
}
