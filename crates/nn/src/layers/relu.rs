//! Rectified linear unit.

use crate::Mode;
use xbar_tensor::{ShapeError, Tensor};

/// Element-wise `max(0, x)` with a cached activation mask for the backward
/// pass.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; works on tensors of any rank.
    ///
    /// # Errors
    ///
    /// This function currently cannot fail but returns `Result` for layer
    /// uniformity.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor, ShapeError> {
        self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        Ok(x.map(|v| v.max(0.0)))
    }

    /// Backward pass: zeroes gradient where the input was non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if called before `forward` or if the gradient
    /// length differs from the cached mask.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| ShapeError::new("relu backward called before forward"))?;
        if mask.len() != grad_out.len() {
            return Err(ShapeError::new(format!(
                "relu backward: mask of {} vs gradient of {}",
                mask.len(),
                grad_out.len()
            )));
        }
        let data = grad_out
            .as_slice()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negative() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 0.0], &[3]).unwrap();
        r.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let dx = r.backward(&g).unwrap();
        // Gradient at exactly zero input is zero (subgradient convention).
        assert_eq!(dx.as_slice(), &[0.0, 20.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut r = ReLU::new();
        assert!(r.backward(&Tensor::ones(&[2])).is_err());
    }

    #[test]
    fn backward_checks_length() {
        let mut r = ReLU::new();
        r.forward(&Tensor::ones(&[2]), Mode::Train).unwrap();
        assert!(r.backward(&Tensor::ones(&[3])).is_err());
    }
}
