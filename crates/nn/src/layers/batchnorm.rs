//! Per-channel batch normalisation for `[N, C, H, W]` activations.

use crate::param::{Param, ParamKind};
use crate::Mode;
use xbar_tensor::{ShapeError, Tensor};

/// Batch normalisation over the channel dimension (the standard companion of
/// every VGG convolution).
///
/// Training mode normalises with batch statistics and maintains running
/// estimates; evaluation mode uses the running estimates, which is what the
/// crossbar-mapped inference uses.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0 and default
    /// `eps = 1e-5`, `momentum = 0.1`.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::ones(&[channels]), ParamKind::BnGamma),
            beta: Param::new(Tensor::zeros(&[channels]), ParamKind::BnBeta),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Scale parameter γ.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Shift parameter β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Learnable parameters (γ, β).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Sets the running-statistics momentum. Recalibration procedures use
    /// `1/(k+1)` per batch `k` to turn the running estimates into cumulative
    /// means over a calibration set.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < momentum <= 1`.
    pub fn set_momentum(&mut self, momentum: f32) {
        assert!(
            momentum > 0.0 && momentum <= 1.0,
            "momentum must be in (0, 1]"
        );
        self.momentum = momentum;
    }

    /// Resets the running statistics to their initial state (mean 0,
    /// variance 1), e.g. before recalibration.
    pub fn reset_running_stats(&mut self) {
        self.running_mean.as_mut_slice().fill(0.0);
        self.running_var.as_mut_slice().fill(1.0);
    }

    /// Mutable access to the running statistics `(mean, var)` — part of the
    /// model's inference state (checkpointing must include them: a trained
    /// model evaluated with fresh statistics is garbage).
    pub fn running_stats_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.running_mean, &mut self.running_var)
    }

    /// All tensors defining this layer's inference behaviour: γ, β, running
    /// mean, running variance (in that order).
    pub fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.gamma.value,
            &mut self.beta.value,
            &mut self.running_mean,
            &mut self.running_var,
        ]
    }

    fn check(&self, x: &Tensor) -> Result<(usize, usize, usize, usize), ShapeError> {
        if x.ndim() != 4 || x.shape()[1] != self.channels {
            return Err(ShapeError::new(format!(
                "batchnorm2d expects [N, {}, H, W], got {:?}",
                self.channels,
                x.shape()
            )));
        }
        Ok((x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]))
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on input-shape mismatch.
    #[allow(clippy::needless_range_loop)]
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let (n, c, h, w) = self.check(x)?;
        let plane = h * w;
        let count = (n * plane) as f64;
        let src = x.as_slice();
        let mut out = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = match mode {
                Mode::Train => {
                    let mut sum = 0.0f64;
                    let mut sq = 0.0f64;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for &v in &src[base..base + plane] {
                            sum += v as f64;
                            sq += (v as f64) * (v as f64);
                        }
                    }
                    let mean = sum / count;
                    let var = (sq / count - mean * mean).max(0.0);
                    // Update running statistics.
                    let m = self.momentum as f64;
                    let rm = self.running_mean.as_mut_slice();
                    rm[ci] = ((1.0 - m) * rm[ci] as f64 + m * mean) as f32;
                    let rv = self.running_var.as_mut_slice();
                    rv[ci] = ((1.0 - m) * rv[ci] as f64 + m * var) as f32;
                    (mean as f32, var as f32)
                }
                Mode::Eval => (
                    self.running_mean.as_slice()[ci],
                    self.running_var.as_slice()[ci],
                ),
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.as_slice()[ci];
            let b = self.beta.value.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for k in base..base + plane {
                    let xh = (src[k] - mean) * inv_std;
                    xhat.as_mut_slice()[k] = xh;
                    out.as_mut_slice()[k] = g * xh + b;
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(BnCache {
                xhat,
                inv_std: inv_stds,
                input_shape: x.shape().to_vec(),
            });
        }
        Ok(out)
    }

    /// Backward pass (training-mode statistics).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if called before a training-mode `forward` or
    /// on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, ShapeError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| ShapeError::new("batchnorm2d backward called before train forward"))?;
        if grad_out.shape() != cache.input_shape.as_slice() {
            return Err(ShapeError::mismatch(
                "batchnorm2d backward",
                &cache.input_shape,
                grad_out.shape(),
            ));
        }
        let (n, c, h, w) = (
            cache.input_shape[0],
            cache.input_shape[1],
            cache.input_shape[2],
            cache.input_shape[3],
        );
        let plane = h * w;
        let count = (n * plane) as f64;
        let dy = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let mut dx = Tensor::zeros(grad_out.shape());
        for ci in 0..c {
            // Reductions over the channel.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for k in base..base + plane {
                    sum_dy += dy[k] as f64;
                    sum_dy_xhat += (dy[k] as f64) * (xh[k] as f64);
                }
            }
            self.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat as f32;
            self.beta.grad.as_mut_slice()[ci] += sum_dy as f32;
            let g = self.gamma.value.as_slice()[ci] as f64;
            let inv_std = cache.inv_std[ci] as f64;
            let mean_dy = sum_dy / count;
            let mean_dy_xhat = sum_dy_xhat / count;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for k in base..base + plane {
                    let v =
                        g * inv_std * ((dy[k] as f64) - mean_dy - (xh[k] as f64) * mean_dy_xhat);
                    dx.as_mut_slice()[k] = v as f32;
                }
            }
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_grad, probe_loss, rand_tensor};

    #[test]
    fn train_forward_normalises() {
        let mut bn = BatchNorm2d::new(2);
        let x = rand_tensor(&[4, 2, 3, 3], 1);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ~0, var ~1.
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for hy in 0..3 {
                    for wx in 0..3 {
                        vals.push(y.get(&[ni, ci, hy, wx]).unwrap() as f64);
                    }
                }
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Before any training step running stats are (0, 1): eval is identity
        // (up to eps) with default gamma/beta.
        let x = rand_tensor(&[2, 1, 2, 2], 3);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::filled(&[2, 1, 2, 2], 10.0);
        bn.forward(&x, Mode::Train).unwrap();
        assert!(bn.running_mean.as_slice()[0] > 0.9); // 0.1 * 10
        assert!(bn.running_var.as_slice()[0] < 1.0); // decayed toward 0
    }

    #[test]
    fn shape_checked() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 2, 2]), Mode::Train)
            .is_err());
        assert!(bn.backward(&Tensor::zeros(&[1, 3, 2, 2])).is_err());
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let shape = [2, 2, 2, 2];
        let x = rand_tensor(&shape, 7);
        let probe = rand_tensor(&shape, 8);
        let mut bn = BatchNorm2d::new(2);
        bn.forward(&x, Mode::Train).unwrap();
        let dx = bn.backward(&probe).unwrap();
        let mut eval = |vals: &[f32]| {
            let mut b = BatchNorm2d::new(2);
            let xi = Tensor::from_vec(vals.to_vec(), &shape).unwrap();
            let out = b.forward(&xi, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval, x.as_slice(), dx.as_slice(), 1e-3, 5e-2);
    }

    #[test]
    fn gamma_beta_gradients_match_numeric() {
        let shape = [2, 2, 2, 2];
        let x = rand_tensor(&shape, 9);
        let probe = rand_tensor(&shape, 10);
        let mut bn = BatchNorm2d::new(2);
        bn.forward(&x, Mode::Train).unwrap();
        bn.backward(&probe).unwrap();
        let g0 = bn.gamma.value.as_slice().to_vec();
        let ganalytic = bn.gamma.grad.as_slice().to_vec();
        let mut eval_gamma = |vals: &[f32]| {
            let mut b = BatchNorm2d::new(2);
            b.gamma.value.as_mut_slice().copy_from_slice(vals);
            let out = b.forward(&x, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval_gamma, &g0, &ganalytic, 1e-3, 2e-2);

        let b0 = bn.beta.value.as_slice().to_vec();
        let banalytic = bn.beta.grad.as_slice().to_vec();
        let mut eval_beta = |vals: &[f32]| {
            let mut b = BatchNorm2d::new(2);
            b.beta.value.as_mut_slice().copy_from_slice(vals);
            let out = b.forward(&x, Mode::Train).unwrap();
            probe_loss(&out, &probe)
        };
        check_grad(&mut eval_beta, &b0, &banalytic, 1e-3, 2e-2);
    }
}
