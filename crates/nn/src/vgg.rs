//! VGG11 and VGG16 model builders for 32×32 inputs (the CIFAR geometry used
//! by the paper), with a width multiplier for CPU-scale experiments.

use crate::layers::{BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU};
use crate::{Layer, Sequential};

/// Which VGG variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggVariant {
    /// VGG11: 8 conv layers.
    Vgg11,
    /// VGG16: 13 conv layers.
    Vgg16,
}

impl VggVariant {
    /// The channel plan; `None` denotes a 2×2 max-pool.
    fn plan(self) -> &'static [Option<usize>] {
        match self {
            VggVariant::Vgg11 => &[
                Some(64),
                None,
                Some(128),
                None,
                Some(256),
                Some(256),
                None,
                Some(512),
                Some(512),
                None,
                Some(512),
                Some(512),
                None,
            ],
            VggVariant::Vgg16 => &[
                Some(64),
                Some(64),
                None,
                Some(128),
                Some(128),
                None,
                Some(256),
                Some(256),
                Some(256),
                None,
                Some(512),
                Some(512),
                Some(512),
                None,
                Some(512),
                Some(512),
                Some(512),
                None,
            ],
        }
    }

    /// Number of convolution layers.
    pub fn conv_count(self) -> usize {
        self.plan().iter().filter(|p| p.is_some()).count()
    }
}

impl std::fmt::Display for VggVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VggVariant::Vgg11 => write!(f, "VGG11"),
            VggVariant::Vgg16 => write!(f, "VGG16"),
        }
    }
}

/// Builder for VGG models ([C-BUILDER]).
///
/// # Example
///
/// ```
/// use xbar_nn::vgg::{VggConfig, VggVariant};
///
/// let model = VggConfig::new(VggVariant::Vgg16, 100)
///     .width_multiplier(0.25)
///     .build(7);
/// assert!(!model.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VggConfig {
    variant: VggVariant,
    num_classes: usize,
    width: f64,
    in_channels: usize,
    batch_norm: bool,
    classifier_dropout: f32,
}

impl VggConfig {
    /// Starts a config for the given variant and class count.
    pub fn new(variant: VggVariant, num_classes: usize) -> Self {
        Self {
            variant,
            num_classes,
            width: 1.0,
            in_channels: 3,
            batch_norm: true,
            classifier_dropout: 0.0,
        }
    }

    /// Scales every channel count by `width` (clamped to at least 8
    /// channels). `1.0` is the paper-scale model; the experiment harness
    /// defaults to `0.25` so training finishes in CPU minutes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= 1`.
    pub fn width_multiplier(mut self, width: f64) -> Self {
        assert!(width > 0.0 && width <= 1.0, "width must be in (0, 1]");
        self.width = width;
        self
    }

    /// Sets the number of input channels (default 3).
    pub fn in_channels(mut self, in_channels: usize) -> Self {
        self.in_channels = in_channels;
        self
    }

    /// Enables or disables batch normalisation (default on).
    pub fn batch_norm(mut self, enabled: bool) -> Self {
        self.batch_norm = enabled;
        self
    }

    /// Inserts inverted dropout with probability `p` before the classifier
    /// (the original VGG head used `p = 0.5`; default off, matching the
    /// compact CIFAR variant the experiments train).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn classifier_dropout(mut self, p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        self.classifier_dropout = p;
        self
    }

    /// The variant being built.
    pub fn variant(&self) -> VggVariant {
        self.variant
    }

    fn scaled(&self, channels: usize) -> usize {
        ((channels as f64 * self.width).round() as usize).max(8)
    }

    /// Builds the model with deterministic per-layer seeds derived from
    /// `seed`.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut layers = Vec::new();
        let mut in_c = self.in_channels;
        let mut layer_seed = seed;
        for step in self.variant.plan() {
            match step {
                Some(channels) => {
                    let out_c = self.scaled(*channels);
                    layers.push(Layer::Conv2d(Conv2d::new(in_c, out_c, 3, 1, 1, layer_seed)));
                    layer_seed = layer_seed.wrapping_add(0x9E37_79B9);
                    if self.batch_norm {
                        layers.push(Layer::BatchNorm2d(BatchNorm2d::new(out_c)));
                    }
                    layers.push(Layer::ReLU(ReLU::new()));
                    in_c = out_c;
                }
                None => layers.push(Layer::MaxPool2d(MaxPool2d::new(2, 2))),
            }
        }
        // After five 2x2 pools a 32x32 input is 1x1, so the classifier input
        // is exactly the final channel count.
        layers.push(Layer::Flatten(Flatten::new()));
        if self.classifier_dropout > 0.0 {
            layers.push(Layer::Dropout(Dropout::new(
                self.classifier_dropout,
                layer_seed ^ 0xD80,
            )));
        }
        layers.push(Layer::Linear(Linear::new(
            in_c,
            self.num_classes,
            layer_seed,
        )));
        Sequential::new(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use xbar_tensor::Tensor;

    #[test]
    fn conv_counts_match_the_architecture() {
        assert_eq!(VggVariant::Vgg11.conv_count(), 8);
        assert_eq!(VggVariant::Vgg16.conv_count(), 13);
    }

    #[test]
    fn vgg11_forward_shape() {
        let mut m = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(1);
        let y = m
            .forward(&Tensor::zeros(&[2, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn vgg16_forward_shape() {
        let mut m = VggConfig::new(VggVariant::Vgg16, 100)
            .width_multiplier(0.125)
            .build(2);
        let y = m
            .forward(&Tensor::zeros(&[1, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[1, 100]);
    }

    #[test]
    fn weighted_layers_count() {
        let m = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(3);
        // 8 conv + 1 linear.
        assert_eq!(m.weighted_layer_indices().len(), 9);
        let m = VggConfig::new(VggVariant::Vgg16, 10)
            .width_multiplier(0.125)
            .build(3);
        assert_eq!(m.weighted_layer_indices().len(), 14);
    }

    #[test]
    fn width_multiplier_shrinks_model() {
        let mut full = VggConfig::new(VggVariant::Vgg11, 10).build(4);
        let mut small = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.25)
            .build(4);
        assert!(small.num_params() < full.num_params() / 8);
    }

    #[test]
    fn full_width_vgg11_has_expected_first_conv() {
        let m = VggConfig::new(VggVariant::Vgg11, 10).build(5);
        let conv = m.layers()[0].as_conv().unwrap();
        assert_eq!(conv.out_channels(), 64);
        assert_eq!(conv.in_channels(), 3);
    }

    #[test]
    fn batch_norm_can_be_disabled() {
        let m = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .batch_norm(false)
            .build(6);
        assert!(!m
            .layers()
            .iter()
            .any(|l| matches!(l, Layer::BatchNorm2d(_))));
    }

    #[test]
    fn classifier_dropout_inserts_layer() {
        let m = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .classifier_dropout(0.5)
            .build(6);
        assert!(m.layers().iter().any(|l| matches!(l, Layer::Dropout(_))));
        // Dropout must not change eval-mode output vs the dropout-free net.
        let mut with = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .classifier_dropout(0.5)
            .build(7);
        let mut without = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(7);
        let x = Tensor::ones(&[1, 3, 32, 32]);
        let a = with.forward(&x, Mode::Eval).unwrap();
        let b = without.forward(&x, Mode::Eval).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_zero_panics() {
        let _ = VggConfig::new(VggVariant::Vgg11, 10).width_multiplier(0.0);
    }

    #[test]
    fn deterministic_build() {
        let a = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(11);
        let b = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(11);
        let wa = a.layers()[0].as_conv().unwrap().weight().value.clone();
        let wb = b.layers()[0].as_conv().unwrap().weight().value.clone();
        assert_eq!(wa, wb);
    }
}
