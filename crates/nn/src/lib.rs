//! # xbar-nn
//!
//! A from-scratch, CPU-only trainable deep-neural-network library with manual
//! backpropagation, built as the software-DNN substrate for the `xbar-repro`
//! workspace (reproduction of the DATE 2022 crossbar non-ideality paper).
//!
//! The paper trains VGG11 and VGG16 on CIFAR10/CIFAR100 in PyTorch; this
//! crate provides the equivalent machinery:
//!
//! * [`layers`] — `Conv2d`, `Linear`, `BatchNorm2d`, `ReLU`, `MaxPool2d`,
//!   `Flatten`, each with a hand-derived backward pass (validated by
//!   numerical-gradient tests);
//! * [`Sequential`] — a layer container with typed access to the weighted
//!   layers, which the pruning and crossbar-mapping crates traverse;
//! * [`loss`] — softmax cross-entropy;
//! * [`optim`] — SGD with momentum and weight decay;
//! * [`vgg`] — VGG11/VGG16 builders with a width multiplier so the full
//!   pipeline runs on CPU at laptop scale;
//! * [`train`] — training loops with *constraint hooks*: the mechanism by
//!   which structured-pruning masks (pruning at initialisation, Section III
//!   of the paper) and the WCT weight clamp are re-applied after every
//!   optimiser step.
//!
//! # Example
//!
//! ```
//! use xbar_nn::vgg::{VggConfig, VggVariant};
//! use xbar_tensor::Tensor;
//!
//! # fn main() -> Result<(), xbar_tensor::ShapeError> {
//! let mut model = VggConfig::new(VggVariant::Vgg11, 10)
//!     .width_multiplier(0.125)
//!     .build(42);
//! let x = Tensor::zeros(&[2, 3, 32, 32]);
//! let logits = model.forward(&x, xbar_nn::Mode::Eval)?;
//! assert_eq!(logits.shape(), &[2, 10]);
//! # Ok(())
//! # }
//! ```

pub mod arch;
pub mod checkpoint;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod param;
pub mod sequential;
pub mod serialize;
pub mod train;
pub mod vgg;

pub use param::{Param, ParamKind};
pub use sequential::{Layer, Sequential};

/// Forward-pass mode: training (batch statistics) or evaluation (running
/// statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode.
    Train,
    /// Inference mode.
    Eval,
}
