//! Training loops with constraint hooks.
//!
//! The paper's workflow is: structure-prune at initialisation, then train the
//! pruned model (Section III); WCT additionally clamps weights to
//! `[-W_cut, W_cut]` and retrains for 2 epochs (Section VI-B). Both fit the
//! same mechanism: a [`WeightConstraint`] re-applied after every optimiser
//! step, so pruned weights stay exactly zero and clamped weights stay inside
//! the cut-off throughout training.

use crate::loss::softmax_cross_entropy;
use crate::metrics::accuracy;
use crate::optim::{Sgd, SgdConfig};
use crate::{Mode, Sequential};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use xbar_tensor::{ShapeError, Tensor};

/// A constraint re-applied to the model after every optimiser step.
///
/// Implemented by the pruning masks in `xbar-prune` and by the WCT clamp in
/// `xbar-core`.
pub trait WeightConstraint {
    /// Enforces the constraint on the model in place.
    fn apply(&self, model: &mut Sequential);
}

/// A constraint that clamps every synaptic weight to `[-limit, limit]` — the
/// WCT transformation `W = min{|W|, W_cut}·sign(W)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampConstraint {
    /// The cut-off `W_cut`.
    pub limit: f32,
}

impl WeightConstraint for ClampConstraint {
    fn apply(&self, model: &mut Sequential) {
        for p in model.params_mut() {
            if p.kind.is_synaptic() {
                p.value.clamp_symmetric(self.limit);
            }
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser settings at epoch 0.
    pub sgd: SgdConfig,
    /// Multiply the learning rate by this factor at each epoch in
    /// `lr_decay_epochs`.
    pub lr_decay: f32,
    /// Epochs at which the learning rate decays.
    pub lr_decay_epochs: Vec<usize>,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            sgd: SgdConfig::default(),
            lr_decay: 0.5,
            lr_decay_epochs: vec![6, 8],
            seed: 0,
        }
    }
}

/// Progress record for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f64,
    /// Training accuracy over the epoch (running, on training batches).
    pub accuracy: f64,
    /// Learning rate in effect.
    pub lr: f32,
}

/// A labelled dataset view: `[N, C, H, W]` images plus `N` class indices.
#[derive(Debug, Clone, Copy)]
pub struct DataRef<'a> {
    /// Images, `[N, C, H, W]`.
    pub images: &'a Tensor,
    /// Class labels, length `N`.
    pub labels: &'a [usize],
}

impl<'a> DataRef<'a> {
    /// Wraps images and labels, validating that counts agree.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `images` is not 4-D or the label count
    /// differs from the image count.
    pub fn new(images: &'a Tensor, labels: &'a [usize]) -> Result<Self, ShapeError> {
        if images.ndim() != 4 {
            return Err(ShapeError::new(format!(
                "expected [N, C, H, W] images, got {:?}",
                images.shape()
            )));
        }
        if images.shape()[0] != labels.len() {
            return Err(ShapeError::new(format!(
                "{} images but {} labels",
                images.shape()[0],
                labels.len()
            )));
        }
        Ok(Self { images, labels })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies the examples at `indices` into a contiguous batch.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let shape = self.images.shape();
        let example_len: usize = shape[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * example_len);
        let src = self.images.as_slice();
        for &i in indices {
            data.extend_from_slice(&src[i * example_len..(i + 1) * example_len]);
        }
        let mut bshape = shape.to_vec();
        bshape[0] = indices.len();
        let images = Tensor::from_vec(data, &bshape).expect("gather shape is consistent");
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (images, labels)
    }
}

/// Trains `model` on `data`, re-applying `constraint` after every step.
///
/// Returns per-epoch statistics.
///
/// # Errors
///
/// Returns [`ShapeError`] if the model and data shapes are inconsistent.
pub fn train(
    model: &mut Sequential,
    data: DataRef<'_>,
    config: &TrainConfig,
    constraint: Option<&dyn WeightConstraint>,
) -> Result<Vec<EpochStats>, ShapeError> {
    let _train_span = xbar_obs::span!(
        "train",
        epochs = config.epochs,
        examples = data.len(),
        seed = config.seed
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut lr = config.sgd.lr;
    let mut stats = Vec::with_capacity(config.epochs);
    // Constraints (pruning at initialisation) must hold before training too.
    if let Some(c) = constraint {
        c.apply(model);
    }
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..config.epochs {
        let epoch_start = std::time::Instant::now();
        if config.lr_decay_epochs.contains(&epoch) {
            lr *= config.lr_decay;
        }
        let sgd = Sgd::new(SgdConfig { lr, ..config.sgd });
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let (images, labels) = data.gather(chunk);
            model.zero_grad();
            let logits = model.forward(&images, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &labels)?;
            total_loss += out.loss * labels.len() as f64;
            correct += accuracy(&logits, &labels).correct;
            seen += labels.len();
            model.backward(&out.grad)?;
            sgd.step(model);
            if let Some(c) = constraint {
                c.apply(model);
            }
        }
        let epoch_stats = EpochStats {
            epoch,
            loss: total_loss / seen.max(1) as f64,
            accuracy: correct as f64 / seen.max(1) as f64,
            lr,
        };
        xbar_obs::event!(
            "train_epoch",
            epoch = epoch,
            loss = epoch_stats.loss,
            accuracy = epoch_stats.accuracy,
            lr = epoch_stats.lr,
            duration_us = epoch_start.elapsed().as_micros() as u64
        );
        stats.push(epoch_stats);
    }
    Ok(stats)
}

/// Evaluates classification accuracy of `model` on `data` in batches.
///
/// # Errors
///
/// Returns [`ShapeError`] on shape mismatch.
pub fn evaluate(
    model: &mut Sequential,
    data: DataRef<'_>,
    batch_size: usize,
) -> Result<f64, ShapeError> {
    let n = data.len();
    let _eval_span = xbar_obs::span!("evaluate", examples = n);
    if n == 0 {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch_size.max(1)) {
        let (images, labels) = data.gather(chunk);
        let logits = model.forward(&images, Mode::Eval)?;
        correct += accuracy(&logits, &labels).correct;
    }
    Ok(correct as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear};
    use crate::Layer;

    /// Tiny two-class linearly separable dataset on 1x2x2 "images".
    fn toy_data() -> (Tensor, Vec<usize>) {
        let n = 64;
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let v = if class == 0 { 1.0 } else { -1.0 };
            let jitter = ((i * 37) % 10) as f32 / 50.0;
            data.extend_from_slice(&[v + jitter, v, v - jitter, v]);
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 1, 2, 2]).unwrap(), labels)
    }

    fn toy_model() -> Sequential {
        Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4, 2, 3)),
        ])
    }

    #[test]
    fn training_reduces_loss_and_fits_toy_data() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let config = TrainConfig {
            epochs: 20,
            batch_size: 8,
            sgd: SgdConfig {
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            lr_decay: 1.0,
            lr_decay_epochs: vec![],
            seed: 1,
        };
        let stats = train(&mut model, data, &config, None).unwrap();
        assert!(stats.last().unwrap().loss < stats[0].loss);
        let acc = evaluate(&mut model, data, 16).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn clamp_constraint_holds_throughout_training() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let limit = 0.05f32;
        let constraint = ClampConstraint { limit };
        let config = TrainConfig {
            epochs: 5,
            batch_size: 8,
            sgd: SgdConfig {
                lr: 0.5,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            lr_decay: 1.0,
            lr_decay_epochs: vec![],
            seed: 2,
        };
        train(&mut model, data, &config, Some(&constraint)).unwrap();
        let w = &model.layers()[1].as_linear().unwrap().weight().value;
        assert!(w.abs_max() <= limit + 1e-6);
    }

    #[test]
    fn lr_decay_takes_effect() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let config = TrainConfig {
            epochs: 4,
            batch_size: 16,
            sgd: SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
            },
            lr_decay: 0.1,
            lr_decay_epochs: vec![2],
            seed: 3,
        };
        let stats = train(&mut model, data, &config, None).unwrap();
        assert!((stats[1].lr - 0.1).abs() < 1e-7);
        assert!((stats[2].lr - 0.01).abs() < 1e-7);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let config = TrainConfig {
            epochs: 3,
            batch_size: 8,
            seed: 9,
            ..TrainConfig::default()
        };
        let mut a = toy_model();
        let stats_a = train(&mut a, data, &config, None).unwrap();
        let mut b = toy_model();
        let stats_b = train(&mut b, data, &config, None).unwrap();
        for (sa, sb) in stats_a.iter().zip(&stats_b) {
            assert_eq!(sa.loss, sb.loss);
            assert_eq!(sa.accuracy, sb.accuracy);
        }
        let wa = a.layers()[1].as_linear().unwrap().weight().value.clone();
        let wb = b.layers()[1].as_linear().unwrap().weight().value.clone();
        assert_eq!(wa, wb);
    }

    #[test]
    fn evaluation_is_batch_size_independent() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let a = evaluate(&mut model, data, 1).unwrap();
        let b = evaluate(&mut model, data, 7).unwrap();
        let c = evaluate(&mut model, data, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn data_ref_validates() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(DataRef::new(&images, &[0]).is_err());
        let flat = Tensor::zeros(&[2, 4]);
        assert!(DataRef::new(&flat, &[0, 1]).is_err());
    }

    #[test]
    fn gather_picks_requested_examples() {
        let images = Tensor::from_fn(&[3, 1, 1, 2], |i| i as f32);
        let labels = vec![10, 11, 12];
        let data = DataRef::new(&images, &labels).unwrap();
        let (b, l) = data.gather(&[2, 0]);
        assert_eq!(b.shape(), &[2, 1, 1, 2]);
        assert_eq!(b.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(l, vec![12, 10]);
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let images = Tensor::zeros(&[0, 1, 2, 2]);
        let labels: Vec<usize> = vec![];
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        assert_eq!(evaluate(&mut model, data, 4).unwrap(), 0.0);
    }
}
