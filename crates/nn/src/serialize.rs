//! Shared binary tensor-block (de)serialisation.
//!
//! Both the training checkpoint (`crate::checkpoint`) and the mapped-model
//! serving artifact (`xbar_core::artifact`) store model state as the same
//! block: a `u64` tensor count, then per tensor a `u64` element count
//! followed by little-endian `f32` data. This module owns that layout so
//! the two formats cannot drift, and turns short reads into descriptive
//! [`TensorBlockError::Truncated`] errors instead of bare I/O errors.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use xbar_tensor::Tensor;

/// Writes a file crash-safely: the payload goes to a temporary file in the
/// same directory, is flushed and synced, then atomically renamed over
/// `path`. A crash mid-write leaves the previous file (or nothing) in
/// place — never a truncated artifact that a later load would have to
/// reject.
///
/// # Errors
///
/// Propagates I/O errors and whatever the `write` closure returns; the
/// temporary file is removed on failure.
pub fn write_file_atomic<E, F>(path: impl AsRef<Path>, write: F) -> Result<(), E>
where
    E: From<io::Error>,
    F: FnOnce(&mut io::BufWriter<std::fs::File>) -> Result<(), E>,
{
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} has no file name to write to", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut writer = io::BufWriter::new(file);
        write(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Error from reading a tensor block.
#[derive(Debug)]
pub enum TensorBlockError {
    /// Underlying I/O failure (not a short read).
    Io(io::Error),
    /// The data ended early; the message names what was being read.
    Truncated(String),
    /// The block does not fit the destination tensors; the message names
    /// the tensor and the disagreeing sizes.
    Mismatch(String),
}

impl fmt::Display for TensorBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorBlockError::Io(e) => write!(f, "i/o error: {e}"),
            TensorBlockError::Truncated(what) => write!(f, "truncated data: {what}"),
            TensorBlockError::Mismatch(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for TensorBlockError {}

/// Reads exactly `buf.len()` bytes, reporting a short read as
/// [`TensorBlockError::Truncated`] with `what` as context.
pub fn read_exact_or_truncated<R: Read>(
    mut reader: R,
    buf: &mut [u8],
    what: impl FnOnce() -> String,
) -> Result<(), TensorBlockError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TensorBlockError::Truncated(format!("{} (wanted {} bytes)", what(), buf.len()))
        } else {
            TensorBlockError::Io(e)
        }
    })
}

/// Writes a tensor block: count, then each tensor's length and data.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_tensor_block<'a, W: Write>(
    mut writer: W,
    tensors: impl ExactSizeIterator<Item = &'a Tensor>,
) -> io::Result<()> {
    writer.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for t in tensors {
        writer.write_all(&(t.len() as u64).to_le_bytes())?;
        let mut bytes = Vec::with_capacity(4 * t.len());
        for &v in t.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        writer.write_all(&bytes)?;
    }
    Ok(())
}

/// Reads a tensor block into `slots`, validating the tensor count and each
/// tensor's element count against the destination.
///
/// # Errors
///
/// * [`TensorBlockError::Io`] on genuine read failure;
/// * [`TensorBlockError::Truncated`] if the data ends early;
/// * [`TensorBlockError::Mismatch`] if counts or lengths disagree.
pub fn read_tensor_block_into<R: Read>(
    mut reader: R,
    slots: &mut [&mut Tensor],
) -> Result<(), TensorBlockError> {
    let mut len8 = [0u8; 8];
    read_exact_or_truncated(&mut reader, &mut len8, || "reading tensor count".into())?;
    let count = u64::from_le_bytes(len8) as usize;
    if count != slots.len() {
        return Err(TensorBlockError::Mismatch(format!(
            "{count} saved tensors vs {} in model",
            slots.len()
        )));
    }
    for (idx, slot) in slots.iter_mut().enumerate() {
        read_exact_or_truncated(&mut reader, &mut len8, || {
            format!("reading length of tensor {idx}")
        })?;
        let len = u64::from_le_bytes(len8) as usize;
        if len != slot.len() {
            return Err(TensorBlockError::Mismatch(format!(
                "tensor {idx}: {len} saved values vs {} in model",
                slot.len()
            )));
        }
        let mut bytes = vec![0u8; 4 * len];
        read_exact_or_truncated(&mut reader, &mut bytes, || {
            format!("reading data of tensor {idx} ({len} values)")
        })?;
        for (dst, chunk) in slot.as_mut_slice().iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = f32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensors() -> Vec<Tensor> {
        vec![
            Tensor::from_fn(&[2, 3], |i| i as f32),
            Tensor::from_fn(&[4], |i| -(i as f32)),
        ]
    }

    fn write(ts: &[Tensor]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_tensor_block(&mut buf, ts.iter()).unwrap();
        buf
    }

    #[test]
    fn round_trip() {
        let src = tensors();
        let buf = write(&src);
        let mut dst = vec![Tensor::zeros(&[2, 3]), Tensor::zeros(&[4])];
        let mut slots: Vec<&mut Tensor> = dst.iter_mut().collect();
        read_tensor_block_into(buf.as_slice(), &mut slots).unwrap();
        assert_eq!(src, dst);
    }

    #[test]
    fn truncation_is_descriptive() {
        let buf = write(&tensors());
        let cut = &buf[..buf.len() - 3];
        let mut dst = [Tensor::zeros(&[2, 3]), Tensor::zeros(&[4])];
        let mut slots: Vec<&mut Tensor> = dst.iter_mut().collect();
        let err = read_tensor_block_into(cut, &mut slots).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("tensor 1"), "{msg}");
    }

    #[test]
    fn length_mismatch_names_the_tensor() {
        let buf = write(&tensors());
        let mut dst = [Tensor::zeros(&[2, 3]), Tensor::zeros(&[5])];
        let mut slots: Vec<&mut Tensor> = dst.iter_mut().collect();
        let err = read_tensor_block_into(buf.as_slice(), &mut slots).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tensor 1") && msg.contains('5'), "{msg}");
    }

    #[test]
    fn count_mismatch_reported() {
        let buf = write(&tensors());
        let mut dst = [Tensor::zeros(&[2, 3])];
        let mut slots: Vec<&mut Tensor> = dst.iter_mut().collect();
        let err = read_tensor_block_into(buf.as_slice(), &mut slots).unwrap_err();
        assert!(matches!(err, TensorBlockError::Mismatch(_)), "{err}");
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("xbar_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        write_file_atomic::<io::Error, _>(&path, |w| w.write_all(b"first")).unwrap();
        write_file_atomic::<io::Error, _>(&path, |w| w.write_all(b"second")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_atomic_write_preserves_the_old_file() {
        let dir = std::env::temp_dir().join(format!("xbar_atomic_fail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        write_file_atomic::<io::Error, _>(&path, |w| w.write_all(b"good")).unwrap();
        let err = write_file_atomic::<io::Error, _>(&path, |w| {
            w.write_all(b"partial garbage")?;
            Err(io::Error::other("simulated crash mid-write"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("simulated crash"));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"good",
            "interrupted write must not clobber the previous file"
        );
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
