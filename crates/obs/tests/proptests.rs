//! Property-based tests for the log-bucketed histogram: quantile accuracy
//! against exact sorted-sample quantiles, and merge/serialisation
//! invariants.

use proptest::prelude::*;
use xbar_obs::hdr::LogHistogram;

/// Sample vectors spanning exact (linear) buckets, mid-range, and large
/// values, so quantiles cross every bucket-math regime.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0u64..64,
            3 => 64u64..100_000,
            2 => 100_000u64..10_000_000_000,
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_one_bucket_width_of_exact(mut values in samples(), q in 0.0f64..=1.0) {
        let mut h = LogHistogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
        let exact = values[rank];
        let est = h.quantile(q);
        // The estimate is the bucket's inclusive upper edge (clamped to the
        // observed max), so it never undershoots and overshoots by less
        // than one bucket width.
        prop_assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
        prop_assert!(
            est - exact <= h.bucket_width(exact),
            "q={q}: estimate {est} beyond one bucket width {} of exact {exact}",
            h.bucket_width(exact)
        );
    }

    #[test]
    fn count_sum_min_max_are_exact(values in samples()) {
        let mut h = LogHistogram::default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), *values.iter().min().expect("non-empty"));
        prop_assert_eq!(h.max(), *values.iter().max().expect("non-empty"));
    }

    #[test]
    fn merge_equals_combined_recording(a in samples(), b in samples()) {
        let mut ha = LogHistogram::default();
        let mut hb = LogHistogram::default();
        let mut hall = LogHistogram::default();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb).expect("same resolution");
        prop_assert_eq!(ha, hall);
    }

    #[test]
    fn nonzero_buckets_round_trip(values in samples()) {
        let mut h = LogHistogram::default();
        for &v in &values {
            h.record(v);
        }
        let restored = LogHistogram::restore(
            h.sub_bits(),
            &h.nonzero_buckets(),
            h.sum(),
            h.min(),
            h.max(),
        ).expect("edges produced by nonzero_buckets are valid");
        prop_assert_eq!(restored, h);
    }
}
