//! Chrome Trace Event exporter: renders the span tracer's records as a
//! JSON document loadable in `chrome://tracing` or [Perfetto]
//! (ui.perfetto.dev), one lane per traced thread.
//!
//! The format is the "JSON Array Format" wrapped in an object:
//! `{"traceEvents": [...]}`. Spans become `ph: "X"` complete events
//! (timestamps are already microseconds from the process epoch, which is
//! exactly the unit the format wants), events become `ph: "i"` instants,
//! and each thread gets a `ph: "M"` metadata record naming its lane so
//! suite workers show up as `worker 0`, `worker 1`, … rather than bare
//! thread ids.
//!
//! [Perfetto]: https://perfetto.dev

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::json::{obj, Json};
use crate::sink::fields_to_json;
use crate::trace::{self, EventRecord, SpanRecord};

/// Converts explicit span/event lists into a Chrome trace document.
/// `lane_names` overrides the display name of specific thread lanes
/// (missing threads fall back to `lane <id>`).
pub fn chrome_trace(
    spans: &[SpanRecord],
    events: &[EventRecord],
    lane_names: &BTreeMap<u64, String>,
) -> Json {
    let mut records: Vec<Json> = Vec::new();
    let mut threads: Vec<u64> = spans
        .iter()
        .map(|s| s.thread)
        .chain(events.iter().map(|e| e.thread))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    for &tid in &threads {
        let name = lane_names
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("lane {tid}"));
        records.push(obj(vec![
            ("ph", Json::Str("M".into())),
            ("name", Json::Str("thread_name".into())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(tid as f64)),
            ("args", obj(vec![("name", Json::Str(name))])),
        ]));
    }
    for span in spans {
        records.push(obj(vec![
            ("ph", Json::Str("X".into())),
            ("name", Json::Str(span.name.into())),
            ("cat", Json::Str("span".into())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(span.thread as f64)),
            ("ts", Json::Num(span.start_us as f64)),
            ("dur", Json::Num(span.duration_us as f64)),
            ("args", fields_to_json(&span.fields)),
        ]));
    }
    for event in events {
        records.push(obj(vec![
            ("ph", Json::Str("i".into())),
            ("name", Json::Str(event.name.into())),
            ("cat", Json::Str("event".into())),
            // Thread-scoped instant: renders as a tick on its lane.
            ("s", Json::Str("t".into())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(event.thread as f64)),
            ("ts", Json::Num(event.at_us as f64)),
            ("args", fields_to_json(&event.fields)),
        ]));
    }
    obj(vec![
        ("traceEvents", Json::Arr(records)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

/// Renders everything in the global trace buffer as a Chrome trace
/// document (compact JSON text).
pub fn render_global(lane_names: &BTreeMap<u64, String>) -> String {
    chrome_trace(&trace::all_spans(), &trace::all_events(), lane_names).to_json()
}

/// Writes the global trace buffer as a Chrome trace file, creating parent
/// directories. Load the result in `chrome://tracing` or ui.perfetto.dev.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    lane_names: &BTreeMap<u64, String>,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_global(lane_names).as_bytes())?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FieldValue;

    fn sample_span(name: &'static str, thread: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name,
            fields: vec![("layer", FieldValue::U64(3))],
            thread,
            depth: 0,
            start_us: start,
            duration_us: dur,
        }
    }

    #[test]
    fn trace_document_has_expected_shape() {
        let spans = [
            sample_span("map", 0, 10, 500),
            sample_span("solve", 1, 60, 120),
        ];
        let events = [EventRecord {
            name: "cache_loaded",
            fields: vec![],
            thread: 1,
            depth: 0,
            at_us: 70,
        }];
        let mut lanes = BTreeMap::new();
        lanes.insert(1, "worker 1".to_string());
        let doc = chrome_trace(&spans, &events, &lanes);
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread_name metadata + 2 spans + 1 instant.
        assert_eq!(items.len(), 5);
        let metas: Vec<_> = items
            .iter()
            .filter(|r| r.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert!(metas
            .iter()
            .any(|m| m.get("args").unwrap().get("name").unwrap().as_str() == Some("worker 1")));
        assert!(metas
            .iter()
            .any(|m| m.get("args").unwrap().get("name").unwrap().as_str() == Some("lane 0")));
        let complete: Vec<_> = items
            .iter()
            .filter(|r| r.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        let map = complete
            .iter()
            .find(|r| r.get("name").unwrap().as_str() == Some("map"))
            .unwrap();
        assert_eq!(map.get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(map.get("dur").unwrap().as_u64(), Some(500));
        assert_eq!(
            map.get("args").unwrap().get("layer").unwrap().as_u64(),
            Some(3)
        );
        let instant = items
            .iter()
            .find(|r| r.get("ph").unwrap().as_str() == Some("i"))
            .unwrap();
        assert_eq!(instant.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(instant.get("ts").unwrap().as_u64(), Some(70));
    }

    #[test]
    fn output_parses_back_as_json() {
        let spans = [sample_span("phase", 0, 0, 42)];
        let text = chrome_trace(&spans, &[], &BTreeMap::new()).to_json();
        let back = Json::parse(&text).expect("valid JSON");
        assert!(back.get("traceEvents").unwrap().as_arr().is_some());
    }

    #[test]
    fn write_creates_parents_and_global_render_is_json() {
        let dir = std::env::temp_dir().join(format!("xbar-chrome-test-{}", std::process::id()));
        let path = dir.join("nested/trace.json");
        write_chrome_trace(&path, &BTreeMap::new()).expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        Json::parse(&text).expect("file parses");
        std::fs::remove_dir_all(&dir).ok();
    }
}
