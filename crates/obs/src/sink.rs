//! Output sinks: the live stderr progress reporter and the JSONL
//! run-manifest writer behind `--trace-out`.
//!
//! # JSONL schema
//!
//! One JSON object per line; every line has a `"type"` member:
//!
//! | type        | members                                                              |
//! |-------------|----------------------------------------------------------------------|
//! | `manifest`  | `bin`, `seed`, `scale`, `config` (string→string object), `elapsed_us` |
//! | `span`      | `name`, `thread`, `depth`, `start_us`, `duration_us`, `fields`        |
//! | `event`     | `name`, `thread`, `depth`, `at_us`, `fields`                          |
//! | `counter`   | `name`, `value`                                                       |
//! | `gauge`     | `name`, `value`                                                       |
//! | `histogram` | `name`, `bounds`, `counts`, `sum`, `min`, `max`, `count`              |
//! | `loghistogram` | `name`, `sub_bits`, `buckets` (array of `[edge, count]`), `sum`, `min`, `max`, `count` |
//! | `summary`   | `phases`: array of `{name, total_us, count}`                          |
//!
//! `fields` is an object with the `key = value` pairs from the `span!` /
//! `event!` call site. Timestamps are microseconds since the process trace
//! epoch. The `summary` line aggregates depth-0 spans by name, in first-
//! start order — the same data the phase-timing table prints.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::hdr::LogHistogram;
use crate::json::{obj, Json};
use crate::metrics::{Histogram, MetricsSnapshot};
use crate::trace::{self, FieldValue};

/// Enables/disables live progress lines on stderr (events and top-level
/// span completions). Off by default.
pub fn stderr_echo(on: bool) {
    trace::set_stderr_echo(on);
}

/// Identity of a run, written as the JSONL `manifest` line.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Binary or scenario name (`table1`, `fig3`, …).
    pub bin: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Scale preset name (`smoke`, `quick`, `full`).
    pub scale: String,
    /// Free-form config pairs that make the run reconstructible
    /// (git-describable build, sparsity, crossbar sizes, …).
    pub config: Vec<(String, String)>,
}

impl RunInfo {
    pub fn new(bin: impl Into<String>) -> Self {
        RunInfo {
            bin: bin.into(),
            ..Default::default()
        }
    }

    pub fn config(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.config.push((key.into(), value.to_string()));
        self
    }
}

/// Total time and completion count of one top-level phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    pub name: &'static str,
    pub total_us: u64,
    pub count: u64,
}

/// Aggregates depth-0 spans by name, in order of first start. This is the
/// data behind both the `summary` JSONL line and the phase-timing table.
pub fn phase_summaries() -> Vec<PhaseSummary> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut spans = trace::all_spans();
    spans.sort_by_key(|s| s.start_us);
    for span in spans.iter().filter(|s| s.depth == 0) {
        if !agg.contains_key(span.name) {
            order.push(span.name);
        }
        let entry = agg.entry(span.name).or_insert((0, 0));
        entry.0 += span.duration_us;
        entry.1 += 1;
    }
    order
        .into_iter()
        .map(|name| {
            let (total_us, count) = agg[name];
            PhaseSummary {
                name,
                total_us,
                count,
            }
        })
        .collect()
}

fn field_to_json(value: &FieldValue) -> Json {
    match value {
        FieldValue::U64(v) => Json::Num(*v as f64),
        FieldValue::I64(v) => Json::Num(*v as f64),
        FieldValue::F64(v) => Json::Num(*v),
        FieldValue::Bool(v) => Json::Bool(*v),
        FieldValue::Str(v) => Json::Str(v.clone()),
    }
}

pub(crate) fn fields_to_json(fields: &[(&'static str, FieldValue)]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), field_to_json(v)))
            .collect(),
    )
}

fn histogram_to_json(name: &str, h: &Histogram) -> Json {
    obj(vec![
        ("type", Json::Str("histogram".into())),
        ("name", Json::Str(name.into())),
        (
            "bounds",
            Json::Arr(h.bounds().iter().map(|&b| Json::Num(b)).collect()),
        ),
        (
            "counts",
            Json::Arr(h.counts().iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("sum", Json::Num(h.sum())),
        (
            "min",
            if h.count() == 0 {
                Json::Null
            } else {
                Json::Num(h.min())
            },
        ),
        (
            "max",
            if h.count() == 0 {
                Json::Null
            } else {
                Json::Num(h.max())
            },
        ),
        ("count", Json::Num(h.count() as f64)),
    ])
}

fn log_histogram_to_json(name: &str, h: &LogHistogram) -> Json {
    obj(vec![
        ("type", Json::Str("loghistogram".into())),
        ("name", Json::Str(name.into())),
        ("sub_bits", Json::Num(h.sub_bits() as f64)),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .iter()
                    .map(|&(edge, count)| {
                        Json::Arr(vec![Json::Num(edge as f64), Json::Num(count as f64)])
                    })
                    .collect(),
            ),
        ),
        ("sum", Json::Num(h.sum() as f64)),
        (
            "min",
            if h.is_empty() {
                Json::Null
            } else {
                Json::Num(h.min() as f64)
            },
        ),
        (
            "max",
            if h.is_empty() {
                Json::Null
            } else {
                Json::Num(h.max() as f64)
            },
        ),
        ("count", Json::Num(h.count() as f64)),
    ])
}

/// Renders the full trace — manifest, spans, events, metrics, summary — as
/// JSONL text. [`write_jsonl`] wraps this with file output.
pub fn render_jsonl(run: &RunInfo) -> String {
    let mut lines: Vec<Json> = Vec::new();
    lines.push(obj(vec![
        ("type", Json::Str("manifest".into())),
        ("bin", Json::Str(run.bin.clone())),
        ("seed", Json::Num(run.seed as f64)),
        ("scale", Json::Str(run.scale.clone())),
        (
            "config",
            Json::Obj(
                run.config
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
        (
            "elapsed_us",
            Json::Num(trace::epoch().elapsed().as_micros() as f64),
        ),
    ]));
    for span in trace::all_spans() {
        lines.push(obj(vec![
            ("type", Json::Str("span".into())),
            ("name", Json::Str(span.name.into())),
            ("thread", Json::Num(span.thread as f64)),
            ("depth", Json::Num(span.depth as f64)),
            ("start_us", Json::Num(span.start_us as f64)),
            ("duration_us", Json::Num(span.duration_us as f64)),
            ("fields", fields_to_json(&span.fields)),
        ]));
    }
    for event in trace::all_events() {
        lines.push(obj(vec![
            ("type", Json::Str("event".into())),
            ("name", Json::Str(event.name.into())),
            ("thread", Json::Num(event.thread as f64)),
            ("depth", Json::Num(event.depth as f64)),
            ("at_us", Json::Num(event.at_us as f64)),
            ("fields", fields_to_json(&event.fields)),
        ]));
    }
    let metrics = crate::metrics::snapshot();
    for (name, value) in &metrics.counters {
        lines.push(obj(vec![
            ("type", Json::Str("counter".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*value as f64)),
        ]));
    }
    for (name, value) in &metrics.gauges {
        lines.push(obj(vec![
            ("type", Json::Str("gauge".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(*value)),
        ]));
    }
    for (name, histogram) in &metrics.histograms {
        lines.push(histogram_to_json(name, histogram));
    }
    for (name, histogram) in &metrics.log_histograms {
        lines.push(log_histogram_to_json(name, histogram));
    }
    lines.push(obj(vec![
        ("type", Json::Str("summary".into())),
        (
            "phases",
            Json::Arr(
                phase_summaries()
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("name", Json::Str(p.name.into())),
                            ("total_us", Json::Num(p.total_us as f64)),
                            ("count", Json::Num(p.count as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_json());
        out.push('\n');
    }
    out
}

/// Writes the full trace as JSONL to `path`, creating parent directories.
pub fn write_jsonl(path: impl AsRef<Path>, run: &RunInfo) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_jsonl(run).as_bytes())?;
    file.flush()
}

/// Parses the metric lines out of JSONL text back into a
/// [`MetricsSnapshot`] — the inverse of the metric part of
/// [`render_jsonl`], used by round-trip tests and downstream tooling.
pub fn parse_jsonl_metrics(text: &str) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing type", lineno + 1))?;
        let name = || -> Result<String, String> {
            doc.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing name", lineno + 1))
        };
        match kind {
            "counter" => {
                let value = doc
                    .get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: bad counter value", lineno + 1))?;
                snap.counters.insert(name()?, value);
            }
            "gauge" => {
                let value = doc
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: bad gauge value", lineno + 1))?;
                snap.gauges.insert(name()?, value);
            }
            "histogram" => {
                let bounds: Vec<f64> = doc
                    .get("bounds")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {}: missing bounds", lineno + 1))?
                    .iter()
                    .filter_map(Json::as_f64)
                    .collect();
                let counts: Vec<u64> = doc
                    .get("counts")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {}: missing counts", lineno + 1))?
                    .iter()
                    .filter_map(Json::as_u64)
                    .collect();
                if counts.len() != bounds.len() + 1 {
                    return Err(format!("line {}: counts/bounds mismatch", lineno + 1));
                }
                let mut h = Histogram::new(&bounds);
                // Reconstruct exact counts/sum/min/max via a synthetic
                // replay: record a representative per bucket, then fix up
                // the statistics from the serialised truth.
                h.restore(
                    &counts,
                    doc.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                    doc.get("min").and_then(Json::as_f64),
                    doc.get("max").and_then(Json::as_f64),
                );
                snap.histograms.insert(name()?, h);
            }
            "loghistogram" => {
                let sub_bits = doc
                    .get("sub_bits")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: missing sub_bits", lineno + 1))?;
                let mut buckets = Vec::new();
                for pair in doc
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {}: missing buckets", lineno + 1))?
                {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("line {}: bad bucket pair", lineno + 1))?;
                    let edge = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("line {}: bad bucket edge", lineno + 1))?;
                    let count = pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("line {}: bad bucket count", lineno + 1))?;
                    buckets.push((edge, count));
                }
                let h = LogHistogram::restore(
                    sub_bits as u32,
                    &buckets,
                    doc.get("sum").and_then(Json::as_u64).unwrap_or(0) as u128,
                    doc.get("min").and_then(Json::as_u64).unwrap_or(u64::MAX),
                    doc.get("max").and_then(Json::as_u64).unwrap_or(0),
                )
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                snap.log_histograms.insert(name()?, h);
            }
            _ => {}
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, span};

    #[test]
    fn jsonl_metrics_round_trip() {
        metrics::counter_add("test/sink/tiles", 7);
        metrics::gauge_set("test/sink/nf", 1.4375);
        for v in [3.0, 9.0, 150.0] {
            metrics::histogram_record("test/sink/iters", v, &[4.0, 16.0, 64.0]);
        }
        for us in [5u64, 800, 42_000] {
            metrics::latency_record_us("test/sink/lat_us", us);
        }
        let run = RunInfo::new("unit")
            .config("sparsity", 0.8)
            .config("git", "deadbeef");
        let text = render_jsonl(&run);
        // Manifest first, summary last.
        let first = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("manifest"));
        assert_eq!(first.get("bin").unwrap().as_str(), Some("unit"));
        assert_eq!(
            first
                .get("config")
                .unwrap()
                .get("sparsity")
                .unwrap()
                .as_str(),
            Some("0.8")
        );
        let last = Json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("summary"));

        let snap = parse_jsonl_metrics(&text).expect("parses back");
        let full = metrics::snapshot();
        assert_eq!(
            snap.counters["test/sink/tiles"],
            full.counters["test/sink/tiles"]
        );
        assert_eq!(snap.gauges["test/sink/nf"], full.gauges["test/sink/nf"]);
        assert_eq!(
            snap.histograms["test/sink/iters"],
            full.histograms["test/sink/iters"]
        );
        assert_eq!(
            snap.log_histograms["test/sink/lat_us"],
            full.log_histograms["test/sink/lat_us"]
        );
    }

    #[test]
    fn write_jsonl_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!(
            "xbar-obs-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let path = dir.join("nested/trace.jsonl");
        write_jsonl(&path, &RunInfo::new("unit")).expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.lines().count() >= 2, "manifest + summary at least");
        for line in text.lines() {
            Json::parse(line).expect("every line parses");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_summary_aggregates_repeated_phases() {
        // Runs on its own thread names; global state shared with other
        // tests, so only assert on our own span names.
        {
            let _a = span!("test_sink_phase_x");
        }
        {
            let _b = span!("test_sink_phase_x");
        }
        let phases = phase_summaries();
        let x = phases
            .iter()
            .find(|p| p.name == "test_sink_phase_x")
            .expect("phase aggregated");
        assert!(x.count >= 2);
    }
}
