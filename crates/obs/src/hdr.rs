//! Log-bucketed histogram (HDR-style) for latency metrics.
//!
//! Fixed-bound histograms need their bounds chosen per metric and go blind
//! outside them; a log-bucketed histogram covers the whole `u64` range with
//! a bounded relative error instead. Each power-of-two octave is split into
//! `2^sub_bits` equal-width sub-buckets, so the worst-case relative error
//! of any reconstructed value is `2^-sub_bits` (~3% at the default
//! `sub_bits = 5`). Values below `2^sub_bits` get exact width-1 buckets.
//!
//! Values are recorded as `u64` (microseconds for latency metrics). The
//! count array grows lazily to the highest octave seen, so an idle
//! histogram is a few dozen bytes.

/// Default octave subdivision: 32 sub-buckets per power of two, ~3%
/// worst-case relative error on quantiles.
pub const DEFAULT_SUB_BITS: u32 = 5;

/// A log-bucketed histogram of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(DEFAULT_SUB_BITS)
    }
}

impl LogHistogram {
    /// # Panics
    ///
    /// Panics if `sub_bits` is 0 or ≥ 32 (sub-bucket math needs at least
    /// one bit and the octave count must stay well inside `u32`).
    pub fn new(sub_bits: u32) -> Self {
        assert!(
            (1..32).contains(&sub_bits),
            "sub_bits must be in 1..32, got {sub_bits}"
        );
        LogHistogram {
            sub_bits,
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Bucket index for `value`. Values below `2^sub_bits` map to exact
    /// width-1 buckets (`index = value`); above that, the high `sub_bits`
    /// bits after the leading one select a sub-bucket within the octave.
    fn index_of(&self, value: u64) -> usize {
        let sb = self.sub_bits;
        if value < (1 << sb) {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // >= sb
        let octave = msb - sb; // 0 for the first non-linear octave
        let sub = (value >> octave) as usize - (1 << sb);
        (((octave + 1) as usize) << sb) + sub
    }

    /// Inclusive upper edge of bucket `index` — the largest value that maps
    /// into it.
    fn bucket_upper(&self, index: usize) -> u64 {
        let sb = self.sub_bits;
        if index < (1 << sb) {
            return index as u64;
        }
        let octave = (index >> sb) as u32 - 1;
        let sub = (index & ((1 << sb) - 1)) as u64;
        // First value of the bucket plus its width minus one.
        (((1 << sb) + sub) << octave) + ((1u64 << octave) - 1)
    }

    /// Width of the bucket containing `value` — the quantile estimation
    /// error bound for that value.
    pub fn bucket_width(&self, value: u64) -> u64 {
        if value < (1 << self.sub_bits) {
            1
        } else {
            1 << (63 - value.leading_zeros() - self.sub_bits)
        }
    }

    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Minimum recorded value (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the `ceil(q * count)`-th smallest sample, clamped to the
    /// observed max. Within one bucket width of the exact sorted-sample
    /// quantile. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`. Errors when the sub-bucket resolutions
    /// differ — counts from different bucket layouts cannot be combined.
    pub fn merge(&mut self, other: &LogHistogram) -> Result<(), String> {
        if self.sub_bits != other.sub_bits {
            return Err(format!(
                "cannot merge log histograms with different resolutions \
                 (sub_bits {} vs {})",
                self.sub_bits, other.sub_bits
            ));
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)` in increasing
    /// edge order — the basis for Prometheus export and serialisation.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_upper(i), c))
            .collect()
    }

    /// Rebuilds a histogram from [`Self::nonzero_buckets`] output plus the
    /// scalar stats — the JSONL round-trip path. Edges that don't land on a
    /// bucket boundary of this resolution are rejected.
    pub fn restore(
        sub_bits: u32,
        buckets: &[(u64, u64)],
        sum: u128,
        min: u64,
        max: u64,
    ) -> Result<Self, String> {
        let mut h = LogHistogram::new(sub_bits);
        let mut count = 0u64;
        for &(edge, c) in buckets {
            let idx = h.index_of(edge);
            if h.bucket_upper(idx) != edge {
                return Err(format!(
                    "{edge} is not a bucket edge at sub_bits {sub_bits}"
                ));
            }
            if idx >= h.counts.len() {
                h.counts.resize(idx + 1, 0);
            }
            h.counts[idx] += c;
            count += c;
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        for q in [0.1f64, 0.5, 0.9] {
            let exact = ((q * 32.0).ceil() as u64).max(1) - 1;
            assert_eq!(h.quantile(q), exact, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn index_and_upper_are_inverse() {
        let h = LogHistogram::new(5);
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let idx = h.index_of(v);
            let upper = h.bucket_upper(idx);
            assert!(upper >= v, "upper({idx})={upper} < {v}");
            assert!(
                upper - v < h.bucket_width(v),
                "value {v} further than one width {} from edge {upper}",
                h.bucket_width(v)
            );
            assert_eq!(h.index_of(upper), idx, "edge maps back to same bucket");
        }
    }

    #[test]
    fn bucket_edges_are_monotone() {
        let h = LogHistogram::new(3);
        let mut prev = None;
        for idx in 0..200 {
            let upper = h.bucket_upper(idx);
            if let Some(p) = prev {
                assert!(upper > p, "edges must increase: {p} !< {upper} at {idx}");
            }
            prev = Some(upper);
        }
    }

    #[test]
    fn quantiles_within_one_bucket_width() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut samples: Vec<u64> = (0..4000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Spread over ~6 decades.
                (state >> 40) % 1_000_000
            })
            .collect();
        let mut h = LogHistogram::new(5);
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let exact = samples[rank];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            assert!(
                est - exact <= h.bucket_width(exact),
                "q={q}: estimate {est} more than one bucket width {} above {exact}",
                h.bucket_width(exact)
            );
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LogHistogram::new(5);
        let mut b = LogHistogram::new(5);
        let mut both = LogHistogram::new(5);
        for v in [3u64, 77, 1024, 5_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 77, 123_456] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, both);
    }

    #[test]
    fn merge_rejects_resolution_mismatch() {
        let mut a = LogHistogram::new(5);
        let b = LogHistogram::new(4);
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("sub_bits"), "{err}");
    }

    #[test]
    fn nonzero_buckets_round_trip() {
        let mut h = LogHistogram::new(5);
        for v in [0u64, 5, 31, 32, 999, 1_000_000, u64::MAX / 2] {
            h.record(v);
        }
        let restored = LogHistogram::restore(
            h.sub_bits(),
            &h.nonzero_buckets(),
            h.sum(),
            h.min(),
            h.max(),
        )
        .unwrap();
        assert_eq!(restored, h);
    }

    #[test]
    fn restore_rejects_non_edge() {
        // 33 is inside a width-2 bucket at sub_bits=4 (linear range ends at
        // 15; octave of 33 has width 2 with edges ... 33? compute: sub_bits=4,
        // values < 16 linear; 33: msb=5, octave=1, width 2, buckets cover
        // [32,33],[34,35]... so 33 IS an edge; use 34 which is a lower edge).
        let err = LogHistogram::restore(4, &[(34, 1)], 34, 34, 34);
        assert!(err.is_err(), "34 is not an upper edge at sub_bits=4");
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = LogHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets(), vec![]);
    }
}
