//! Per-request tracing: trace IDs, sampling, and a bounded ring of
//! finished request traces.
//!
//! The span tracer in [`crate::trace`] answers "where did this *process*
//! spend time"; this module answers "where did this *request* spend time".
//! A sampled request gets a [`TraceId`] at accept, accumulates per-stage
//! timings (queue → batch → solve → respond) as it moves through the
//! worker pools, and lands as one [`RequestTrace`] in a [`TraceRing`] —
//! bounded, so a long-running server holds the most recent N traces and
//! counts what it evicted instead of growing without limit.
//!
//! [`RequestTrace::emit_spans`] bridges sampled requests into the global
//! span buffer (each stage becomes a span tagged with the trace ID), so a
//! JSONL sink written at shutdown lets `obs-report` join a response's
//! trace ID to its queue/batch/solve breakdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::{self, FieldValue};

/// A 64-bit request trace identifier, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceId {
    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// SplitMix64 finaliser — turns a sequential counter into well-spread IDs.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Returns a fresh process-unique trace ID. IDs are never zero and don't
/// repeat within a process; distinct processes are distinguished by a
/// seed mixed from the wall clock and the PID.
pub fn next_trace_id() -> TraceId {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let id = mix(seed.wrapping_add(n.wrapping_mul(0x9e3779b97f4a7c15)));
    TraceId(if id == 0 { 1 } else { id })
}

/// 1-in-N sampling decision shared across worker threads.
///
/// `every == 0` disables sampling entirely; `every == 1` samples every
/// request. The decision is deterministic (a shared counter), so load
/// tests sample a predictable fraction.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    seq: AtomicU64,
}

impl Sampler {
    pub fn new(every: u64) -> Self {
        Sampler {
            every,
            seq: AtomicU64::new(0),
        }
    }

    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Returns `true` for one request in every `N`.
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }
}

/// One timed stage of a request's life (offsets share the process trace
/// epoch, so stages from different threads line up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    pub stage: &'static str,
    pub start_us: u64,
    pub duration_us: u64,
}

/// A finished, sampled request: its ID, route, and per-stage breakdown.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    pub id: TraceId,
    pub endpoint: &'static str,
    pub start_us: u64,
    pub total_us: u64,
    pub stages: Vec<StageTiming>,
}

impl RequestTrace {
    pub fn new(id: TraceId, endpoint: &'static str, start_us: u64) -> Self {
        RequestTrace {
            id,
            endpoint,
            start_us,
            total_us: 0,
            stages: Vec::new(),
        }
    }

    pub fn push_stage(&mut self, stage: &'static str, start_us: u64, duration_us: u64) {
        self.stages.push(StageTiming {
            stage,
            start_us,
            duration_us,
        });
    }

    /// Wall time not covered by any recorded stage (scheduling gaps).
    pub fn unaccounted_us(&self) -> u64 {
        let staged: u64 = self.stages.iter().map(|s| s.duration_us).sum();
        self.total_us.saturating_sub(staged)
    }

    /// Publishes each stage as a span in the global trace buffer, tagged
    /// `trace_id = <hex>`, so JSONL sinks carry the request breakdown and
    /// readers can join on the ID a client saw in its response.
    pub fn emit_spans(&self) {
        let id = self.id.to_string();
        for stage in &self.stages {
            trace::record_span_raw(
                stage.stage,
                vec![
                    ("trace_id", FieldValue::Str(id.clone())),
                    ("endpoint", FieldValue::Str(self.endpoint.to_string())),
                ],
                stage.start_us,
                stage.duration_us,
            );
        }
        trace::record_span_raw(
            "request",
            vec![
                ("trace_id", FieldValue::Str(id)),
                ("endpoint", FieldValue::Str(self.endpoint.to_string())),
            ],
            self.start_us,
            self.total_us,
        );
    }

    /// One-line human-readable stage breakdown, for slow-request dumps:
    /// `a1b2... classify 12345us (queue 10us, batch 40us, solve 12000us)`.
    pub fn describe(&self) -> String {
        let stages = self
            .stages
            .iter()
            .map(|s| format!("{} {}us", s.stage, s.duration_us))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{} {} {}us ({stages})",
            self.id, self.endpoint, self.total_us
        )
    }
}

struct RingInner {
    traces: VecDeque<RequestTrace>,
    dropped: u64,
}

/// Bounded, thread-safe ring of the most recent finished request traces.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for RingInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingInner")
            .field("len", &self.traces.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl TraceRing {
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace ring capacity must be positive");
        TraceRing {
            cap,
            inner: Mutex::new(RingInner {
                traces: VecDeque::with_capacity(cap.min(1024)),
                dropped: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a finished trace, evicting the oldest when full.
    pub fn push(&self, trace: RequestTrace) {
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.traces.len() == self.cap {
            inner.traces.pop_front();
            inner.dropped += 1;
        }
        inner.traces.push_back(trace);
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces evicted so far (monotonic).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Copies the ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .traces
            .iter()
            .cloned()
            .collect()
    }

    /// Finds a trace by ID (most recent match).
    pub fn find(&self, id: TraceId) -> Option<RequestTrace> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .traces
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_unique_nonzero_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = next_trace_id();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id), "duplicate id {id}");
            let text = id.to_string();
            assert_eq!(text.len(), 16);
            assert_eq!(TraceId::parse(&text), Some(id));
        }
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse("0123"), None);
    }

    #[test]
    fn sampler_takes_one_in_n() {
        let s = Sampler::new(4);
        let hits = (0..100).filter(|_| s.sample()).count();
        assert_eq!(hits, 25);
        let off = Sampler::new(0);
        assert!(!off.enabled());
        assert!((0..10).all(|_| !off.sample()));
        let all = Sampler::new(1);
        assert!((0..10).all(|_| all.sample()));
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(RequestTrace::new(TraceId(i + 1), "classify", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest evicted first"
        );
        assert!(ring.find(TraceId(4)).is_some());
        assert!(ring.find(TraceId(1)).is_none(), "evicted");
    }

    #[test]
    fn stages_and_unaccounted_time() {
        let mut t = RequestTrace::new(TraceId(7), "classify", 100);
        t.push_stage("queue", 100, 40);
        t.push_stage("solve", 140, 50);
        t.total_us = 100;
        assert_eq!(t.unaccounted_us(), 10);
        let line = t.describe();
        assert!(line.contains("queue 40us"), "{line}");
        assert!(line.contains("solve 50us"), "{line}");
        assert!(line.contains("0000000000000007"), "{line}");
    }

    #[test]
    fn emit_spans_lands_in_global_buffer_with_trace_id() {
        let watch = crate::trace::Watch::new();
        let id = next_trace_id();
        let mut t = RequestTrace::new(id, "classify", 5);
        t.push_stage("queue", 5, 2);
        t.total_us = 9;
        t.emit_spans();
        let spans = watch.spans();
        assert_eq!(spans.len(), 2, "stage + request spans");
        let hex = id.to_string();
        for s in &spans {
            assert!(
                s.fields
                    .iter()
                    .any(|(k, v)| *k == "trace_id" && matches!(v, FieldValue::Str(h) if *h == hex)),
                "span {} missing trace_id",
                s.name
            );
        }
    }
}
