//! # xbar-obs
//!
//! Zero-dependency observability layer for the train → prune → map →
//! simulate pipeline: structured spans and events ([`trace`]), a metrics
//! registry with counters, gauges, and fixed-bucket histograms
//! ([`metrics`]), and pluggable sinks — a human-readable stderr progress
//! reporter and a JSONL run-manifest writer ([`sink`]).
//!
//! Everything funnels into one process-global recorder so library crates
//! can instrument hot paths without threading a context object through
//! every call; the bench binaries decide at exit what to do with the data
//! (print a phase summary, write `--trace-out` JSONL, or both).
//!
//! ## Spans and events
//!
//! ```
//! use xbar_obs::{event, span};
//!
//! let _phase = span!("map");                       // timed until dropped
//! for layer in 0..3 {
//!     let _s = span!("map_layer", layer = layer);  // nested span
//!     event!("tile_done", layer = layer, nf = 1.25_f64);
//! }
//! ```
//!
//! ## Metrics
//!
//! ```
//! use xbar_obs::metrics;
//!
//! metrics::counter_add("doc/tiles", 1);
//! metrics::gauge_set("doc/layer0/nf", 1.31);
//! metrics::histogram_record("doc/solver_iters", 17.0, &[8.0, 16.0, 32.0, 64.0]);
//! ```
//!
//! ## Sinks
//!
//! [`sink::write_jsonl`] serialises the manifest, every span/event, every
//! metric, and a per-phase timing summary as one JSON object per line; the
//! schema is documented on that function. [`sink::stderr_echo`] toggles
//! live progress lines (`--quiet` turns them off).
//! [`chrome::write_chrome_trace`] renders the same span data as a Chrome
//! Trace Event file loadable in `chrome://tracing` / Perfetto.
//!
//! ## Request tracing
//!
//! [`ring`] adds per-*request* observability on top of the span tracer:
//! sampled requests get a [`ring::TraceId`], collect per-stage timings as
//! they cross worker pools, and land in a bounded [`ring::TraceRing`].
//! [`metrics::latency_record_us`] feeds latency samples into log-bucketed
//! [`hdr::LogHistogram`]s whose quantiles stay within ~3% without
//! hand-picked bucket bounds. Metric names are declared once in [`names`];
//! debug builds reject unregistered names at the record site.

pub mod chrome;
pub mod hdr;
pub mod json;
pub mod metrics;
pub mod names;
pub mod ring;
pub mod sink;
pub mod trace;

pub use hdr::LogHistogram;
pub use ring::{RequestTrace, Sampler, TraceId, TraceRing};
pub use trace::{EventRecord, FieldValue, SpanGuard, SpanRecord, Watch};

/// Starts a timed, nested span; the returned [`SpanGuard`] records the span
/// when dropped. Fields are `key = value` pairs where the value converts
/// into a [`FieldValue`].
///
/// ```
/// # use xbar_obs::span;
/// let _guard = span!("solve_tile", rows = 32_usize, tol = 1e-9);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::trace::SpanGuard::enter(
            $name,
            vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
        )
    };
}

/// Records an instantaneous structured event (and echoes it to stderr when
/// the progress reporter is enabled).
///
/// ```
/// # use xbar_obs::event;
/// event!("train_epoch", epoch = 3_usize, loss = 0.42_f64);
/// ```
#[macro_export]
macro_rules! event {
    ($name:literal $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::trace::record_event(
            $name,
            vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
        )
    };
}
