//! Minimal JSON value, writer, and parser — enough to emit the JSONL trace
//! schema and to parse it back (round-trip tests, downstream tooling).
//!
//! The build environment is hermetic (no serde), so this is hand-rolled.
//! Numbers are stored as `f64`; integers up to 2^53 round-trip exactly,
//! which covers every counter/timestamp the tracer produces in practice.

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact single-line serialisation.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Two-space-indented serialisation for artifacts meant to be read by
    /// humans (e.g. `results/suite.json` in a CI run's uploaded artifacts).
    /// Parses back to the same value as [`Json::to_json`].
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} of JSON input",
            byte as char, *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of JSON input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

/// Convenience constructor for object values.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = obj(vec![
            ("type", Json::Str("histogram".into())),
            ("name", Json::Str("sim/solver \"iters\"\n".into())),
            ("bounds", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("counts", Json::Arr(vec![Json::Num(3.0), Json::Num(0.0)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("big", Json::Num(1_234_567_890_123.0)),
        ]);
        let text = doc.to_json();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn pretty_round_trips_and_indents() {
        let doc = obj(vec![
            ("name", Json::Str("suite".into())),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Bool(false)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("nested", obj(vec![("ok", Json::Bool(true))])),
        ]);
        let text = doc.to_json_pretty();
        assert!(text.contains("\n  \"items\": [\n    1,\n    false\n  ]"));
        assert!(text.contains("\"empty_arr\": []"));
        assert!(text.contains("\"empty_obj\": {}"));
        assert_eq!(Json::parse(&text).expect("pretty output parses"), doc);
    }

    #[test]
    fn integers_serialise_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_json(), "42");
        assert_eq!(Json::Num(-3.0).to_json(), "-3");
        assert_eq!(Json::Num(1.5).to_json(), "1.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let back = Json::parse(" { \"a\" : [ 1 , \"x\\ty\" ] } ").expect("parses");
        assert_eq!(
            back.get("a").unwrap().as_arr().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            back.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x\ty")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }
}
