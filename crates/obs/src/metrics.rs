//! Metrics registry: named counters, gauges, and fixed-bucket histograms
//! behind a process-global, thread-safe store.
//!
//! Names are slash-separated paths (`sim/tile_solve_us`,
//! `map/layer3/nf_mean`); `BTreeMap` storage keeps snapshots and JSONL
//! output deterministically ordered. Histograms use caller-supplied bucket
//! upper bounds plus an implicit overflow bucket, so recording is one
//! `partition_point` and an increment — cheap enough for per-tile hot
//! paths.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Fixed-bucket histogram: `counts[i]` tallies values `<= bounds[i]`
/// (first matching bound), `counts[bounds.len()]` is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Self::bounds`] (overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Overwrites the contents from serialised form (JSONL parsing).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is not one longer than the bounds.
    pub(crate) fn restore(&mut self, counts: &[u64], sum: f64, min: Option<f64>, max: Option<f64>) {
        assert_eq!(
            counts.len(),
            self.bounds.len() + 1,
            "counts length mismatch"
        );
        self.counts = counts.to_vec();
        self.sum = sum;
        self.min = min.unwrap_or(f64::INFINITY);
        self.max = max.unwrap_or(f64::NEG_INFINITY);
    }

    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Adds `delta` to the named counter (creating it at zero).
pub fn counter_add(name: &str, delta: u64) {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    *reg.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.gauges.insert(name.to_string(), value);
}

/// Records `value` into the named histogram, creating it with `bounds` on
/// first use. Later calls ignore `bounds` (first registration wins), so
/// callers should use a shared `const` for each metric.
pub fn histogram_record(name: &str, value: f64, bounds: &[f64]) {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.histograms
        .entry(name.to_string())
        .or_insert_with(|| Histogram::new(bounds))
        .record(value);
}

/// Point-in-time copy of the whole registry, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    MetricsSnapshot {
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        histograms: reg.histograms.clone(),
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in a Prometheus-style text exposition format:
    /// one `name value` line per counter and gauge, and for each histogram
    /// cumulative `_bucket{le="..."}` lines plus `_sum` and `_count`.
    /// Slashes in metric names are rewritten to underscores so the output
    /// is scrapable by standard tooling.
    pub fn to_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
                cumulative += count;
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            cumulative += hist.counts().last().copied().unwrap_or(0);
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{name}_sum {}\n", hist.sum()));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        out
    }
}

/// Renders the current process-global registry as text (see
/// [`MetricsSnapshot::to_text`]) — the body of an HTTP `/metrics` endpoint.
pub fn to_text() -> String {
    snapshot().to_text()
}

/// Reads a single counter (0 if absent) — convenience for tests/reports.
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .expect("metrics registry poisoned")
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_at_bound_edges() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 10.5, 100.0, 1e6] {
            h.record(v);
        }
        // <=1: {0.5, 1.0}; <=10: {1.5, 10.0}; <=100: {10.5, 100.0}; over: {1e6}
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 1e6);
        assert!((h.sum() - (0.5 + 1.0 + 1.5 + 10.0 + 10.5 + 100.0 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.min(), 0.5);
    }

    #[test]
    fn text_exposition_renders_all_metric_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("serve/requests".into(), 7);
        snap.gauges.insert("serve/up".into(), 1.0);
        let mut h = Histogram::new(&[1.0, 4.0]);
        h.record(0.5);
        h.record(2.0);
        h.record(9.0);
        snap.histograms.insert("serve/batch_size".into(), h);
        let text = snap.to_text();
        assert!(text.contains("serve_requests 7"), "{text}");
        assert!(text.contains("serve_up 1"), "{text}");
        assert!(
            text.contains("serve_batch_size_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serve_batch_size_bucket{le=\"4\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("serve_batch_size_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("serve_batch_size_count 3"), "{text}");
        assert!(text.contains("# TYPE serve_batch_size histogram"), "{text}");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        // Unique names: the registry is process-global and tests run in
        // parallel.
        counter_add("test/reg/counter", 2);
        counter_add("test/reg/counter", 3);
        gauge_set("test/reg/gauge", 1.5);
        gauge_set("test/reg/gauge", 2.5);
        histogram_record("test/reg/hist", 4.0, &[1.0, 10.0]);
        let snap = snapshot();
        assert_eq!(snap.counters["test/reg/counter"], 5);
        assert_eq!(counter_value("test/reg/counter"), 5);
        assert_eq!(snap.gauges["test/reg/gauge"], 2.5);
        assert_eq!(snap.histograms["test/reg/hist"].counts(), &[0, 1, 0]);
    }
}
