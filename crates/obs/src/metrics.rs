//! Metrics registry: named counters, gauges, fixed-bucket histograms, and
//! log-bucketed latency histograms behind a process-global, thread-safe
//! store.
//!
//! Names are slash-separated paths (`sim/tile_solve_us`,
//! `map/layer3/nf_mean`) declared in [`crate::names`]; in debug builds the
//! recording functions reject names missing from that registry, so a typo
//! fails a test instead of silently minting a phantom series. `BTreeMap`
//! storage keeps snapshots and JSONL output deterministically ordered.
//!
//! Fixed-bucket histograms use caller-supplied bucket upper bounds plus an
//! implicit overflow bucket, so recording is one `partition_point` and an
//! increment — cheap enough for per-tile hot paths. Latency metrics use
//! [`LogHistogram`] instead (whole `u64` range, ~3% relative error, no
//! bounds to choose); record via [`latency_record_us`].

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::hdr::LogHistogram;
use crate::names;

/// Fixed-bucket histogram: `counts[i]` tallies values `<= bounds[i]`
/// (first matching bound), `counts[bounds.len()]` is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Self::bounds`] (overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Overwrites the contents from serialised form (JSONL parsing).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is not one longer than the bounds.
    pub(crate) fn restore(&mut self, counts: &[u64], sum: f64, min: Option<f64>, max: Option<f64>) {
        assert_eq!(
            counts.len(),
            self.bounds.len() + 1,
            "counts length mismatch"
        );
        self.counts = counts.to_vec();
        self.sum = sum;
        self.min = min.unwrap_or(f64::INFINITY);
        self.max = max.unwrap_or(f64::NEG_INFINITY);
    }

    /// Merges `other` into `self`. Errors when the bucket bounds differ —
    /// counts from different bucket layouts cannot be combined.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "cannot merge histograms with different bounds \
                 ({:?} vs {:?})",
                self.bounds, other.bounds
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    log_histograms: BTreeMap<String, LogHistogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Adds `delta` to the named counter (creating it at zero).
pub fn counter_add(name: &str, delta: u64) {
    names::assert_registered(name);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    *reg.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    names::assert_registered(name);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.gauges.insert(name.to_string(), value);
}

/// Records `value` into the named histogram, creating it with `bounds` on
/// first use. Later calls ignore `bounds` (first registration wins), so
/// callers should use a shared `const` for each metric. NaN, infinite, and
/// negative values are dropped (counted in `obs/histogram_skipped`)
/// instead of poisoning the min/max/sum statistics.
pub fn histogram_record(name: &str, value: f64, bounds: &[f64]) {
    names::assert_registered(name);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if !value.is_finite() || value < 0.0 {
        *reg.counters
            .entry(names::OBS_HISTOGRAM_SKIPPED.to_string())
            .or_insert(0) += 1;
        return;
    }
    reg.histograms
        .entry(name.to_string())
        .or_insert_with(|| Histogram::new(bounds))
        .record(value);
}

/// Records a microsecond latency into the named log-bucketed histogram
/// (created at default resolution on first use). Use for durations and
/// sizes where the range is unknown ahead of time; quantiles come back via
/// [`latency_quantile_us`] or the snapshot.
pub fn latency_record_us(name: &str, us: u64) {
    names::assert_registered(name);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.log_histograms
        .entry(name.to_string())
        .or_default()
        .record(us);
}

/// Copy of the named log-bucketed histogram, if it has been recorded to.
pub fn log_histogram(name: &str) -> Option<LogHistogram> {
    registry()
        .lock()
        .expect("metrics registry poisoned")
        .log_histograms
        .get(name)
        .cloned()
}

/// Quantile of the named log-bucketed histogram (`None` when absent).
pub fn latency_quantile_us(name: &str, q: f64) -> Option<u64> {
    log_histogram(name).map(|h| h.quantile(q))
}

/// Point-in-time copy of the whole registry, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub log_histograms: BTreeMap<String, LogHistogram>,
}

pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    MetricsSnapshot {
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        histograms: reg.histograms.clone(),
        log_histograms: reg.log_histograms.clone(),
    }
}

/// Rewrites a metric path to the Prometheus name charset
/// (`[a-zA-Z0-9_]`, slashes and other punctuation become `_`).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline get backslash escapes.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `name value` line per counter and gauge, and for each histogram
    /// (fixed-bound and log-bucketed) cumulative `_bucket{le="..."}` lines
    /// plus `_sum` and `_count`. Slashes in metric names are rewritten to
    /// underscores, label values are escaped, and `BTreeMap` iteration
    /// keeps series order deterministic, so the output always parses (see
    /// [`parse_prometheus_text`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    escape_label_value(&bound.to_string())
                ));
            }
            cumulative += hist.counts().last().copied().unwrap_or(0);
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{name}_sum {}\n", hist.sum()));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        for (name, hist) in &self.log_histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (edge, count) in hist.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!("{name}_bucket{{le=\"{edge}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{name}_sum {}\n", hist.sum()));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        out
    }
}

/// Renders the current process-global registry as text (see
/// [`MetricsSnapshot::to_text`]) — the body of an HTTP `/metrics` endpoint.
pub fn to_text() -> String {
    snapshot().to_text()
}

/// One parsed sample line from Prometheus exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    /// `(label, unescaped value)` pairs in declaration order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses Prometheus text exposition format into samples, rejecting any
/// line the scrape format would reject (the round-trip guard behind
/// `/metrics` tests and the `obs-report --check-prom` CI step). Comment
/// (`#`) and blank lines are skipped.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value_text) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected 'name value'"))?;
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            other => other
                .parse::<f64>()
                .map_err(|_| err("unparseable sample value"))?,
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                (name.to_string(), parse_labels(body).map_err(|m| err(&m))?)
            }
        };
        if !valid_metric_name(&name) {
            return Err(err("invalid metric name"));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = body.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let eq = body[pos..]
            .find('=')
            .map(|i| pos + i)
            .ok_or("label without '='")?;
        let key = &body[pos..eq];
        if !valid_metric_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err("label value not quoted".into());
        }
        let mut value = String::new();
        let mut i = eq + 2;
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".into()),
                    }
                    i += 2;
                }
                Some(_) => {
                    let rest = &body[i..];
                    let c = rest.chars().next().expect("non-empty by match");
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((key.to_string(), value));
        pos = i + 1; // past closing quote
        match bytes.get(pos) {
            None => break,
            Some(b',') => pos += 1,
            Some(_) => return Err("expected ',' between labels".into()),
        }
    }
    Ok(labels)
}

/// Validates that `text` is scrapeable Prometheus exposition output.
/// Returns the number of sample lines on success.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    parse_prometheus_text(text).map(|samples| samples.len())
}

/// Reads a single counter (0 if absent) — convenience for tests/reports.
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .expect("metrics registry poisoned")
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_at_bound_edges() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 10.5, 100.0, 1e6] {
            h.record(v);
        }
        // <=1: {0.5, 1.0}; <=10: {1.5, 10.0}; <=100: {10.5, 100.0}; over: {1e6}
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 1e6);
        assert!((h.sum() - (0.5 + 1.0 + 1.5 + 10.0 + 10.5 + 100.0 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(5.0);
        a.merge(&b).expect("same bounds merge");
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.min(), 0.5);
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 3.0]);
        let before = a.clone();
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("different bounds"), "{err}");
        assert_eq!(a, before, "failed merge must not mutate");
    }

    #[test]
    fn histogram_record_skips_nan_and_negative() {
        let skipped_before = counter_value(crate::names::OBS_HISTOGRAM_SKIPPED);
        histogram_record("test/metrics/guarded", f64::NAN, &[1.0]);
        histogram_record("test/metrics/guarded", -3.0, &[1.0]);
        histogram_record("test/metrics/guarded", f64::INFINITY, &[1.0]);
        histogram_record("test/metrics/guarded", 0.5, &[1.0]);
        let snap = snapshot();
        let h = &snap.histograms["test/metrics/guarded"];
        assert_eq!(h.count(), 1, "only the finite non-negative value lands");
        assert_eq!(h.min(), 0.5);
        assert!(
            counter_value(crate::names::OBS_HISTOGRAM_SKIPPED) >= skipped_before + 3,
            "skips are counted"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not declared")]
    fn unregistered_metric_name_rejected_in_debug() {
        counter_add("serve/definitely_a_typo", 1);
    }

    #[test]
    fn latency_log_histogram_records_and_quantiles() {
        for us in [100u64, 200, 400, 800, 100_000] {
            latency_record_us("test/metrics/lat_us", us);
        }
        let h = log_histogram("test/metrics/lat_us").expect("created");
        assert_eq!(h.count(), 5);
        let p50 = latency_quantile_us("test/metrics/lat_us", 0.5).unwrap();
        assert!(p50 >= 400 && p50 - 400 <= h.bucket_width(400), "p50={p50}");
        assert_eq!(latency_quantile_us("test/metrics/absent", 0.5), None);
    }

    #[test]
    fn text_exposition_renders_all_metric_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("serve/requests".into(), 7);
        snap.gauges.insert("serve/up".into(), 1.0);
        let mut h = Histogram::new(&[1.0, 4.0]);
        h.record(0.5);
        h.record(2.0);
        h.record(9.0);
        snap.histograms.insert("serve/batch_size".into(), h);
        let mut lh = LogHistogram::default();
        lh.record(100);
        lh.record(100_000);
        snap.log_histograms.insert("serve/infer_us".into(), lh);
        let text = snap.to_text();
        assert!(text.contains("serve_requests 7"), "{text}");
        assert!(text.contains("serve_up 1"), "{text}");
        assert!(
            text.contains("serve_batch_size_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serve_batch_size_bucket{le=\"4\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("serve_batch_size_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("serve_batch_size_count 3"), "{text}");
        assert!(text.contains("# TYPE serve_batch_size histogram"), "{text}");
        assert!(text.contains("# TYPE serve_infer_us histogram"), "{text}");
        assert!(text.contains("serve_infer_us_count 2"), "{text}");
        assert!(
            text.contains("serve_infer_us_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn text_exposition_is_deterministic_and_ordered() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("b/two".into(), 2);
        snap.counters.insert("a/one".into(), 1);
        snap.gauges.insert("z/late".into(), 0.5);
        let text = snap.to_text();
        assert_eq!(text, snap.to_text(), "same snapshot, same text");
        let a = text.find("a_one 1").unwrap();
        let b = text.find("b_two 2").unwrap();
        assert!(a < b, "counters render in sorted name order");
    }

    #[test]
    fn sanitize_never_emits_leading_digit() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("0weird/name".into(), 1);
        let text = snap.to_text();
        assert!(text.contains("_0weird_name 1"), "{text}");
        validate_prometheus_text(&text).expect("still parseable");
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let tricky = "a\"b\\c\nd";
        let escaped = escape_label_value(tricky);
        assert_eq!(escaped, "a\\\"b\\\\c\\nd");
        let line = format!("m_bucket{{le=\"{escaped}\"}} 4\n");
        let samples = parse_prometheus_text(&line).expect("parses");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].labels, vec![("le".into(), tricky.to_string())]);
        assert_eq!(samples[0].value, 4.0);
    }

    #[test]
    fn exposition_round_trips_through_parser() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("serve/requests".into(), 7);
        snap.gauges.insert("serve/nf".into(), 1.25);
        let mut h = Histogram::new(&[0.5, 2.5]);
        h.record(1.0);
        snap.histograms.insert("sim/widths".into(), h);
        let mut lh = LogHistogram::default();
        lh.record(12345);
        snap.log_histograms.insert("serve/lat_us".into(), lh);
        let samples = parse_prometheus_text(&snap.to_text()).expect("parses");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get("serve_requests").value, 7.0);
        assert_eq!(get("serve_nf").value, 1.25);
        assert_eq!(get("sim_widths_count").value, 1.0);
        assert_eq!(get("serve_lat_us_count").value, 1.0);
        let inf_bucket = samples
            .iter()
            .find(|s| {
                s.name == "sim_widths_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket present");
        assert_eq!(inf_bucket.value, 1.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value",
            "1name 3",
            "name{le=\"unterminated} 1",
            "name{le=unquoted} 1",
            "name{le=\"x\" le=\"y\"} 1",
            "name{le=\"\\q\"} 1",
            "name notanumber",
        ] {
            assert!(
                parse_prometheus_text(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert_eq!(
            validate_prometheus_text("# a comment\n\nm 1\nn{a=\"b\"} +Inf\n").unwrap(),
            2
        );
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        // Unique names: the registry is process-global and tests run in
        // parallel.
        counter_add("test/reg/counter", 2);
        counter_add("test/reg/counter", 3);
        gauge_set("test/reg/gauge", 1.5);
        gauge_set("test/reg/gauge", 2.5);
        histogram_record("test/reg/hist", 4.0, &[1.0, 10.0]);
        latency_record_us("test/reg/lat", 77);
        let snap = snapshot();
        assert_eq!(snap.counters["test/reg/counter"], 5);
        assert_eq!(counter_value("test/reg/counter"), 5);
        assert_eq!(snap.gauges["test/reg/gauge"], 2.5);
        assert_eq!(snap.histograms["test/reg/hist"].counts(), &[0, 1, 0]);
        assert_eq!(snap.log_histograms["test/reg/lat"].count(), 1);
    }
}
