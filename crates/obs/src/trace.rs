//! Span/event tracer: thread-safe collection of timed, nested spans and
//! instantaneous events into a bounded, process-global buffer.
//!
//! Design notes:
//!
//! * Spans are recorded **on drop** (end time known), so the buffer holds
//!   finished spans in completion order. Nesting depth is tracked per
//!   thread; a span started while another is open on the same thread gets
//!   `depth + 1`.
//! * Timestamps are microsecond offsets from a process-wide epoch (first
//!   use), which keeps records `Copy`-cheap and makes JSONL output
//!   machine-diffable without wall-clock noise.
//! * The buffer is a ring: a long-running server keeps the most recent
//!   [`buffer_capacity`] records per kind and counts what it evicted
//!   (`obs/trace_spans_dropped`) instead of growing without bound.
//!   Positions handed to [`Watch`] are *logical* (monotonic since process
//!   start), so a watch survives evictions — it just sees fewer records.
//! * Tests observe the global buffer through a [`Watch`], which remembers
//!   the buffer position at construction and filters to the calling
//!   thread, so parallel tests don't see each other's records.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.6}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from! {
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    isize => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Key/value pairs attached to a record.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// A finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub name: &'static str,
    pub fields: Fields,
    /// Small dense per-thread index (0 = first thread to trace).
    pub thread: u64,
    /// Nesting depth on its thread: 0 for top-level phases.
    pub depth: u32,
    /// Start offset from the process trace epoch, microseconds.
    pub start_us: u64,
    pub duration_us: u64,
}

/// An instantaneous event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub name: &'static str,
    pub fields: Fields,
    pub thread: u64,
    /// Depth of the enclosing span plus one (0 = outside any span).
    pub depth: u32,
    /// Offset from the process trace epoch, microseconds.
    pub at_us: u64,
}

/// Default per-kind buffer capacity: enough for every record a bench run
/// produces, small enough (a few MB) to hold resident in a server.
pub const DEFAULT_BUFFER_CAPACITY: usize = 65_536;

static BUFFER_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_BUFFER_CAPACITY);

/// Current per-kind (spans, events) buffer capacity.
pub fn buffer_capacity() -> usize {
    BUFFER_CAP.load(Ordering::Relaxed)
}

/// Overrides the buffer capacity (records already stored are kept until
/// evicted by new pushes). Intended for long-running servers that want a
/// smaller resident ring; a zero capacity is clamped to 1.
pub fn set_buffer_capacity(cap: usize) {
    BUFFER_CAP.store(cap.max(1), Ordering::Relaxed);
}

#[derive(Default)]
struct Buffer {
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
    /// Logical index of `spans[0]` — grows as old records are evicted.
    spans_base: usize,
    events_base: usize,
    dropped_spans: u64,
    dropped_events: u64,
}

impl Buffer {
    fn push_span(&mut self, record: SpanRecord, cap: usize) {
        while self.spans.len() >= cap {
            self.spans.pop_front();
            self.spans_base += 1;
            self.dropped_spans += 1;
        }
        self.spans.push_back(record);
    }

    fn push_event(&mut self, record: EventRecord, cap: usize) {
        while self.events.len() >= cap {
            self.events.pop_front();
            self.events_base += 1;
            self.dropped_events += 1;
        }
        self.events.push_back(record);
    }
}

fn buffer() -> &'static Mutex<Buffer> {
    static BUFFER: OnceLock<Mutex<Buffer>> = OnceLock::new();
    BUFFER.get_or_init(|| Mutex::new(Buffer::default()))
}

/// Process-wide trace epoch: all timestamps are offsets from this instant.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch — the clock every span and
/// event timestamp shares. Public so request tracing can timestamp stages
/// measured outside a `SpanGuard`.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static STDERR_ECHO: AtomicBool = AtomicBool::new(false);

/// Enables/disables the live stderr progress reporter (events and
/// shallow span completions). Off by default; bench binaries turn it on
/// unless `--quiet` is given.
pub(crate) fn set_stderr_echo(on: bool) {
    STDERR_ECHO.store(on, Ordering::Relaxed);
}

pub(crate) fn stderr_echo_enabled() -> bool {
    STDERR_ECHO.load(Ordering::Relaxed)
}

fn thread_index() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn format_fields(fields: &Fields) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
    }
    out
}

fn echo_line(kind: &str, name: &str, detail: &str) {
    let secs = now_us() as f64 / 1e6;
    eprintln!("[{secs:8.2}s] {kind} {name}{detail}");
}

/// RAII guard created by the `span!` macro; records the span when dropped.
#[must_use = "a span is timed until the guard is dropped"]
pub struct SpanGuard {
    name: &'static str,
    fields: Fields,
    depth: u32,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    pub fn enter(name: &'static str, fields: Fields) -> Self {
        let depth = DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        SpanGuard {
            name,
            fields,
            depth,
            start: Instant::now(),
            start_us: now_us(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            thread: thread_index(),
            depth: self.depth,
            start_us: self.start_us,
            duration_us: self.start.elapsed().as_micros() as u64,
        };
        if stderr_echo_enabled() && record.depth == 0 {
            echo_line(
                "phase",
                record.name,
                &format!(
                    " done in {:.2}s{}",
                    record.duration_us as f64 / 1e6,
                    format_fields(&record.fields)
                ),
            );
        }
        buffer()
            .lock()
            .expect("trace buffer poisoned")
            .push_span(record, buffer_capacity());
    }
}

/// Records a pre-timed span directly — for stage timings measured across
/// threads (request tracing) where no RAII guard can bracket the work.
/// Depth and thread are taken from the calling thread at record time.
pub fn record_span_raw(name: &'static str, fields: Fields, start_us: u64, duration_us: u64) {
    let record = SpanRecord {
        name,
        fields,
        thread: thread_index(),
        depth: DEPTH.with(|d| d.get()),
        start_us,
        duration_us,
    };
    buffer()
        .lock()
        .expect("trace buffer poisoned")
        .push_span(record, buffer_capacity());
}

/// Records an instantaneous event; used via the `event!` macro.
pub fn record_event(name: &'static str, fields: Fields) {
    let record = EventRecord {
        name,
        fields,
        thread: thread_index(),
        depth: DEPTH.with(|d| d.get()),
        at_us: now_us(),
    };
    if stderr_echo_enabled() {
        echo_line("event", record.name, &format_fields(&record.fields));
    }
    buffer()
        .lock()
        .expect("trace buffer poisoned")
        .push_event(record, buffer_capacity());
}

/// Snapshot of the retained spans (all threads), in completion order.
pub fn all_spans() -> Vec<SpanRecord> {
    buffer()
        .lock()
        .expect("trace buffer poisoned")
        .spans
        .iter()
        .cloned()
        .collect()
}

/// Snapshot of the retained events (all threads), in record order.
pub fn all_events() -> Vec<EventRecord> {
    buffer()
        .lock()
        .expect("trace buffer poisoned")
        .events
        .iter()
        .cloned()
        .collect()
}

/// `(spans, events)` evicted from the ring so far — nonzero means a trace
/// export is missing the oldest records.
pub fn dropped_counts() -> (u64, u64) {
    let buf = buffer().lock().expect("trace buffer poisoned");
    (buf.dropped_spans, buf.dropped_events)
}

/// A race-free window onto the global trace buffer for tests: only records
/// produced *after* construction *on the constructing thread* are visible,
/// so concurrently running tests don't pollute each other. Positions are
/// logical, so ring evictions shrink the window instead of corrupting it.
pub struct Watch {
    spans_from: usize,
    events_from: usize,
    thread: u64,
}

impl Watch {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let buf = buffer().lock().expect("trace buffer poisoned");
        Watch {
            spans_from: buf.spans_base + buf.spans.len(),
            events_from: buf.events_base + buf.events.len(),
            thread: thread_index(),
        }
    }

    /// Spans completed on this thread since the watch began (and still
    /// retained by the ring).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let buf = buffer().lock().expect("trace buffer poisoned");
        let skip = self.spans_from.saturating_sub(buf.spans_base);
        buf.spans
            .iter()
            .skip(skip)
            .filter(|s| s.thread == self.thread)
            .cloned()
            .collect()
    }

    /// Events recorded on this thread since the watch began (and still
    /// retained by the ring).
    pub fn events(&self) -> Vec<EventRecord> {
        let buf = buffer().lock().expect("trace buffer poisoned");
        let skip = self.events_from.saturating_sub(buf.events_base);
        buf.events
            .iter()
            .skip(skip)
            .filter(|e| e.thread == self.thread)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, span};

    #[test]
    fn spans_nest_and_time_monotonically() {
        let watch = Watch::new();
        {
            let _outer = span!("outer", tag = "t");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("inner", layer = 3_usize);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let spans = watch.spans();
        assert_eq!(spans.len(), 2, "two spans recorded");
        // Inner finishes first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_us >= outer.start_us, "inner starts after outer");
        assert!(
            outer.duration_us >= inner.duration_us,
            "outer ({}us) envelops inner ({}us)",
            outer.duration_us,
            inner.duration_us
        );
        assert!(inner.duration_us >= 1_000, "sleep must register");
        assert_eq!(inner.fields, vec![("layer", FieldValue::U64(3))]);
    }

    #[test]
    fn depth_recovers_after_drop() {
        let watch = Watch::new();
        {
            let _a = span!("a");
        }
        {
            let _b = span!("b");
        }
        let spans = watch.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.depth == 0), "siblings both depth 0");
    }

    #[test]
    fn events_carry_enclosing_depth() {
        let watch = Watch::new();
        event!("outside");
        {
            let _s = span!("phase");
            event!("inside", step = 1_usize, ok = true);
        }
        let events = watch.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].depth, 1);
        assert_eq!(
            events[1].fields,
            vec![("step", FieldValue::U64(1)), ("ok", FieldValue::Bool(true)),]
        );
        assert!(events[0].at_us <= events[1].at_us, "event order preserved");
    }

    #[test]
    fn raw_spans_record_given_timing() {
        let watch = Watch::new();
        record_span_raw("raw_stage", vec![("k", FieldValue::U64(1))], 123, 456);
        let spans = watch.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "raw_stage");
        assert_eq!(spans[0].start_us, 123);
        assert_eq!(spans[0].duration_us, 456);
    }

    #[test]
    fn watch_does_not_see_other_threads() {
        let watch = Watch::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _s = span!("other_thread_span");
                event!("other_thread_event");
            });
        });
        assert!(watch.spans().is_empty());
        assert!(watch.events().is_empty());
        assert!(
            all_spans().iter().any(|s| s.name == "other_thread_span"),
            "global view still includes it"
        );
    }

    fn raw(name: &'static str, start: u64) -> SpanRecord {
        SpanRecord {
            name,
            fields: vec![],
            thread: 0,
            depth: 0,
            start_us: start,
            duration_us: 1,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_tracks_logical_base() {
        // Exercises the eviction path on a private buffer so the shared
        // global ring (and every parallel test watching it) is untouched.
        let mut buf = Buffer::default();
        for i in 0..20 {
            buf.push_span(raw("ring_test_span", i), 8);
        }
        assert_eq!(buf.spans.len(), 8, "ring bounded");
        assert_eq!(buf.dropped_spans, 12);
        assert_eq!(buf.spans_base, 12, "base advances with evictions");
        assert_eq!(buf.spans.front().unwrap().start_us, 12, "oldest evicted");
        assert_eq!(buf.spans.back().unwrap().start_us, 19, "newest retained");

        // A watch taken at logical position 15 skips 15 - base = 3 records
        // and still sees the last 5 — the arithmetic Watch::spans uses.
        let skip = 15usize.saturating_sub(buf.spans_base);
        assert_eq!(buf.spans.iter().skip(skip).count(), 5);
        // A watch older than everything retained sees the whole ring.
        let skip = 2usize.saturating_sub(buf.spans_base);
        assert_eq!(buf.spans.iter().skip(skip).count(), 8);
    }

    #[test]
    fn event_ring_evicts_and_counts() {
        let mut buf = Buffer::default();
        for i in 0..5 {
            buf.push_event(
                EventRecord {
                    name: "ring_test_event",
                    fields: vec![],
                    thread: 0,
                    depth: 0,
                    at_us: i,
                },
                3,
            );
        }
        assert_eq!(buf.events.len(), 3);
        assert_eq!(buf.dropped_events, 2);
        assert_eq!(buf.events_base, 2);
    }

    #[test]
    fn default_capacity_is_sane() {
        // Mutating the global capacity here would race parallel tests;
        // the clamp in set_buffer_capacity is `.max(1)` by inspection.
        assert!(buffer_capacity() >= 1);
    }
}
