//! Central registry of every metric name the workspace records.
//!
//! String-keyed [`crate::metrics`] calls silently create a brand-new series
//! on a typo; this module closes that hole. Every metric is declared here
//! once — as a constant the call sites reference — together with its kind
//! and a one-line meaning, and the registry functions in `metrics` reject
//! (under `debug_assertions`) any name that is neither registered here nor
//! under a test-only prefix.
//!
//! A few series are *families* keyed by a runtime value (per-layer gauges,
//! per-endpoint latencies); those are declared with a trailing `*` wildcard
//! and constructed through the helper functions below so the prefix still
//! lives in exactly one place.
//!
//! [`reference_markdown`] renders the registry as the metrics-reference
//! table in `README.md`; a test pins the two together so the table cannot
//! rot.

/// What a registered series is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    /// Fixed-bound histogram (caller-supplied bucket bounds).
    Histogram,
    /// Log-bucketed latency histogram (see [`crate::hdr::LogHistogram`]).
    LogHistogram,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::LogHistogram => "log histogram",
        }
    }
}

/// One registered metric (or, with a trailing `*`, a metric family).
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Full name, or a prefix ending in `*` for runtime-keyed families.
    pub name: &'static str,
    pub kind: MetricKind,
    /// One-line meaning, used for the README reference table.
    pub help: &'static str,
}

// --- serving -------------------------------------------------------------
pub const SERVE_UP: &str = "serve/up";
pub const SERVE_DEGRADED: &str = "serve/degraded";
pub const SERVE_DEGRADED_TILES: &str = "serve/degraded_tiles";
pub const SERVE_STUCK_CELLS: &str = "serve/stuck_cells";
pub const SERVE_REPAIRED_COLUMNS: &str = "serve/repaired_columns";
pub const SERVE_MAX_FAULT_SCORE: &str = "serve/max_fault_score";
pub const SERVE_QUEUE_DEPTH: &str = "serve/queue_depth";
pub const SERVE_CONNECTIONS: &str = "serve/connections";
pub const SERVE_CONNECTIONS_REJECTED: &str = "serve/connections_rejected";
pub const SERVE_BAD_REQUESTS: &str = "serve/bad_requests";
pub const SERVE_HTTP_REQUESTS: &str = "serve/http_requests";
pub const SERVE_CLASSIFY_REQUESTS: &str = "serve/classify_requests";
pub const SERVE_CLASSIFY_BAD_INPUT: &str = "serve/classify_bad_input";
pub const SERVE_CLASSIFY_REJECTED: &str = "serve/classify_rejected";
pub const SERVE_CLASSIFY_TIMEOUT: &str = "serve/classify_timeout";
pub const SERVE_CLASSIFY_FAILED: &str = "serve/classify_failed";
pub const SERVE_CLASSIFY_OK: &str = "serve/classify_ok";
pub const SERVE_QUEUE_REJECTIONS: &str = "serve/queue_rejections";
pub const SERVE_BATCHES: &str = "serve/batches";
pub const SERVE_BATCH_SIZE: &str = "serve/batch_size";
pub const SERVE_INFER_US: &str = "serve/infer_us";
pub const SERVE_SLOW_REQUESTS: &str = "serve/slow_requests";
pub const SERVE_TRACE_SAMPLED: &str = "serve/trace_sampled";
pub const SERVE_TRACE_SPANS_DROPPED: &str = "serve/trace_spans_dropped";
pub const SERVE_FIDELITY_TIER: &str = "serve/fidelity_tier";
pub const SERVE_SURROGATE_VAL_MAX_ERR: &str = "serve/surrogate_val_max_err";
pub const SERVE_SURROGATE_VAL_RMS_ERR: &str = "serve/surrogate_val_rms_err";
pub const SERVE_DRIFT_ELAPSED_S: &str = "serve/drift_elapsed_s";
pub const SERVE_DRIFT_MEAN_DECAY: &str = "serve/drift_mean_decay";
pub const SERVE_HEALTH_SWEEPS: &str = "serve/health_sweeps";
pub const SERVE_SWEEP_US: &str = "serve/sweep_us";
pub const SERVE_PROBE_ACCURACY: &str = "serve/probe_accuracy";
pub const SERVE_PROBE_DEVIATION: &str = "serve/probe_deviation";
pub const SERVE_PROBE_CURRENT_DEVIATION: &str = "serve/probe_current_deviation";
pub const SERVE_MITIGATION_RUNG: &str = "serve/mitigation_rung";
pub const SERVE_DRIFT_REFRESHED_CELLS: &str = "serve/drift_refreshed_cells";
pub const SERVE_DRIFT_REMAPPED_COLUMNS: &str = "serve/drift_remapped_columns";
pub const SERVE_RELOADS: &str = "serve/reloads";
pub const SERVE_ADMISSION_SHED: &str = "serve/admission_shed";
pub const SERVE_OPEN_CONNECTIONS: &str = "serve/open_connections";
pub const SERVE_INFLIGHT: &str = "serve/inflight";
/// Family prefix for the per-replica classify-request counters.
const SERVE_REPLICA_REQUESTS_PREFIX: &str = "serve/replica_requests/";

/// Per-replica request counter name (`serve/replica_requests/<i>`), one
/// series per inference replica in the pool.
pub fn serve_replica_requests(replica: usize) -> String {
    format!("{SERVE_REPLICA_REQUESTS_PREFIX}{replica}")
}

/// Family prefix for the per-endpoint request-latency log histograms.
const SERVE_REQUEST_US_PREFIX: &str = "serve/request_us/";

/// Per-endpoint request-latency series name for a route label
/// (`classify`, `healthz`, `metrics`, `model`, `admin`, `other`).
pub fn serve_request_us(endpoint: &'static str) -> String {
    format!("{SERVE_REQUEST_US_PREFIX}{endpoint}")
}

/// Family prefix for the per-fidelity-tier classify counters.
const SERVE_CLASSIFY_TIER_PREFIX: &str = "serve/classify_tier/";

/// Per-tier classify-request counter name (`exact`, `surrogate`, `ideal`).
pub fn serve_classify_tier(tier: &'static str) -> String {
    format!("{SERVE_CLASSIFY_TIER_PREFIX}{tier}")
}

/// Family prefix for the per-fidelity-tier classify latency histograms.
const SERVE_CLASSIFY_TIER_US_PREFIX: &str = "serve/classify_tier_us/";

/// Per-tier classify-latency series name (`exact`, `surrogate`, `ideal`).
pub fn serve_classify_tier_us(tier: &'static str) -> String {
    format!("{SERVE_CLASSIFY_TIER_US_PREFIX}{tier}")
}

// --- simulator -----------------------------------------------------------
pub const SIM_STUCK_CELLS: &str = "sim/stuck_cells";
pub const SIM_REPROGRAMMED_CELLS: &str = "sim/reprogrammed_cells";
pub const SIM_PROGRAM_RETRIES: &str = "sim/program_retries";
pub const SIM_TILE_SOLVE_US: &str = "sim/tile_solve_us";
pub const SIM_TILE_SWEEPS: &str = "sim/tile_sweeps";
pub const SIM_NF_COLUMN: &str = "sim/nf_column";
pub const SIM_SOLVE_CACHE_HITS: &str = "sim/solve_cache_hits";
pub const SIM_SOLVE_CACHE_MISSES: &str = "sim/solve_cache_misses";
pub const SIM_TILE_FALLBACKS: &str = "sim/tile_fallbacks";
pub const SIM_TILE_FAILURES: &str = "sim/tile_failures";
pub const SIM_SOLVE_BATCH_CALLS: &str = "sim/solve_batch_calls";
pub const SIM_SOLVE_BATCH_SIZE: &str = "sim/solve_batch_size";
pub const SIM_SOLVE_BATCH_SWEEPS: &str = "sim/solve_batch_sweeps";

// --- mapping pipeline ----------------------------------------------------
pub const MAP_CROSSBARS: &str = "map/crossbars";
pub const MAP_SOLVER_ITERATIONS: &str = "map/solver_iterations";
pub const MAP_STUCK_CELLS: &str = "map/stuck_cells";
pub const MAP_REPAIRED_COLUMNS: &str = "map/repaired_columns";
pub const MAP_CORRECTED_CELLS: &str = "map/corrected_cells";
pub const MAP_DEGRADED_TILES: &str = "map/degraded_tiles";
pub const MAP_EMULATED_TILES: &str = "map/emulated_tiles";
const MAP_LAYER_PREFIX: &str = "map/layer";

/// Per-layer gauge name (`map/layer<i>/<stat>`), e.g.
/// `map_layer_gauge(3, "nf_mean")`.
pub fn map_layer_gauge(layer: usize, stat: &'static str) -> String {
    format!("{MAP_LAYER_PREFIX}{layer}/{stat}")
}

// --- learned crossbar surrogate ------------------------------------------
pub const SURROGATE_TRAIN_PAIRS: &str = "surrogate/train_pairs";
pub const SURROGATE_VAL_MAX_ERR: &str = "surrogate/val_max_err";
pub const SURROGATE_VAL_RMS_ERR: &str = "surrogate/val_rms_err";

// --- bench harness -------------------------------------------------------
pub const BENCH_SCENARIO_CACHE_HITS: &str = "bench/scenario_cache_hits";
pub const BENCH_SCENARIO_CACHE_MISSES: &str = "bench/scenario_cache_misses";

// --- observability self-metrics ------------------------------------------
pub const OBS_HISTOGRAM_SKIPPED: &str = "obs/histogram_skipped";
pub const OBS_TRACE_SPANS_DROPPED: &str = "obs/trace_spans_dropped";

/// The full registry, one entry per metric or family. Keep alphabetised
/// within each group; the README table renders in this order.
pub const REGISTRY: &[MetricDef] = &[
    MetricDef {
        name: SERVE_UP,
        kind: MetricKind::Gauge,
        help: "1 while the server is accepting, 0 after drain",
    },
    MetricDef {
        name: SERVE_DEGRADED,
        kind: MetricKind::Gauge,
        help: "1 when any tile is past the repair threshold",
    },
    MetricDef {
        name: SERVE_DEGRADED_TILES,
        kind: MetricKind::Gauge,
        help: "tiles still degraded after repair",
    },
    MetricDef {
        name: SERVE_STUCK_CELLS,
        kind: MetricKind::Gauge,
        help: "stuck cells reported by the served artifact",
    },
    MetricDef {
        name: SERVE_REPAIRED_COLUMNS,
        kind: MetricKind::Gauge,
        help: "spare-column repairs in the served artifact",
    },
    MetricDef {
        name: SERVE_MAX_FAULT_SCORE,
        kind: MetricKind::Gauge,
        help: "worst per-tile fault score in the served artifact",
    },
    MetricDef {
        name: SERVE_QUEUE_DEPTH,
        kind: MetricKind::Gauge,
        help: "classify requests waiting in the batch queue",
    },
    MetricDef {
        name: SERVE_CONNECTIONS,
        kind: MetricKind::Counter,
        help: "TCP connections accepted",
    },
    MetricDef {
        name: SERVE_CONNECTIONS_REJECTED,
        kind: MetricKind::Counter,
        help: "connections turned away with 503 (--max-connections cap)",
    },
    MetricDef {
        name: SERVE_BAD_REQUESTS,
        kind: MetricKind::Counter,
        help: "malformed HTTP requests answered 400",
    },
    MetricDef {
        name: SERVE_HTTP_REQUESTS,
        kind: MetricKind::Counter,
        help: "HTTP requests parsed (all routes)",
    },
    MetricDef {
        name: SERVE_CLASSIFY_REQUESTS,
        kind: MetricKind::Counter,
        help: "POST /v1/classify requests received",
    },
    MetricDef {
        name: SERVE_CLASSIFY_BAD_INPUT,
        kind: MetricKind::Counter,
        help: "classify bodies rejected with 400",
    },
    MetricDef {
        name: SERVE_CLASSIFY_REJECTED,
        kind: MetricKind::Counter,
        help: "classify requests shed with 503 (batch queue full)",
    },
    MetricDef {
        name: SERVE_CLASSIFY_TIMEOUT,
        kind: MetricKind::Counter,
        help: "classify requests answered 504 (inference backlog)",
    },
    MetricDef {
        name: SERVE_CLASSIFY_FAILED,
        kind: MetricKind::Counter,
        help: "classify requests failed in the forward pass (500)",
    },
    MetricDef {
        name: SERVE_CLASSIFY_OK,
        kind: MetricKind::Counter,
        help: "classify requests answered 200",
    },
    MetricDef {
        name: SERVE_QUEUE_REJECTIONS,
        kind: MetricKind::Counter,
        help: "batch-queue submits refused at capacity",
    },
    MetricDef {
        name: SERVE_BATCHES,
        kind: MetricKind::Counter,
        help: "micro-batches executed",
    },
    MetricDef {
        name: SERVE_BATCH_SIZE,
        kind: MetricKind::Histogram,
        help: "requests per executed micro-batch",
    },
    MetricDef {
        name: SERVE_INFER_US,
        kind: MetricKind::LogHistogram,
        help: "forward-pass wall time per micro-batch (µs)",
    },
    MetricDef {
        name: SERVE_SLOW_REQUESTS,
        kind: MetricKind::Counter,
        help: "requests slower than the --slow-ms threshold",
    },
    MetricDef {
        name: SERVE_TRACE_SAMPLED,
        kind: MetricKind::Counter,
        help: "classify requests given a trace ID (--trace-sample)",
    },
    MetricDef {
        name: SERVE_TRACE_SPANS_DROPPED,
        kind: MetricKind::Counter,
        help: "request spans evicted from the bounded trace ring",
    },
    MetricDef {
        name: "serve/request_us/*",
        kind: MetricKind::LogHistogram,
        help: "request latency per endpoint (µs): classify, healthz, metrics, model, admin, other",
    },
    MetricDef {
        name: SERVE_FIDELITY_TIER,
        kind: MetricKind::Gauge,
        help: "default fidelity tier (0 exact, 1 surrogate, 2 ideal)",
    },
    MetricDef {
        name: SERVE_SURROGATE_VAL_MAX_ERR,
        kind: MetricKind::Gauge,
        help: "embedded surrogate's held-out max current error vs the exact solver",
    },
    MetricDef {
        name: SERVE_SURROGATE_VAL_RMS_ERR,
        kind: MetricKind::Gauge,
        help: "embedded surrogate's held-out RMS current error vs the exact solver",
    },
    MetricDef {
        name: SERVE_DRIFT_ELAPSED_S,
        kind: MetricKind::Gauge,
        help: "simulated seconds of retention drift since the model was programmed",
    },
    MetricDef {
        name: SERVE_DRIFT_MEAN_DECAY,
        kind: MetricKind::Gauge,
        help: "mean per-cell decay fraction toward G_off at the last sweep",
    },
    MetricDef {
        name: SERVE_HEALTH_SWEEPS,
        kind: MetricKind::Counter,
        help: "background health sweeps executed",
    },
    MetricDef {
        name: SERVE_SWEEP_US,
        kind: MetricKind::LogHistogram,
        help: "wall time per health sweep, probe replay plus mitigation (µs)",
    },
    MetricDef {
        name: SERVE_PROBE_ACCURACY,
        kind: MetricKind::Gauge,
        help: "probe-set agreement with the pristine model at the last sweep",
    },
    MetricDef {
        name: SERVE_PROBE_DEVIATION,
        kind: MetricKind::Gauge,
        help: "mean |score deviation| of probe outputs vs the pristine model",
    },
    MetricDef {
        name: SERVE_PROBE_CURRENT_DEVIATION,
        kind: MetricKind::Gauge,
        help: "relative drift of batched probe column currents vs pristine devices",
    },
    MetricDef {
        name: SERVE_MITIGATION_RUNG,
        kind: MetricKind::Gauge,
        help: "ladder rung applied at the last sweep (0 none, 1 refresh, 2 remap, 3 reload)",
    },
    MetricDef {
        name: SERVE_DRIFT_REFRESHED_CELLS,
        kind: MetricKind::Counter,
        help: "cells rewritten by program-and-verify refresh sweeps",
    },
    MetricDef {
        name: SERVE_DRIFT_REMAPPED_COLUMNS,
        kind: MetricKind::Counter,
        help: "columns relocated onto spare devices by remap sweeps",
    },
    MetricDef {
        name: SERVE_RELOADS,
        kind: MetricKind::Counter,
        help: "hot artifact swaps through /admin/reload (plus rung-3 re-maps)",
    },
    MetricDef {
        name: SERVE_ADMISSION_SHED,
        kind: MetricKind::Counter,
        help: "classify requests shed with 429 before the batch queue",
    },
    MetricDef {
        name: SERVE_OPEN_CONNECTIONS,
        kind: MetricKind::Gauge,
        help: "connections currently registered with the event loop",
    },
    MetricDef {
        name: SERVE_INFLIGHT,
        kind: MetricKind::Gauge,
        help: "admitted classify requests awaiting an inference result",
    },
    MetricDef {
        name: "serve/replica_requests/*",
        kind: MetricKind::Counter,
        help: "classify requests executed per inference replica",
    },
    MetricDef {
        name: "serve/classify_tier/*",
        kind: MetricKind::Counter,
        help: "classify requests served per fidelity tier: exact, surrogate, ideal",
    },
    MetricDef {
        name: "serve/classify_tier_us/*",
        kind: MetricKind::LogHistogram,
        help: "classify latency per fidelity tier (µs): exact, surrogate, ideal",
    },
    MetricDef {
        name: SIM_STUCK_CELLS,
        kind: MetricKind::Counter,
        help: "cells that never verified during programming",
    },
    MetricDef {
        name: SIM_REPROGRAMMED_CELLS,
        kind: MetricKind::Counter,
        help: "cells rewritten by the program-and-verify loop",
    },
    MetricDef {
        name: SIM_PROGRAM_RETRIES,
        kind: MetricKind::Counter,
        help: "program-and-verify retry rounds",
    },
    MetricDef {
        name: SIM_TILE_SOLVE_US,
        kind: MetricKind::Histogram,
        help: "wall time per tile circuit solve (µs)",
    },
    MetricDef {
        name: SIM_TILE_SWEEPS,
        kind: MetricKind::Histogram,
        help: "relaxation sweeps per tile solve",
    },
    MetricDef {
        name: SIM_NF_COLUMN,
        kind: MetricKind::Histogram,
        help: "per-column non-ideality factor",
    },
    MetricDef {
        name: SIM_SOLVE_CACHE_HITS,
        kind: MetricKind::Counter,
        help: "solve-cache lookups that hit",
    },
    MetricDef {
        name: SIM_SOLVE_CACHE_MISSES,
        kind: MetricKind::Counter,
        help: "solve-cache lookups that missed",
    },
    MetricDef {
        name: SIM_TILE_FALLBACKS,
        kind: MetricKind::Counter,
        help: "tile solves that needed the 4× sweep-budget resume",
    },
    MetricDef {
        name: SIM_TILE_FAILURES,
        kind: MetricKind::Counter,
        help: "tile solves that never converged",
    },
    MetricDef {
        name: SIM_SOLVE_BATCH_CALLS,
        kind: MetricKind::Counter,
        help: "batched circuit-solve invocations",
    },
    MetricDef {
        name: SIM_SOLVE_BATCH_SIZE,
        kind: MetricKind::Histogram,
        help: "input vectors per batched circuit solve",
    },
    MetricDef {
        name: SIM_SOLVE_BATCH_SWEEPS,
        kind: MetricKind::Histogram,
        help: "relaxation sweeps per batch element",
    },
    MetricDef {
        name: MAP_CROSSBARS,
        kind: MetricKind::Counter,
        help: "crossbar tiles mapped",
    },
    MetricDef {
        name: MAP_SOLVER_ITERATIONS,
        kind: MetricKind::Counter,
        help: "total solver sweeps across the mapping",
    },
    MetricDef {
        name: MAP_STUCK_CELLS,
        kind: MetricKind::Counter,
        help: "stuck cells found while mapping",
    },
    MetricDef {
        name: MAP_REPAIRED_COLUMNS,
        kind: MetricKind::Counter,
        help: "columns remapped onto spares while mapping",
    },
    MetricDef {
        name: MAP_CORRECTED_CELLS,
        kind: MetricKind::Counter,
        help: "cells fixed by digital column correction",
    },
    MetricDef {
        name: MAP_DEGRADED_TILES,
        kind: MetricKind::Counter,
        help: "tiles left degraded after repair",
    },
    MetricDef {
        name: MAP_EMULATED_TILES,
        kind: MetricKind::Counter,
        help: "tiles folded through the learned surrogate instead of the circuit solver",
    },
    MetricDef {
        name: "map/layer*",
        kind: MetricKind::Gauge,
        help: "per-layer mapping stats: nf_mean, low_g_fraction, fault_score",
    },
    MetricDef {
        name: SURROGATE_TRAIN_PAIRS,
        kind: MetricKind::Counter,
        help: "training pairs generated from the exact solver for surrogate fits",
    },
    MetricDef {
        name: SURROGATE_VAL_MAX_ERR,
        kind: MetricKind::Gauge,
        help: "last trained surrogate's held-out max current error",
    },
    MetricDef {
        name: SURROGATE_VAL_RMS_ERR,
        kind: MetricKind::Gauge,
        help: "last trained surrogate's held-out RMS current error",
    },
    MetricDef {
        name: BENCH_SCENARIO_CACHE_HITS,
        kind: MetricKind::Counter,
        help: "scenario trainings served from the disk cache",
    },
    MetricDef {
        name: BENCH_SCENARIO_CACHE_MISSES,
        kind: MetricKind::Counter,
        help: "scenario trainings that actually trained",
    },
    MetricDef {
        name: OBS_HISTOGRAM_SKIPPED,
        kind: MetricKind::Counter,
        help: "NaN/negative values dropped by histogram_record",
    },
    MetricDef {
        name: OBS_TRACE_SPANS_DROPPED,
        kind: MetricKind::Counter,
        help: "spans/events evicted from the bounded global trace buffer",
    },
];

/// Whether a concrete metric name is declared in the registry.
///
/// Exact entries match literally; family entries (trailing `*`) match any
/// name starting with the prefix before the `*`. Names under `test/` or
/// `doc/` are always accepted — unit tests and doc examples record ad-hoc
/// series without registering them.
pub fn is_registered(name: &str) -> bool {
    if name.starts_with("test/") || name.starts_with("doc/") {
        return true;
    }
    REGISTRY.iter().any(|def| match def.name.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => def.name == name,
    })
}

/// Debug-only guard used by the `metrics` registry functions: panics (in
/// debug builds) when a call site records an unregistered name, which is
/// how typos used to mint phantom series.
#[track_caller]
pub(crate) fn assert_registered(name: &str) {
    debug_assert!(
        is_registered(name),
        "metric name {name:?} is not declared in xbar_obs::names::REGISTRY \
         (add a constant there, or use a test/-prefixed name in tests)"
    );
}

/// Renders the registry as the markdown metrics-reference table embedded in
/// `README.md` (a test asserts the README stays in sync).
pub fn reference_markdown() -> String {
    let mut out = String::from("| Metric | Type | Meaning |\n|---|---|---|\n");
    for def in REGISTRY {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            def.name,
            def.kind.as_str(),
            def.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_slash_pathed() {
        for (i, a) in REGISTRY.iter().enumerate() {
            assert!(a.name.contains('/'), "{} is not a path", a.name);
            assert!(!a.help.is_empty(), "{} lacks help text", a.name);
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate registry entry");
            }
        }
    }

    #[test]
    fn exact_wildcard_and_test_names_match() {
        assert!(is_registered(SERVE_UP));
        assert!(is_registered(&serve_request_us("classify")));
        assert!(is_registered(&map_layer_gauge(7, "nf_mean")));
        assert!(is_registered("test/anything/goes"));
        assert!(is_registered("doc/tiles"));
        assert!(!is_registered("serve/tpyo"));
        assert!(!is_registered(""));
    }

    #[test]
    fn constants_are_all_registered() {
        for name in [
            SERVE_UP,
            SERVE_QUEUE_DEPTH,
            SERVE_INFER_US,
            SERVE_SLOW_REQUESTS,
            SERVE_TRACE_SAMPLED,
            SERVE_TRACE_SPANS_DROPPED,
            SIM_TILE_SOLVE_US,
            SIM_SOLVE_CACHE_HITS,
            MAP_CROSSBARS,
            BENCH_SCENARIO_CACHE_HITS,
            OBS_HISTOGRAM_SKIPPED,
            OBS_TRACE_SPANS_DROPPED,
        ] {
            assert!(is_registered(name), "{name}");
        }
    }

    #[test]
    fn reference_table_lists_every_entry() {
        let table = reference_markdown();
        for def in REGISTRY {
            assert!(table.contains(def.name), "{} missing from table", def.name);
        }
    }

    #[test]
    fn readme_metrics_table_in_sync_with_registry() {
        // The README embeds the reference table; regenerate it with
        // `names::reference_markdown()` when adding a metric.
        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        for def in REGISTRY {
            assert!(
                readme.contains(&format!("`{}`", def.name)),
                "README.md metrics table is missing {:?}; paste the output of \
                 xbar_obs::names::reference_markdown() into the metrics section",
                def.name
            );
        }
    }
}
