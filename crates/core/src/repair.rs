//! Redundant-column repair and digital correction for faulty tiles.
//!
//! The paper shows pruned models are disproportionately fragile to crossbar
//! non-idealities; stuck-at device faults are the extreme case — a single
//! shorted cell can dominate a column current. Real deployments mitigate
//! this structurally, and this module implements the two standard schemes on
//! top of the program-and-verify reports from `xbar-sim`:
//!
//! * **Spare-column remap** — `k` physical columns per tile are reserved at
//!   partition time (the panel is cut into `cols − k`-wide tiles). After the
//!   read-verify pass localises the faulty columns, the worst offenders are
//!   swapped onto the cleanest spares (a column permutation, the same
//!   machinery as the R rearrangement) and the tile is re-programmed with
//!   the *same* physical seed: the devices do not move, the weights do.
//! * **Digital column correction** — when spares run out (or a column is
//!   not bad enough to spend one on), the known stuck-cell contribution
//!   `±ΔG/span · w_ref` is subtracted in the digital periphery. This is
//!   first-order exact: it ignores the IR-drop coupling of the stuck device,
//!   so it is applied per cell only where the read-back actually improves.
//!
//! A repair is only *accepted* when it reduces the tile's total weight
//! error, so repair never makes a tile worse than leaving it alone — the
//! invariant the workspace proptests pin down. Tiles whose post-repair fault
//! score still exceeds a threshold are flagged *degraded*; serving stays up
//! and reports them (see `xbar-serve`).

use crate::pipeline::MapError;
use xbar_sim::params::CrossbarParams;
use xbar_sim::program::FaultReport;
use xbar_sim::solve::SolveMethod;
use xbar_sim::tile::{simulate_tile, simulate_tile_seeded, TileOutcome};
use xbar_sim::MappingScale;
use xbar_tensor::Tensor;

/// Configuration of fault-tolerant tile mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Physical columns reserved as spares per tile. The usable tile width
    /// becomes `params.cols − spare_cols`.
    pub spare_cols: usize,
    /// Minimum per-column fault-attributable error (relative conductance
    /// units, see [`FaultReport::column_error`]) before a column is worth a
    /// spare.
    pub column_threshold: f64,
    /// Whether to subtract known stuck-cell contributions in the periphery
    /// for columns that did not get (or did not deserve) a spare.
    pub digital_correction: bool,
    /// Post-repair fault score above which a tile is flagged degraded.
    pub tile_fault_threshold: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            spare_cols: 2,
            column_threshold: 0.05,
            digital_correction: true,
            tile_fault_threshold: 0.5,
        }
    }
}

impl RepairConfig {
    /// Validates the repair configuration against the crossbar geometry.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the spares would consume the whole
    /// tile or a threshold is negative.
    pub fn validate(&self, params: &CrossbarParams) -> Result<(), String> {
        if self.spare_cols >= params.cols {
            return Err(format!(
                "spare_cols = {} leaves no usable columns on a {}-column crossbar",
                self.spare_cols, params.cols
            ));
        }
        if self.column_threshold < 0.0 || self.tile_fault_threshold < 0.0 {
            return Err(format!(
                "repair thresholds must be non-negative, got column_threshold = {}, \
                 tile_fault_threshold = {}",
                self.column_threshold, self.tile_fault_threshold
            ));
        }
        Ok(())
    }

    /// Usable (non-spare) columns per tile.
    pub fn active_cols(&self, params: &CrossbarParams) -> usize {
        params.cols.saturating_sub(self.spare_cols).max(1)
    }
}

/// What repair did to one tile.
#[derive(Debug, Clone, Default)]
pub struct TileRepair {
    /// Accepted column remaps as `(faulty logical column, spare physical
    /// column)` pairs.
    pub remapped: Vec<(usize, usize)>,
    /// Stuck cells whose contribution was digitally corrected.
    pub corrected_cells: usize,
    /// Fault score over the usable columns before any repair.
    pub pre_fault_score: f64,
    /// Fault score over the usable columns after remap + correction.
    pub fault_score: f64,
    /// Whether faulty columns above threshold remained after the spares ran
    /// out.
    pub spares_exhausted: bool,
    /// Whether the post-repair fault score still exceeds the degradation
    /// threshold.
    pub degraded: bool,
}

/// One mapped tile: the usable weights plus simulation and repair verdicts.
#[derive(Debug, Clone)]
pub struct MappedTile {
    /// The non-ideal weights for the tile's usable columns (what gets
    /// reassembled into the panel).
    pub weights: Tensor,
    /// The underlying simulation outcome (full physical width; the fault
    /// report is in logical column order).
    pub outcome: TileOutcome,
    /// Repair actions, when fault-tolerant mapping was enabled.
    pub repair: Option<TileRepair>,
}

/// Maps one tile without repair: straight simulation at full width.
pub fn map_tile_plain(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
) -> Result<MappedTile, MapError> {
    let outcome = simulate_tile(tile, scale, layer_abs_max, params, method, seed)?;
    Ok(MappedTile {
        weights: outcome.weights.clone(),
        outcome,
        repair: None,
    })
}

/// Maps one `rows × active` tile onto a crossbar with `spare_cols` reserved
/// columns, applying spare-column remap and digital correction as needed.
pub fn map_tile_with_repair(
    tile: &Tensor,
    scale: MappingScale,
    layer_abs_max: f32,
    params: &CrossbarParams,
    method: SolveMethod,
    seed: u64,
    repair_cfg: &RepairConfig,
) -> Result<MappedTile, MapError> {
    let active = tile.cols();
    let phys_cols = params.cols;
    debug_assert!(active <= phys_cols);
    // Zero-pad the spare columns: unused devices sit at Gmin.
    let padded = tile.submatrix_padded(0, 0, tile.rows(), phys_cols);
    let (base, base_state) =
        simulate_tile_seeded(&padded, scale, layer_abs_max, params, method, seed, None)?;
    let pre_fault_score = active_fault_score(&base.fault_report, active);

    let mut repair = TileRepair {
        pre_fault_score,
        fault_score: pre_fault_score,
        ..TileRepair::default()
    };

    // Rank faulty usable columns worst-first and spare columns cleanest-first.
    let faulty: Vec<(usize, f64)> = base
        .fault_report
        .worst_columns()
        .into_iter()
        .filter(|&(c, e)| c < active && e > repair_cfg.column_threshold)
        .collect();
    let mut spares: Vec<(usize, f64)> = (active..phys_cols)
        .map(|c| (c, base.fault_report.column_error[c]))
        .collect();
    spares.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    repair.spares_exhausted = faulty.len() > spares.len();

    let swaps: Vec<(usize, usize)> = faulty
        .iter()
        .zip(&spares)
        // Only move a column onto a spare that is actually cleaner.
        .filter(|((_, fe), (_, se))| se < fe)
        .map(|(&(f, _), &(s, _))| (f, s))
        .collect();

    let mut chosen = base.clone();
    if !swaps.is_empty() {
        let permuted = swap_columns(&padded, &swaps);
        // Re-simulate warm-started from the base solve with its node
        // voltages permuted the same way — the circuit is nearly the same,
        // so relaxation settles in a few sweeps instead of from cold.
        let seed_state = base_state.swap_columns(phys_cols, &swaps);
        let (mut remapped, _) = simulate_tile_seeded(
            &permuted,
            scale,
            layer_abs_max,
            params,
            method,
            seed,
            Some(&seed_state),
        )?;
        // Undo the swap so weights and the fault report are in logical
        // column order again (a swap is its own inverse).
        remapped.weights = swap_columns(&remapped.weights, &swaps);
        unswap_report(&mut remapped.fault_report, &swaps);
        // Accept the remap only if it genuinely reduces the tile's total
        // weight error — repair must never make a tile worse.
        if total_weight_error(&padded, &remapped.weights, active)
            <= total_weight_error(&padded, &chosen.weights, active)
        {
            chosen = remapped;
            repair.remapped = swaps;
        }
    }

    // Digital correction: subtract the known stuck contribution for cells
    // still faulty in usable columns, wherever the read-back improves.
    let mut corrected_severity = vec![0.0f64; phys_cols];
    if repair_cfg.digital_correction {
        let w_ref = chosen.w_ref;
        let mut weights = chosen.weights.clone();
        for cell in &chosen.fault_report.stuck_cells {
            if cell.col >= active || cell.row >= weights.rows() {
                continue;
            }
            let ideal = padded.at2(cell.row, cell.col);
            let read = weights.at2(cell.row, cell.col);
            let fixed = read - cell.weight_error(w_ref);
            if (fixed - ideal).abs() < (read - ideal).abs() {
                weights.set2(cell.row, cell.col, fixed);
                corrected_severity[cell.col] += cell.severity();
                repair.corrected_cells += 1;
            }
        }
        chosen.weights = weights;
    }

    repair.fault_score = (0..active)
        .map(|c| (chosen.fault_report.column_error[c] - corrected_severity[c]).max(0.0))
        .fold(0.0, f64::max);
    repair.degraded = repair.fault_score > repair_cfg.tile_fault_threshold;

    let weights = chosen.weights.submatrix_padded(0, 0, tile.rows(), active);
    Ok(MappedTile {
        weights,
        outcome: chosen,
        repair: Some(repair),
    })
}

/// The worst fault-attributable column error over the first `active`
/// columns.
fn active_fault_score(report: &FaultReport, active: usize) -> f64 {
    report
        .column_error
        .iter()
        .take(active)
        .copied()
        .fold(0.0, f64::max)
}

/// Returns a copy of `t` with each `(a, b)` column pair swapped.
fn swap_columns(t: &Tensor, swaps: &[(usize, usize)]) -> Tensor {
    let mut out = t.clone();
    for &(a, b) in swaps {
        for r in 0..t.rows() {
            let va = out.at2(r, a);
            let vb = out.at2(r, b);
            out.set2(r, a, vb);
            out.set2(r, b, va);
        }
    }
    out
}

/// Maps a physically-indexed fault report back to logical column order
/// after [`swap_columns`] has been undone.
fn unswap_report(report: &mut FaultReport, swaps: &[(usize, usize)]) {
    for &(a, b) in swaps {
        report.column_error.swap(a, b);
        for cell in &mut report.stuck_cells {
            if cell.col == a {
                cell.col = b;
            } else if cell.col == b {
                cell.col = a;
            }
        }
    }
}

/// Total absolute weight error of `actual` vs `ideal` over the first
/// `active` columns.
fn total_weight_error(ideal: &Tensor, actual: &Tensor, active: usize) -> f64 {
    let mut err = 0.0f64;
    for r in 0..ideal.rows() {
        for c in 0..active {
            err += f64::from((ideal.at2(r, c) - actual.at2(r, c)).abs());
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_sim::faults::FaultModel;

    fn faulty_params(rate: f64) -> CrossbarParams {
        let mut p = CrossbarParams::with_size(8).ideal();
        p.faults = FaultModel {
            stuck_at_gmin: rate * 0.7,
            stuck_at_gmax: rate * 0.3,
        };
        p
    }

    fn tile(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut s = seed | 1;
        Tensor::from_fn(&[rows, cols], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0
        })
    }

    fn weight_err(ideal: &Tensor, mapped: &Tensor) -> f64 {
        ideal
            .as_slice()
            .iter()
            .zip(mapped.as_slice())
            .map(|(a, b)| f64::from((a - b).abs()))
            .sum()
    }

    #[test]
    fn clean_tile_needs_no_repair() {
        let params = CrossbarParams::with_size(8).ideal();
        let t = tile(8, 6, 3);
        let mapped = map_tile_with_repair(
            &t,
            MappingScale::PerTileMax,
            1.0,
            &params,
            SolveMethod::LineRelaxation,
            0,
            &RepairConfig::default(),
        )
        .unwrap();
        let repair = mapped.repair.unwrap();
        assert!(repair.remapped.is_empty());
        assert_eq!(repair.corrected_cells, 0);
        assert_eq!(repair.fault_score, 0.0);
        assert!(!repair.degraded);
        assert_eq!(mapped.weights.shape(), &[8, 6]);
    }

    #[test]
    fn repair_reduces_weight_error_under_faults() {
        let params = faulty_params(0.05);
        let cfg = RepairConfig {
            column_threshold: 0.01,
            ..RepairConfig::default()
        };
        let mut improved = 0usize;
        let mut acted = 0usize;
        for seed in 0..8u64 {
            let t = tile(8, 6, 100 + seed);
            let plain = map_tile_with_repair(
                &t,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                seed,
                &RepairConfig {
                    spare_cols: 2,
                    digital_correction: false,
                    column_threshold: f64::INFINITY,
                    ..cfg
                },
            )
            .unwrap();
            let repaired = map_tile_with_repair(
                &t,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                seed,
                &cfg,
            )
            .unwrap();
            let e_plain = weight_err(&t, &plain.weights);
            let e_rep = weight_err(&t, &repaired.weights);
            assert!(
                e_rep <= e_plain + 1e-9,
                "seed {seed}: repair made things worse ({e_rep} vs {e_plain})"
            );
            let r = repaired.repair.unwrap();
            if !r.remapped.is_empty() || r.corrected_cells > 0 {
                acted += 1;
            }
            if e_rep < e_plain - 1e-9 {
                improved += 1;
            }
        }
        assert!(acted > 0, "at 5% faults repair must trigger at least once");
        assert!(improved > 0, "repair must actually help at least once");
    }

    #[test]
    fn fault_score_drops_after_repair() {
        let params = faulty_params(0.08);
        let cfg = RepairConfig {
            column_threshold: 0.01,
            ..RepairConfig::default()
        };
        let mut pre_total = 0.0;
        let mut post_total = 0.0;
        for seed in 0..6u64 {
            let t = tile(8, 6, 40 + seed);
            let mapped = map_tile_with_repair(
                &t,
                MappingScale::PerTileMax,
                1.0,
                &params,
                SolveMethod::LineRelaxation,
                seed,
                &cfg,
            )
            .unwrap();
            let r = mapped.repair.unwrap();
            assert!(r.fault_score <= r.pre_fault_score + 1e-12);
            pre_total += r.pre_fault_score;
            post_total += r.fault_score;
        }
        assert!(
            post_total < pre_total,
            "repair must reduce aggregate fault score: {post_total} vs {pre_total}"
        );
    }

    #[test]
    fn config_validation_catches_bad_geometry() {
        let params = CrossbarParams::with_size(8);
        let bad = RepairConfig {
            spare_cols: 8,
            ..RepairConfig::default()
        };
        assert!(bad.validate(&params).unwrap_err().contains("usable"));
        let neg = RepairConfig {
            column_threshold: -1.0,
            ..RepairConfig::default()
        };
        assert!(neg.validate(&params).unwrap_err().contains("non-negative"));
        assert!(RepairConfig::default().validate(&params).is_ok());
        assert_eq!(RepairConfig::default().active_cols(&params), 6);
    }

    #[test]
    fn swap_columns_is_involution_and_report_follows() {
        let t = Tensor::from_fn(&[2, 4], |i| i as f32);
        let swaps = vec![(0, 3)];
        let once = swap_columns(&t, &swaps);
        assert_eq!(once.at2(0, 0), 3.0);
        assert_eq!(once.at2(0, 3), 0.0);
        assert_eq!(swap_columns(&once, &swaps), t);
        let mut report = FaultReport::clean(4);
        report.column_error = vec![0.5, 0.0, 0.0, 0.1];
        unswap_report(&mut report, &swaps);
        assert_eq!(report.column_error, vec![0.1, 0.0, 0.0, 0.5]);
    }
}
