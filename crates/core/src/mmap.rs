//! Read-only memory-mapped files for zero-copy artifact loading.
//!
//! [`MappedFile`] maps a file `PROT_READ`/`MAP_PRIVATE` and exposes it as a
//! `&[u8]`, so the `XBARMDL1` tensor-block parser reads weights straight
//! out of the page cache instead of copying the file through a `BufReader`.
//! The raw `mmap`/`munmap` calls are declared directly (`std` already links
//! the platform C library); on targets without a 64-bit `mmap` ABI the type
//! transparently falls back to reading the file into memory, so callers
//! never need to care which path they got.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A whole file mapped read-only into the address space (or, on targets
/// without the 64-bit `mmap` ABI, read into an owned buffer).
pub struct MappedFile {
    #[cfg(all(unix, target_pointer_width = "64"))]
    ptr: *const u8,
    #[cfg(all(unix, target_pointer_width = "64"))]
    len: usize,
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    buf: Vec<u8>,
}

// The mapping is private and read-only: no writer can race the readers,
// so sharing the pointer across threads is sound.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for MappedFile {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened, its length cannot be read, or
    /// the kernel refuses the mapping.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        Self::from_file(&file)
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn from_file(file: &File) -> io::Result<Self> {
        use std::os::fd::AsRawFd;

        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // Zero-length mmap is EINVAL; an empty slice needs no mapping.
            return Ok(MappedFile {
                ptr: std::ptr::null(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedFile {
            ptr: ptr.cast_const().cast(),
            len,
        })
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn from_file(file: &File) -> io::Result<Self> {
        use std::io::Read;
        let mut buf = Vec::new();
        (&*file).take(u64::MAX).read_to_end(&mut buf)?;
        Ok(MappedFile { buf })
    }

    /// The mapped bytes. `&[u8]` implements [`Read`], so this plugs
    /// straight into the streaming artifact loaders.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            if self.len == 0 {
                &[]
            } else {
                // Sound: ptr/len came from a successful PROT_READ mapping
                // that lives exactly as long as `self`.
                unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
            }
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            &self.buf
        }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MappedFile {
    fn drop(&mut self) {
        if self.len > 0 {
            // Failure here leaks the mapping but cannot corrupt memory.
            unsafe { sys::munmap(self.ptr.cast_mut().cast(), self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("xbar_mmap_{}_{tag}", std::process::id()))
    }

    #[test]
    fn maps_bytes_identically_to_read() {
        let path = temp_path("bytes");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(MappedFile::open(temp_path("missing_never_written")).is_err());
    }

    #[test]
    fn mapped_slice_reads_as_a_reader() {
        use std::io::Read;
        let path = temp_path("reader");
        std::fs::write(&path, b"stream me").unwrap();
        let map = MappedFile::open(&path).unwrap();
        let mut out = String::new();
        map.as_slice().read_to_string(&mut out).unwrap();
        assert_eq!(out, "stream me");
        drop(map);
        std::fs::remove_file(&path).ok();
    }
}
