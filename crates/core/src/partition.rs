//! Partitioning panels into fixed-size crossbar tiles and reassembling them.

use xbar_tensor::Tensor;

/// One tile cut from a panel: the padded weight block plus its origin.
#[derive(Debug, Clone)]
pub struct Tile {
    /// Row offset of this tile within its panel.
    pub row_start: usize,
    /// Column offset of this tile within its panel.
    pub col_start: usize,
    /// `rows × cols` weights, zero-padded past the panel edge (zeros map to
    /// `Gmin`, like unused crossbar cells).
    pub weights: Tensor,
}

/// Cuts a panel into `rows × cols` tiles, padding edge tiles with zeros.
///
/// # Panics
///
/// Panics if `panel` is not 2-D or a tile dimension is zero.
pub fn partition(panel: &Tensor, rows: usize, cols: usize) -> Vec<Tile> {
    assert_eq!(panel.ndim(), 2, "panels are 2-D");
    assert!(rows > 0 && cols > 0, "tile dims must be non-zero");
    let (pr, pc) = (panel.rows(), panel.cols());
    let mut tiles = Vec::with_capacity(pr.div_ceil(rows) * pc.div_ceil(cols));
    let mut r0 = 0;
    while r0 < pr {
        let mut c0 = 0;
        while c0 < pc {
            tiles.push(Tile {
                row_start: r0,
                col_start: c0,
                weights: panel.submatrix_padded(r0, c0, rows, cols),
            });
            c0 += cols;
        }
        r0 += rows;
    }
    tiles
}

/// Reassembles a panel of shape `[panel_rows, panel_cols]` from (possibly
/// perturbed) tiles produced by [`partition`]; padding cells are discarded.
///
/// # Panics
///
/// Panics if a tile lies entirely outside the panel.
pub fn reassemble(tiles: &[Tile], panel_rows: usize, panel_cols: usize) -> Tensor {
    let mut panel = Tensor::zeros(&[panel_rows, panel_cols]);
    for tile in tiles {
        assert!(
            tile.row_start < panel_rows && tile.col_start < panel_cols,
            "tile origin ({}, {}) outside panel {}x{}",
            tile.row_start,
            tile.col_start,
            panel_rows,
            panel_cols
        );
        panel.write_submatrix(tile.row_start, tile.col_start, &tile.weights);
    }
    panel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tiling_round_trips() {
        let panel = Tensor::from_fn(&[8, 6], |i| i as f32);
        let tiles = partition(&panel, 4, 3);
        assert_eq!(tiles.len(), 4);
        assert_eq!(reassemble(&tiles, 8, 6), panel);
    }

    #[test]
    fn ragged_tiling_pads_and_round_trips() {
        let panel = Tensor::from_fn(&[5, 7], |i| (i + 1) as f32);
        let tiles = partition(&panel, 4, 4);
        assert_eq!(tiles.len(), 4);
        // Edge tile is padded with zeros.
        let last = tiles.last().unwrap();
        assert_eq!(last.weights.shape(), &[4, 4]);
        assert_eq!(last.weights.at2(1, 3), 0.0); // beyond row 5 / col 7
        assert_eq!(reassemble(&tiles, 5, 7), panel);
    }

    #[test]
    fn perturbed_tiles_land_in_place() {
        let panel = Tensor::ones(&[4, 4]);
        let mut tiles = partition(&panel, 2, 2);
        for t in &mut tiles {
            t.weights = t.weights.scale(2.0);
        }
        let back = reassemble(&tiles, 4, 4);
        assert!(back.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn tile_count_formula() {
        let panel = Tensor::zeros(&[100, 33]);
        let tiles = partition(&panel, 32, 32);
        assert_eq!(tiles.len(), 4 * 2);
    }

    #[test]
    fn tile_larger_than_panel_is_single_padded_tile() {
        let panel = Tensor::ones(&[3, 2]);
        let tiles = partition(&panel, 8, 8);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].weights.shape(), &[8, 8]);
        let sum: f32 = tiles[0].weights.as_slice().iter().sum();
        assert_eq!(sum, 6.0);
        assert_eq!(reassemble(&tiles, 3, 2), panel);
    }

    #[test]
    #[should_panic(expected = "outside panel")]
    fn reassemble_rejects_stray_tile() {
        let tile = Tile {
            row_start: 10,
            col_start: 0,
            weights: Tensor::zeros(&[2, 2]),
        };
        reassemble(&[tile], 4, 4);
    }
}
