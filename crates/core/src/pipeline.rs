//! The end-to-end crossbar mapping pipeline (paper Fig. 2).

use crate::partition::{partition, reassemble, Tile};
use crate::rearrange::{ColumnOrder, Rearrangement};
use crate::repair::{map_tile_plain, map_tile_with_repair, MappedTile, RepairConfig};
use std::fmt;
use xbar_linalg::SolveStats;
use xbar_nn::Sequential;
use xbar_obs::names;
use xbar_prune::transform::{transform, TransformedLayer};
use xbar_prune::unroll::{unrolled_matrices, write_back};
use xbar_prune::PruneMethod;
use xbar_sim::conductance::{conductances_to_weights, ConductanceMatrix, DifferentialPair};
use xbar_sim::nf::NfAccumulator;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::SolveMethod;
use xbar_sim::tile::{prepare_tile_conductances, TileOutcome};
use xbar_sim::MappingScale;
use xbar_tensor::{ShapeError, Tensor};

/// Errors from the mapping pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// Tensor shape inconsistency.
    Shape(ShapeError),
    /// Circuit solver failure.
    Solve(xbar_linalg::SolveError),
    /// The mapping configuration itself is unusable.
    InvalidConfig(String),
    /// A learned tile emulator failed or disagreed with the mapping
    /// geometry.
    Emulator(String),
    /// A pipeline stage failed; wraps the underlying error with which
    /// stage/layer/tile died.
    Stage {
        /// Human-readable stage description, e.g.
        /// `"simulate layer 3 panel 0 tile 7"`.
        stage: String,
        /// The underlying failure.
        source: Box<MapError>,
    },
    /// A tile worker thread panicked; the pipeline reports it instead of
    /// unwinding through the caller.
    WorkerPanic {
        /// Which stage the worker was running.
        stage: String,
    },
}

impl MapError {
    /// Wraps this error with the pipeline stage it occurred in.
    pub fn in_stage(self, stage: impl Into<String>) -> Self {
        MapError::Stage {
            stage: stage.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Shape(e) => write!(f, "shape error: {e}"),
            MapError::Solve(e) => write!(f, "circuit solve error: {e}"),
            MapError::InvalidConfig(msg) => write!(f, "invalid mapping configuration: {msg}"),
            MapError::Emulator(msg) => write!(f, "tile emulator error: {msg}"),
            MapError::Stage { stage, source } => write!(f, "{stage}: {source}"),
            MapError::WorkerPanic { stage } => {
                write!(f, "{stage}: tile worker thread panicked")
            }
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Stage { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ShapeError> for MapError {
    fn from(e: ShapeError) -> Self {
        MapError::Shape(e)
    }
}

impl From<xbar_linalg::SolveError> for MapError {
    fn from(e: xbar_linalg::SolveError) -> Self {
        match e {
            // A config error from deep inside a tile solve is the same
            // class of failure `MapConfig::validate` reports up front —
            // surface it as such instead of as an opaque solver error.
            xbar_linalg::SolveError::Config(msg) => MapError::InvalidConfig(msg),
            other => MapError::Solve(other),
        }
    }
}

/// Configuration of one crossbar mapping run.
#[derive(Debug, Clone, Copy)]
pub struct MapConfig {
    /// Crossbar tile parameters (size, parasitics, variation).
    pub params: CrossbarParams,
    /// Which `T` transformation to apply (must match how the model was
    /// pruned; `None` for unpruned models).
    pub method: PruneMethod,
    /// Optional R transformation applied per panel before partitioning.
    pub rearrange: Option<ColumnOrder>,
    /// Weight→conductance reference scale.
    pub scale: MappingScale,
    /// Circuit solver.
    pub solve: SolveMethod,
    /// Seed for device variation (deterministic per tile).
    pub seed: u64,
    /// Fault-tolerant mapping: spare-column remap and digital correction
    /// (`None` maps without repair, the historical behaviour).
    pub repair: Option<RepairConfig>,
}

impl Default for MapConfig {
    fn default() -> Self {
        Self {
            params: CrossbarParams::default(),
            method: PruneMethod::None,
            rearrange: None,
            scale: MappingScale::PerLayerMax,
            solve: SolveMethod::LineRelaxation,
            seed: 0,
            repair: None,
        }
    }
}

impl MapConfig {
    /// Usable tile width: the crossbar's columns minus any reserved spares.
    pub fn active_cols(&self) -> usize {
        match &self.repair {
            Some(r) => r.active_cols(&self.params),
            None => self.params.cols,
        }
    }

    /// Validates the full mapping configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] with a descriptive message.
    pub fn validate(&self) -> Result<(), MapError> {
        self.params
            .validate()
            .map_err(|e| MapError::InvalidConfig(e.to_string()))?;
        if let Some(repair) = &self.repair {
            repair
                .validate(&self.params)
                .map_err(MapError::InvalidConfig)?;
        }
        Ok(())
    }
}

/// Per-layer mapping statistics.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Index of the layer within the model.
    pub layer_index: usize,
    /// Crossbar tiles used by this layer.
    pub crossbar_count: usize,
    /// NF observations across this layer's tiles.
    pub nf: NfAccumulator,
    /// Mean low-conductance-device fraction across tiles.
    pub low_g_fraction: f64,
    /// Total circuit-solver iterations over every tile (both arrays).
    pub solver_iterations: u64,
    /// Worst relative residual reported by any tile solve.
    pub max_residual: f64,
    /// Tiles whose first solve attempt did not converge (rescued by the
    /// extended-sweep fallback in `xbar-sim`).
    pub non_converged: usize,
    /// Stuck devices reported by read-verify across this layer's tiles.
    pub stuck_cells: usize,
    /// Cell re-writes issued by the program-and-verify retry loop.
    pub reprogrammed_cells: usize,
    /// Faulty columns remapped onto spares.
    pub repaired_columns: usize,
    /// Stuck cells whose contribution was digitally corrected.
    pub corrected_cells: usize,
    /// Tiles whose post-repair fault score exceeded the degradation
    /// threshold.
    pub degraded_tiles: usize,
    /// Worst post-repair tile fault score in this layer.
    pub max_fault_score: f64,
}

/// Aggregate mapping statistics.
#[derive(Debug, Clone, Default)]
pub struct MapReport {
    /// Per-layer records in network order.
    pub layers: Vec<LayerReport>,
}

impl MapReport {
    /// Total crossbars used by the model.
    pub fn crossbar_count(&self) -> usize {
        self.layers.iter().map(|l| l.crossbar_count).sum()
    }

    /// Mean NF over every column of every tile of every layer.
    pub fn mean_nf(&self) -> f64 {
        let mut acc = NfAccumulator::new();
        for l in &self.layers {
            acc.merge(&l.nf);
        }
        acc.mean()
    }

    /// Total circuit-solver iterations across every layer.
    pub fn solver_iterations(&self) -> u64 {
        self.layers.iter().map(|l| l.solver_iterations).sum()
    }

    /// Worst relative solve residual across every layer.
    pub fn max_residual(&self) -> f64 {
        self.layers.iter().fold(0.0, |m, l| m.max(l.max_residual))
    }

    /// Tiles (over all layers) that needed the non-convergence fallback.
    pub fn non_converged(&self) -> usize {
        self.layers.iter().map(|l| l.non_converged).sum()
    }

    /// Total stuck devices found by read-verify.
    pub fn stuck_cells(&self) -> usize {
        self.layers.iter().map(|l| l.stuck_cells).sum()
    }

    /// Total cell re-writes issued by program-and-verify retries.
    pub fn reprogrammed_cells(&self) -> usize {
        self.layers.iter().map(|l| l.reprogrammed_cells).sum()
    }

    /// Total faulty columns remapped onto spares.
    pub fn repaired_columns(&self) -> usize {
        self.layers.iter().map(|l| l.repaired_columns).sum()
    }

    /// Total stuck cells digitally corrected in the periphery.
    pub fn corrected_cells(&self) -> usize {
        self.layers.iter().map(|l| l.corrected_cells).sum()
    }

    /// Tiles still degraded after repair, over all layers.
    pub fn degraded_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.degraded_tiles).sum()
    }

    /// Worst post-repair tile fault score across the model.
    pub fn max_fault_score(&self) -> f64 {
        self.layers
            .iter()
            .fold(0.0, |m, l| m.max(l.max_fault_score))
    }

    /// Crossbar-count-weighted mean low-conductance fraction.
    pub fn mean_low_g_fraction(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.crossbar_count).sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.low_g_fraction * l.crossbar_count as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// A learned stand-in for the exact circuit solver at mapping time.
///
/// Implementations (the `xbar-surrogate` crate) predict the non-ideal column
/// currents of whole conductance arrays driven at the nominal read voltage,
/// orders of magnitude faster than a relaxation solve. The pipeline turns
/// the predicted currents into per-column effective-conductance scales and
/// folds them into `W''` the same way the exact path folds `G'` into `W'`.
pub trait TileEmulator: Sync {
    /// The `(rows, cols)` array geometry the emulator was trained for.
    fn tile_shape(&self) -> (usize, usize);

    /// Predicted non-ideal column currents for each array in `arrays`, every
    /// row driven at the nominal read voltage. One `cols`-long current
    /// vector per input array, in order.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the arrays do not fit the
    /// emulator's geometry or the underlying model fails.
    fn column_currents_batch(&self, arrays: &[ConductanceMatrix]) -> Result<Vec<Vec<f64>>, String>;
}

/// Maps every weighted layer of `model` onto non-ideal crossbars and returns
/// a clone of the model carrying the non-ideal weights `W'`, plus statistics.
///
/// The input model's weights must already reflect the pruning pattern
/// matching `cfg.method` (masks applied).
///
/// # Errors
///
/// Returns [`MapError`] on shape inconsistencies or circuit-solver failure.
pub fn map_to_crossbars(
    model: &Sequential,
    cfg: &MapConfig,
) -> Result<(Sequential, MapReport), MapError> {
    map_to_crossbars_with(model, cfg, None)
}

/// [`map_to_crossbars`], with the per-tile circuit solve optionally replaced
/// by a learned [`TileEmulator`].
///
/// With `emulator: None` this is exactly the exact pipeline. With an
/// emulator, every tile is still *programmed* identically (quantization,
/// write noise, stuck-at faults, per-tile seeds — see
/// [`xbar_sim::tile::prepare_tile_conductances`]), but the circuit solve is
/// replaced by one batched emulator call per panel, and the non-ideal
/// weights are recovered from the predicted column currents at per-column
/// granularity. Fault-tolerant repair requires the exact solver's
/// per-device verdicts and is rejected when an emulator is supplied.
///
/// # Errors
///
/// Returns [`MapError`] on shape inconsistencies, circuit-solver failure,
/// a repair config combined with an emulator, or an emulator whose tile
/// shape disagrees with `cfg`.
pub fn map_to_crossbars_with(
    model: &Sequential,
    cfg: &MapConfig,
    emulator: Option<&dyn TileEmulator>,
) -> Result<(Sequential, MapReport), MapError> {
    cfg.validate()?;
    if let Some(em) = emulator {
        if cfg.repair.is_some() {
            return Err(MapError::InvalidConfig(
                "surrogate-emulated mapping cannot honour fault-tolerant repair \
                 (repair needs the exact solver's per-device verdicts); map with \
                 the exact backend or drop the repair config"
                    .into(),
            ));
        }
        let (rows, cols) = em.tile_shape();
        if (rows, cols) != (cfg.params.rows, cfg.params.cols) {
            return Err(MapError::Emulator(format!(
                "emulator was trained for {rows}×{cols} tiles but the mapping \
                 uses {}×{} crossbars",
                cfg.params.rows, cfg.params.cols
            )));
        }
    }
    let _map_span = xbar_obs::span!(
        "map",
        rows = cfg.params.rows,
        cols = cfg.params.cols,
        seed = cfg.seed
    );
    // Spare columns shrink the usable tile width: the panel is cut into
    // narrower tiles and the spares live past the active region.
    let active_cols = cfg.active_cols();
    let mut noisy = model.clone();
    let mut report = MapReport::default();

    // Phase 1 — plan: transform, rearrange, and partition every layer up
    // front, so the solve phase sees one flat list of independent tile jobs
    // spanning the whole model instead of one join barrier per panel. The
    // emulator path keeps its one-batched-call-per-panel shape and is
    // resolved here; exact tiles are left for the shared pool.
    let mut layers: Vec<LayerWork> = Vec::new();
    for ul in unrolled_matrices(model) {
        let _layer_span = xbar_obs::span!("map_layer", layer = ul.layer_index);
        let layer_abs_max = ul.matrix.abs_max();
        let transformed: TransformedLayer =
            transform(&ul.matrix, cfg.method, cfg.params.rows, active_cols);
        let mut panels: Vec<PanelWork> = Vec::with_capacity(transformed.panels.len());
        for (panel_idx, panel) in transformed.panels.iter().enumerate() {
            let rearrangement = match cfg.rearrange {
                Some(order) => Rearrangement::compute(&panel.matrix, order, active_cols),
                None => Rearrangement::identity(panel.matrix.cols()),
            };
            let arranged = rearrangement.apply(&panel.matrix);
            let tiles = partition(&arranged, cfg.params.rows, active_cols);
            let seed_base = tile_seed_base(cfg.seed, ul.layer_index, panel_idx);
            let mapped = match emulator {
                None => None,
                Some(em) => Some(
                    emulate_tiles(&tiles, cfg, layer_abs_max, seed_base, em).map_err(|e| {
                        e.in_stage(format!(
                            "simulate layer {} panel {panel_idx}",
                            ul.layer_index
                        ))
                    })?,
                ),
            };
            panels.push(PanelWork {
                rearrangement,
                arranged_rows: arranged.rows(),
                arranged_cols: arranged.cols(),
                tiles,
                seed_base,
                mapped,
            });
        }
        layers.push(LayerWork {
            layer_index: ul.layer_index,
            layer_abs_max,
            transformed,
            panels,
        });
    }

    // Phase 2 — solve: every exact tile of every layer/panel goes onto one
    // work-stealing pool; a fast layer's workers steal straight into the
    // next layer's tiles with no per-layer join.
    let jobs: Vec<TileJob> = layers
        .iter()
        .enumerate()
        .flat_map(|(l, lw)| {
            lw.panels
                .iter()
                .enumerate()
                .filter(|(_, pw)| pw.mapped.is_none())
                .flat_map(move |(p, pw)| (0..pw.tiles.len()).map(move |t| TileJob(l, p, t)))
        })
        .collect();
    if !jobs.is_empty() {
        let mut solved = solve_tile_jobs(&layers, &jobs, cfg)?.into_iter();
        for lw in &mut layers {
            for pw in &mut lw.panels {
                if pw.mapped.is_none() {
                    pw.mapped = Some(
                        (0..pw.tiles.len())
                            .map(|_| solved.next().expect("one result per planned tile"))
                            .collect(),
                    );
                }
            }
        }
    }

    // Phase 3 — stitch: fold the solved tiles back into panels, layers, and
    // the model, in network order, exactly as the per-layer loop used to.
    for mut lw in layers {
        let mut layer_report = LayerReport {
            layer_index: lw.layer_index,
            crossbar_count: 0,
            nf: NfAccumulator::new(),
            low_g_fraction: 0.0,
            solver_iterations: 0,
            max_residual: 0.0,
            non_converged: 0,
            stuck_cells: 0,
            reprogrammed_cells: 0,
            repaired_columns: 0,
            corrected_cells: 0,
            degraded_tiles: 0,
            max_fault_score: 0.0,
        };
        let mut low_g_sum = 0.0f64;
        let mut noisy_panels: Vec<Tensor> = Vec::with_capacity(lw.panels.len());
        for pw in &mut lw.panels {
            let mapped = pw.mapped.take().expect("every panel resolved");
            for (tile, mapped_tile) in pw.tiles.iter_mut().zip(&mapped) {
                let outcome = &mapped_tile.outcome;
                tile.weights = mapped_tile.weights.clone();
                layer_report.nf.push(outcome.nf());
                low_g_sum += outcome.low_g_fraction;
                layer_report.solver_iterations += outcome.stats.iterations as u64;
                layer_report.max_residual = layer_report.max_residual.max(outcome.stats.residual);
                layer_report.non_converged += usize::from(outcome.fallback);
                layer_report.stuck_cells += outcome.fault_report.stuck_count();
                layer_report.reprogrammed_cells += outcome.fault_report.reprogrammed;
                if let Some(repair) = &mapped_tile.repair {
                    layer_report.repaired_columns += repair.remapped.len();
                    layer_report.corrected_cells += repair.corrected_cells;
                    layer_report.degraded_tiles += usize::from(repair.degraded);
                    layer_report.max_fault_score =
                        layer_report.max_fault_score.max(repair.fault_score);
                } else {
                    layer_report.max_fault_score = layer_report
                        .max_fault_score
                        .max(outcome.fault_report.fault_score());
                }
            }
            layer_report.crossbar_count += pw.tiles.len();
            let noisy_arranged = reassemble(&pw.tiles, pw.arranged_rows, pw.arranged_cols);
            noisy_panels.push(pw.rearrangement.invert(&noisy_arranged));
        }
        layer_report.low_g_fraction = if layer_report.crossbar_count == 0 {
            0.0
        } else {
            low_g_sum / layer_report.crossbar_count as f64
        };
        let noisy_matrix = lw.transformed.invert(&noisy_panels);
        write_back(&mut noisy, lw.layer_index, &noisy_matrix);
        xbar_obs::metrics::counter_add(names::MAP_CROSSBARS, layer_report.crossbar_count as u64);
        xbar_obs::metrics::counter_add(
            names::MAP_SOLVER_ITERATIONS,
            layer_report.solver_iterations,
        );
        xbar_obs::metrics::gauge_set(
            &names::map_layer_gauge(lw.layer_index, "nf_mean"),
            layer_report.nf.mean(),
        );
        xbar_obs::metrics::gauge_set(
            &names::map_layer_gauge(lw.layer_index, "low_g_fraction"),
            layer_report.low_g_fraction,
        );
        if layer_report.stuck_cells > 0 || layer_report.repaired_columns > 0 {
            xbar_obs::metrics::counter_add(names::MAP_STUCK_CELLS, layer_report.stuck_cells as u64);
            xbar_obs::metrics::counter_add(
                names::MAP_REPAIRED_COLUMNS,
                layer_report.repaired_columns as u64,
            );
            xbar_obs::metrics::counter_add(
                names::MAP_CORRECTED_CELLS,
                layer_report.corrected_cells as u64,
            );
            xbar_obs::metrics::counter_add(
                names::MAP_DEGRADED_TILES,
                layer_report.degraded_tiles as u64,
            );
            xbar_obs::metrics::gauge_set(
                &names::map_layer_gauge(lw.layer_index, "fault_score"),
                layer_report.max_fault_score,
            );
        }
        report.layers.push(layer_report);
    }
    Ok((noisy, report))
}

fn tile_seed_base(seed: u64, layer_index: usize, panel_idx: usize) -> u64 {
    seed ^ (layer_index as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (panel_idx as u64).wrapping_mul(0xD1B54A32D192ED03)
}

/// Maps one tile, with or without fault-tolerant repair, labelling failures
/// with the tile index.
fn map_one_tile(
    tile: &Tile,
    cfg: &MapConfig,
    layer_abs_max: f32,
    seed: u64,
    tile_idx: usize,
) -> Result<MappedTile, MapError> {
    let result = match &cfg.repair {
        Some(repair) => map_tile_with_repair(
            &tile.weights,
            cfg.scale,
            layer_abs_max,
            &cfg.params,
            cfg.solve,
            seed,
            repair,
        ),
        None => map_tile_plain(
            &tile.weights,
            cfg.scale,
            layer_abs_max,
            &cfg.params,
            cfg.solve,
            seed,
        ),
    };
    result.map_err(|e| e.in_stage(format!("tile {tile_idx}")))
}

/// One planned-but-unsolved tile: `(layer slot, panel index, tile index)`
/// into the phase-1 [`LayerWork`] plan.
#[derive(Debug, Clone, Copy)]
struct TileJob(usize, usize, usize);

/// One panel of a layer after transform/rearrange/partition, with its solved
/// tiles (`mapped`) filled in either by the emulator (phase 1) or by the
/// shared tile pool (phase 2).
struct PanelWork {
    rearrangement: Rearrangement,
    arranged_rows: usize,
    arranged_cols: usize,
    tiles: Vec<Tile>,
    seed_base: u64,
    mapped: Option<Vec<MappedTile>>,
}

/// One layer's phase-1 plan.
struct LayerWork {
    layer_index: usize,
    layer_abs_max: f32,
    transformed: TransformedLayer,
    panels: Vec<PanelWork>,
}

/// Solves every planned tile job on one work-stealing pool: workers claim
/// jobs off a shared atomic cursor, so tiles of different layers and panels
/// interleave freely and no thread idles at a per-layer join while another
/// still grinds a slow panel. Per-tile variation seeds are position-derived
/// (`tile_seed_base + tile index`), so the schedule cannot change results —
/// only wall-clock. Returns results in job order.
fn solve_tile_jobs(
    layers: &[LayerWork],
    jobs: &[TileJob],
    cfg: &MapConfig,
) -> Result<Vec<MappedTile>, MapError> {
    let run_one = |&TileJob(l, p, t): &TileJob| -> Result<MappedTile, MapError> {
        let lw = &layers[l];
        let pw = &lw.panels[p];
        map_one_tile(
            &pw.tiles[t],
            cfg,
            lw.layer_abs_max,
            pw.seed_base.wrapping_add(t as u64),
            t,
        )
        .map_err(|e| e.in_stage(format!("simulate layer {} panel {p}", lw.layer_index)))
    };
    let workers = xbar_tensor::threads::max_threads().min(jobs.len().max(1));
    if workers <= 1 || jobs.len() < 4 {
        return jobs.iter().map(run_one).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    let per_worker = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, MappedTile)> = Vec::new();
                    loop {
                        if abort.load(std::sync::atomic::Ordering::Relaxed) {
                            break Ok(done);
                        }
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= jobs.len() {
                            break Ok(done);
                        }
                        match run_one(&jobs[i]) {
                            Ok(mapped) => done.push((i, mapped)),
                            Err(e) => {
                                abort.store(true, std::sync::atomic::Ordering::Relaxed);
                                break Err((i, e));
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err((
                        usize::MAX,
                        MapError::WorkerPanic {
                            stage: "simulate tiles".into(),
                        },
                    ))
                })
            })
            .collect::<Vec<_>>()
    });
    // Report the failure at the lowest job index so which error surfaces
    // does not depend on thread scheduling.
    let mut first_err: Option<(usize, MapError)> = None;
    let mut out: Vec<Option<MappedTile>> = jobs.iter().map(|_| None).collect();
    for result in per_worker {
        match result {
            Ok(done) => {
                for (i, mapped) in done {
                    out[i] = Some(mapped);
                }
            }
            Err((i, e)) => {
                if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(out
        .into_iter()
        .map(|m| m.expect("every job claimed exactly once"))
        .collect())
}

/// Maps one panel's tiles through a learned emulator instead of the circuit
/// solver: program every tile exactly as the exact path would (same seeds),
/// predict all column currents in one batched call, and fold the predicted
/// current loss into per-column effective conductances.
fn emulate_tiles(
    tiles: &[Tile],
    cfg: &MapConfig,
    layer_abs_max: f32,
    seed_base: u64,
    em: &dyn TileEmulator,
) -> Result<Vec<MappedTile>, MapError> {
    let mut prepared = Vec::with_capacity(tiles.len());
    for (i, tile) in tiles.iter().enumerate() {
        let p = prepare_tile_conductances(
            &tile.weights,
            cfg.scale,
            layer_abs_max,
            &cfg.params,
            seed_base.wrapping_add(i as u64),
        )
        .map_err(|e| MapError::from(e).in_stage(format!("tile {i}")))?;
        prepared.push(p);
    }
    // Interleaved [pos0, neg0, pos1, neg1, …] so one emulator call covers
    // the whole panel.
    let arrays: Vec<ConductanceMatrix> = prepared
        .iter()
        .flat_map(|p| [p.pair.pos.clone(), p.pair.neg.clone()])
        .collect();
    let currents = em
        .column_currents_batch(&arrays)
        .map_err(MapError::Emulator)?;
    if currents.len() != arrays.len() {
        return Err(MapError::Emulator(format!(
            "emulator returned {} current vectors for {} arrays",
            currents.len(),
            arrays.len()
        )));
    }
    let v_read = cfg.params.v_read;
    let mut out = Vec::with_capacity(tiles.len());
    for (i, p) in prepared.into_iter().enumerate() {
        // Per-column effective scale: the ratio of predicted non-ideal
        // current to the ideal `Σ g·v_read` current. 1 − scale is exactly
        // the column's non-ideality factor.
        let fold =
            |g: &ConductanceMatrix, pred: &[f64]| -> Result<(ConductanceMatrix, f64), MapError> {
                if pred.len() != g.cols() {
                    return Err(MapError::Emulator(format!(
                        "emulator returned {} column currents for a {}-column array",
                        pred.len(),
                        g.cols()
                    )));
                }
                let mut scaled = g.clone();
                let mut nf_sum = 0.0;
                for (j, &p) in pred.iter().enumerate() {
                    let ideal: f64 = (0..g.rows()).map(|r| g.at(r, j) * v_read).sum();
                    let s = if ideal > 0.0 {
                        (p / ideal).clamp(0.0, 2.0)
                    } else {
                        1.0
                    };
                    nf_sum += 1.0 - s;
                    for r in 0..g.rows() {
                        scaled.set(r, j, g.at(r, j) * s);
                    }
                }
                Ok((scaled, nf_sum / g.cols().max(1) as f64))
            };
        let (pos, nf_pos) = fold(&p.pair.pos, &currents[2 * i])?;
        let (neg, nf_neg) = fold(&p.pair.neg, &currents[2 * i + 1])?;
        let w_ref = p.pair.w_ref;
        let folded = DifferentialPair { pos, neg, w_ref };
        let weights = conductances_to_weights(&folded, &cfg.params);
        out.push(MappedTile {
            weights: weights.clone(),
            outcome: TileOutcome {
                weights,
                nf_pos,
                nf_neg,
                low_g_fraction: p.low_g_fraction,
                stats: SolveStats::default(),
                fallback: false,
                fault_report: p.fault_report,
                w_ref,
            },
            repair: None,
        });
    }
    xbar_obs::metrics::counter_add(names::MAP_EMULATED_TILES, tiles.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::Layer;
    use xbar_prune::cf::prune_cf;

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8 * 4 * 4, 4, 2)),
        ])
    }

    fn small_cfg() -> MapConfig {
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0;
        MapConfig {
            params,
            ..Default::default()
        }
    }

    #[test]
    fn mapping_preserves_architecture_and_perturbs_weights() {
        let model = tiny_model();
        let (noisy, report) = map_to_crossbars(&model, &small_cfg()).unwrap();
        assert_eq!(noisy.len(), model.len());
        assert_eq!(report.layers.len(), 2);
        // Weights changed but not wildly.
        let orig = &model.layers()[0].as_conv().unwrap().weight().value;
        let pert = &noisy.layers()[0].as_conv().unwrap().weight().value;
        assert_ne!(orig, pert);
        let rel: f32 = orig
            .as_slice()
            .iter()
            .zip(pert.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
            / orig.abs_max();
        assert!(rel < 1.0, "perturbation should be bounded, got {rel}");
    }

    #[test]
    fn ideal_params_leave_weights_nearly_unchanged() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params = cfg.params.ideal();
        let (noisy, report) = map_to_crossbars(&model, &cfg).unwrap();
        let orig = &model.layers()[0].as_conv().unwrap().weight().value;
        let pert = &noisy.layers()[0].as_conv().unwrap().weight().value;
        for (a, b) in orig.as_slice().iter().zip(pert.as_slice()) {
            assert!((a - b).abs() < 1e-4 * orig.abs_max().max(1.0));
        }
        assert!(report.mean_nf() < 1e-4);
    }

    #[test]
    fn crossbar_count_matches_compression_module() {
        let model = tiny_model();
        let cfg = small_cfg();
        let (_, report) = map_to_crossbars(&model, &cfg).unwrap();
        let expected =
            xbar_prune::compression::model_crossbar_count(&model, PruneMethod::None, 16, 16);
        assert_eq!(report.crossbar_count(), expected);
    }

    #[test]
    fn pruned_mapping_keeps_pruned_weights_zero() {
        let mut model = tiny_model();
        let masks = prune_cf(&model, 0.5);
        masks.apply_to(&mut model);
        let mut cfg = small_cfg();
        cfg.method = PruneMethod::ChannelFilter;
        let (noisy, _) = map_to_crossbars(&model, &cfg).unwrap();
        // Every weight that was exactly zero stays exactly zero (T⁻¹ leaves
        // eliminated positions untouched).
        for (li, layer) in model.layers().iter().enumerate() {
            let (orig, pert) = match (layer.as_conv(), noisy.layers()[li].as_conv()) {
                (Some(a), Some(b)) => (&a.weight().value, &b.weight().value),
                _ => continue,
            };
            for (a, b) in orig.as_slice().iter().zip(pert.as_slice()) {
                if *a == 0.0 {
                    assert_eq!(*b, 0.0);
                }
            }
        }
    }

    #[test]
    fn rearrangement_round_trips_structurally() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params = cfg.params.ideal();
        cfg.rearrange = Some(ColumnOrder::Ascending);
        let (noisy, _) = map_to_crossbars(&model, &cfg).unwrap();
        // With ideal params, R then R⁻¹ must reproduce the original weights.
        let orig = &model.layers()[0].as_conv().unwrap().weight().value;
        let pert = &noisy.layers()[0].as_conv().unwrap().weight().value;
        for (a, b) in orig.as_slice().iter().zip(pert.as_slice()) {
            assert!((a - b).abs() < 1e-4 * orig.abs_max().max(1.0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params.sigma_variation = 0.1;
        let (a, _) = map_to_crossbars(&model, &cfg).unwrap();
        let (b, _) = map_to_crossbars(&model, &cfg).unwrap();
        cfg.seed = 99;
        let (c, _) = map_to_crossbars(&model, &cfg).unwrap();
        let wa = &a.layers()[0].as_conv().unwrap().weight().value;
        let wb = &b.layers()[0].as_conv().unwrap().weight().value;
        let wc = &c.layers()[0].as_conv().unwrap().weight().value;
        assert_eq!(wa, wb);
        assert_ne!(wa, wc);
    }

    #[test]
    fn mapping_emits_one_span_per_layer_and_solver_stats() {
        let model = tiny_model();
        let watch = xbar_obs::Watch::new();
        let (_, report) = map_to_crossbars(&model, &small_cfg()).unwrap();
        let spans = watch.spans();
        let map_spans: Vec<_> = spans.iter().filter(|s| s.name == "map").collect();
        let layer_spans: Vec<_> = spans.iter().filter(|s| s.name == "map_layer").collect();
        assert_eq!(map_spans.len(), 1);
        assert_eq!(layer_spans.len(), report.layers.len());
        // Layer spans nest inside the map span.
        assert!(layer_spans
            .iter()
            .all(|s| s.depth == map_spans[0].depth + 1));
        // The non-ideal solve is iterative, so some work must be reported.
        assert!(report.solver_iterations() > 0);
        assert!(report.max_residual() >= 0.0);
        assert_eq!(report.non_converged(), 0);
    }

    #[test]
    fn invalid_config_surfaces_a_descriptive_error() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params.faults.stuck_at_gmin = 2.0;
        let err = map_to_crossbars(&model, &cfg).unwrap_err();
        assert!(
            matches!(&err, MapError::InvalidConfig(msg) if msg.contains("fault rates")),
            "{err}"
        );
        let mut cfg = small_cfg();
        cfg.repair = Some(crate::repair::RepairConfig {
            spare_cols: 16,
            ..Default::default()
        });
        let err = map_to_crossbars(&model, &cfg).unwrap_err();
        assert!(
            matches!(&err, MapError::InvalidConfig(msg) if msg.contains("usable")),
            "{err}"
        );
    }

    #[test]
    fn fault_tolerant_mapping_repairs_and_reports() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params.faults = xbar_sim::faults::FaultModel {
            stuck_at_gmin: 0.02,
            stuck_at_gmax: 0.01,
        };
        let plain_report = map_to_crossbars(&model, &cfg).unwrap().1;
        assert!(plain_report.stuck_cells() > 0);
        assert_eq!(plain_report.repaired_columns(), 0);

        cfg.repair = Some(crate::repair::RepairConfig {
            column_threshold: 0.01,
            ..Default::default()
        });
        let (noisy, report) = map_to_crossbars(&model, &cfg).unwrap();
        assert_eq!(noisy.len(), model.len());
        assert!(report.stuck_cells() > 0);
        assert!(
            report.repaired_columns() + report.corrected_cells() > 0,
            "repair must act at 3% fault rate"
        );
        // Spare columns shrink usable width, so more tiles are needed.
        assert!(report.crossbar_count() >= plain_report.crossbar_count());
        assert!(report.max_fault_score() >= 0.0);

        // Repair reduces the model-level weight damage vs no repair.
        let damage = |mapped: &Sequential| -> f64 {
            let orig = &model.layers()[0].as_conv().unwrap().weight().value;
            let pert = &mapped.layers()[0].as_conv().unwrap().weight().value;
            orig.as_slice()
                .iter()
                .zip(pert.as_slice())
                .map(|(a, b)| f64::from((a - b).abs()))
                .sum()
        };
        let plain_model = {
            let mut c = cfg;
            c.repair = None;
            map_to_crossbars(&model, &c).unwrap().0
        };
        assert!(
            damage(&noisy) <= damage(&plain_model) * 1.05,
            "repair must not materially worsen weight damage: {} vs {}",
            damage(&noisy),
            damage(&plain_model)
        );
    }

    #[test]
    fn program_and_verify_counts_flow_into_the_report() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params.sigma_variation = 0.2;
        cfg.params.program.max_retries = 3;
        let (_, report) = map_to_crossbars(&model, &cfg).unwrap();
        assert!(
            report.reprogrammed_cells() > 0,
            "0.2 sigma must trip the verify loop somewhere"
        );
        assert_eq!(report.stuck_cells(), 0);
    }

    /// Test emulator predicting the *ideal* currents (no current loss):
    /// folding it must reproduce the programmed conductances unchanged.
    struct IdealEmulator {
        rows: usize,
        cols: usize,
        v_read: f64,
    }

    impl TileEmulator for IdealEmulator {
        fn tile_shape(&self) -> (usize, usize) {
            (self.rows, self.cols)
        }

        fn column_currents_batch(
            &self,
            arrays: &[ConductanceMatrix],
        ) -> Result<Vec<Vec<f64>>, String> {
            Ok(arrays
                .iter()
                .map(|g| {
                    (0..g.cols())
                        .map(|j| (0..g.rows()).map(|r| g.at(r, j) * self.v_read).sum())
                        .collect()
                })
                .collect())
        }
    }

    #[test]
    fn ideal_emulator_reproduces_programmed_weights() {
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params = cfg.params.ideal();
        let em = IdealEmulator {
            rows: 16,
            cols: 16,
            v_read: cfg.params.v_read,
        };
        let (folded, report) = map_to_crossbars_with(&model, &cfg, Some(&em)).unwrap();
        // No predicted current loss and ideal programming: weights survive.
        let orig = &model.layers()[0].as_conv().unwrap().weight().value;
        let pert = &folded.layers()[0].as_conv().unwrap().weight().value;
        for (a, b) in orig.as_slice().iter().zip(pert.as_slice()) {
            assert!((a - b).abs() < 1e-4 * orig.abs_max().max(1.0), "{a} vs {b}");
        }
        assert!(report.mean_nf().abs() < 1e-9);
        assert_eq!(report.solver_iterations(), 0, "no circuit solves ran");
        assert!(report.crossbar_count() > 0);
    }

    #[test]
    fn emulated_mapping_shares_the_exact_programming_path() {
        // With variation on, the emulated fold must start from the same
        // programmed conductances as the exact path: an ideal-current
        // emulator then differs from the exact map only by the circuit's
        // current loss, so the two stay close but not identical.
        let model = tiny_model();
        let mut cfg = small_cfg();
        cfg.params.sigma_variation = 0.1;
        let em = IdealEmulator {
            rows: 16,
            cols: 16,
            v_read: cfg.params.v_read,
        };
        let (exact, _) = map_to_crossbars(&model, &cfg).unwrap();
        let (folded, _) = map_to_crossbars_with(&model, &cfg, Some(&em)).unwrap();
        let we = &exact.layers()[0].as_conv().unwrap().weight().value;
        let wf = &folded.layers()[0].as_conv().unwrap().weight().value;
        assert_ne!(we, wf);
        let max_rel: f32 = we
            .as_slice()
            .iter()
            .zip(wf.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
            / we.abs_max();
        assert!(
            max_rel < 0.5,
            "same programming, bounded fold gap: {max_rel}"
        );
    }

    #[test]
    fn emulator_geometry_and_repair_misuse_are_rejected() {
        let model = tiny_model();
        let cfg = small_cfg();
        let em = IdealEmulator {
            rows: 8,
            cols: 16,
            v_read: cfg.params.v_read,
        };
        let err = map_to_crossbars_with(&model, &cfg, Some(&em)).unwrap_err();
        assert!(
            matches!(&err, MapError::Emulator(msg) if msg.contains("8×16")),
            "{err}"
        );
        let em = IdealEmulator {
            rows: 16,
            cols: 16,
            v_read: cfg.params.v_read,
        };
        let mut cfg = small_cfg();
        cfg.repair = Some(crate::repair::RepairConfig::default());
        let err = map_to_crossbars_with(&model, &cfg, Some(&em)).unwrap_err();
        assert!(
            matches!(&err, MapError::InvalidConfig(msg) if msg.contains("repair")),
            "{err}"
        );
    }

    #[test]
    fn larger_crossbars_increase_nf() {
        let model = tiny_model();
        let mut nf = Vec::new();
        for n in [16usize, 64] {
            let mut cfg = small_cfg();
            cfg.params = CrossbarParams::with_size(n);
            cfg.params.sigma_variation = 0.0;
            let (_, report) = map_to_crossbars(&model, &cfg).unwrap();
            nf.push(report.mean_nf());
        }
        assert!(nf[1] > nf[0], "{nf:?}");
    }
}
