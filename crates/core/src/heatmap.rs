//! Weight-magnitude heatmap export (paper Fig. 3(f)).
//!
//! The paper visualises the `|W|` heatmaps of C/F-pruned VGG16 layers before
//! and after the R transformation: post-R, low-magnitude (light) points
//! concentrate together. This module downsamples a weight matrix to a fixed
//! grid of mean `|w|` values and serialises it as CSV for external plotting,
//! plus a quantitative *clustering score* used by the tests and benches to
//! assert the transformation's effect without eyeballing images.

use xbar_tensor::Tensor;

/// A downsampled magnitude heatmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl Heatmap {
    /// Downsamples `|matrix|` to at most `max_rows × max_cols` cells, each
    /// holding the mean absolute weight of its block.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` is not 2-D or a target dimension is zero.
    pub fn from_matrix(matrix: &Tensor, max_rows: usize, max_cols: usize) -> Self {
        assert_eq!(matrix.ndim(), 2, "heatmaps are built from 2-D matrices");
        assert!(
            max_rows > 0 && max_cols > 0,
            "heatmap dims must be non-zero"
        );
        let (mr, mc) = (matrix.rows(), matrix.cols());
        let rows = mr.min(max_rows);
        let cols = mc.min(max_cols);
        let mut values = vec![0.0f64; rows * cols];
        let mut counts = vec![0usize; rows * cols];
        for r in 0..mr {
            let hr = r * rows / mr;
            for (c, &v) in matrix.row(r).iter().enumerate() {
                let hc = c * cols / mc;
                values[hr * cols + hc] += v.abs() as f64;
                counts[hr * cols + hc] += 1;
            }
        }
        for (v, &n) in values.iter_mut().zip(&counts) {
            if n > 0 {
                *v /= n as f64;
            }
        }
        Self { rows, cols, values }
    }

    /// Heatmap rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Heatmap columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell value.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.values[r * self.cols + c]
    }

    /// Serialises as CSV (one row per line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for r in 0..self.rows {
            let row: Vec<String> = (0..self.cols)
                .map(|c| format!("{:.6e}", self.at(r, c)))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Mean absolute difference between horizontally adjacent column magnitudes
/// of a matrix — a clustering score. Columns with similar magnitude sitting
/// next to each other (the post-R layout) give a *low* score; intermixed
/// light/dark columns give a high one.
///
/// # Panics
///
/// Panics if `matrix` is not 2-D.
pub fn column_adjacency_score(matrix: &Tensor) -> f64 {
    let cols = matrix.cols();
    if cols < 2 {
        return 0.0;
    }
    let col_means: Vec<f64> = (0..cols)
        .map(|c| {
            let col = matrix.col(c);
            col.iter().map(|&v| v.abs() as f64).sum::<f64>() / col.len().max(1) as f64
        })
        .collect();
    col_means
        .windows(2)
        .map(|w| (w[0] - w[1]).abs())
        .sum::<f64>()
        / (cols - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::{ColumnOrder, Rearrangement};

    #[test]
    fn heatmap_of_uniform_matrix_is_flat() {
        let m = Tensor::filled(&[16, 16], -0.5);
        let h = Heatmap::from_matrix(&m, 4, 4);
        assert_eq!((h.rows(), h.cols()), (4, 4));
        for r in 0..4 {
            for c in 0..4 {
                assert!((h.at(r, c) - 0.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn heatmap_preserves_block_structure() {
        // Left half small, right half large.
        let m = Tensor::from_fn(&[8, 8], |i| if i % 8 < 4 { 0.1 } else { 1.0 });
        let h = Heatmap::from_matrix(&m, 2, 2);
        assert!(h.at(0, 0) < h.at(0, 1));
        assert!(h.at(1, 0) < h.at(1, 1));
    }

    #[test]
    fn small_matrix_is_not_upsampled() {
        let m = Tensor::ones(&[2, 3]);
        let h = Heatmap::from_matrix(&m, 10, 10);
        assert_eq!((h.rows(), h.cols()), (2, 3));
    }

    #[test]
    fn csv_has_expected_shape() {
        let m = Tensor::ones(&[4, 4]);
        let h = Heatmap::from_matrix(&m, 2, 2);
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 2);
    }

    #[test]
    fn rearrangement_lowers_adjacency_score() {
        // Alternating light/dark columns: maximal intermixing.
        let m = Tensor::from_fn(&[6, 8], |i| {
            let c = i % 8;
            if c % 2 == 0 {
                0.05 + 0.001 * (i / 8) as f32
            } else {
                1.0 + 0.01 * (i / 8) as f32
            }
        });
        let before = column_adjacency_score(&m);
        let r = Rearrangement::compute(&m, ColumnOrder::Ascending, 32);
        let after = column_adjacency_score(&r.apply(&m));
        assert!(
            after < before,
            "R should cluster columns: {before} -> {after}"
        );
    }

    #[test]
    fn degenerate_matrices() {
        assert_eq!(column_adjacency_score(&Tensor::zeros(&[3, 1])), 0.0);
    }
}
