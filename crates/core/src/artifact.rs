//! Persisted mapped-model artifacts (`XBARMDL1`).
//!
//! The paper's Fig. 2 pipeline is expensive: every tile of every layer is a
//! circuit solve. [`save_artifact`] persists the *result* — the non-ideal
//! `W'` network produced by [`crate::pipeline::map_to_crossbars`] together
//! with the mapping configuration and statistics — so inference serving
//! (`xbar-serve`) can amortise the mapping across millions of requests, the
//! way RxNN/GENIEx-style flows evaluate circuits once and reuse them.
//!
//! ## Layout
//!
//! ```text
//! magic   b"XBARMDL1"                     (8 bytes)
//! meta    u64 length + UTF-8 JSON object  (architecture spec, mapping
//!                                          summary, stats, accuracies)
//! tensors u64 count + per tensor          (u64 element count + LE f32 data;
//!                                          the model's full inference state
//!                                          incl. BatchNorm statistics, see
//!                                          xbar_nn::serialize)
//! --- optional fidelity-tier payloads, each flagged in the meta ---
//! tensors ideal (software) model state      when meta "tiers"."ideal"
//! tensors surrogate-folded W'' model state  when meta "tiers"."surrogate"
//! tensors surrogate net parameters          when meta has "surrogate"
//! ```
//!
//! Unlike a training checkpoint the artifact is self-contained: the JSON
//! meta embeds the layer-by-layer [`LayerSpec`] so a server can rebuild the
//! architecture without knowing the training scenario.
//!
//! The optional payloads extend the format backward-compatibly in both
//! directions: a legacy artifact simply ends after the `W'` tensor block
//! (the flags default to absent), and a legacy reader given a new artifact
//! stops after the `W'` block and never sees the extras.

use crate::pipeline::{MapConfig, MapReport};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use xbar_nn::arch::{build_from_spec, spec_from_json, spec_of, spec_to_json, LayerSpec};
use xbar_nn::serialize::{
    read_exact_or_truncated, read_tensor_block_into, write_tensor_block, TensorBlockError,
};
use xbar_nn::Sequential;
use xbar_obs::json::Json;

const MAGIC: &[u8; 8] = b"XBARMDL1";
/// Refuse absurd meta blobs (corrupt length prefix) before allocating.
const MAX_META_BYTES: u64 = 64 << 20;

/// Error from artifact save/load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an artifact, truncated, or unparsable metadata.
    Malformed(String),
    /// The stored tensors do not fit the architecture the artifact itself
    /// declares (a corrupt or internally inconsistent file), or the model
    /// does not match a caller-supplied expectation.
    Mismatch(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
            ArtifactError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            ArtifactError::Mismatch(detail) => {
                write!(f, "artifact does not fit its declared model: {detail}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<TensorBlockError> for ArtifactError {
    fn from(e: TensorBlockError) -> Self {
        match e {
            TensorBlockError::Io(e) => ArtifactError::Io(e),
            TensorBlockError::Truncated(what) => ArtifactError::Malformed(what),
            TensorBlockError::Mismatch(detail) => ArtifactError::Mismatch(detail),
        }
    }
}

/// Input feature count of an embedded surrogate net for a tile shape.
///
/// The feature layout is part of the artifact format, five aggregate
/// blocks: normalized row voltages (`rows`), per-row ideal currents
/// (`rows`), per-column conductance sums (`cols`), per-column
/// depth-weighted ideal currents (`cols`, weighting each device by how far
/// down the column wire its current enters), then the per-column ideal
/// currents (`cols`) as the final block. These are the aggregates wire IR
/// drop physically responds to; raw per-device conductances are deliberately
/// excluded so surrogate evaluation stays an order of magnitude cheaper
/// than the circuit solve it replaces. The `xbar-surrogate` crate encodes
/// inputs with this layout and this function is the single source of truth
/// for its width.
pub fn surrogate_input_dim(rows: usize, cols: usize) -> usize {
    2 * rows + 3 * cols
}

/// Provenance and held-out validation record of an embedded surrogate:
/// which tile shape it emulates, its normalization constants, and how far
/// its predicted column currents sat from the exact solver on held-out
/// pairs. Persisted in (and restored from) the artifact meta so `/v1/model`
/// can report the surrogate's error without re-validating.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateMeta {
    /// Crossbar rows the surrogate was trained for.
    pub rows: usize,
    /// Crossbar columns the surrogate was trained for.
    pub cols: usize,
    /// Conductance floor used for input normalization (S).
    pub g_min: f64,
    /// Conductance ceiling used for input normalization (S).
    pub g_max: f64,
    /// Nominal read voltage used for input/target normalization (V).
    pub v_read: f64,
    /// Held-out max column-current error, as a fraction of the largest
    /// exact current in the validation split.
    pub val_max_err: f64,
    /// Held-out RMS column-current error, same normalization.
    pub val_rms_err: f64,
    /// Training pairs generated from the exact solver.
    pub train_pairs: usize,
    /// Seed of pair generation and net initialisation.
    pub seed: u64,
    /// The surrogate net's architecture (rebuilt via `build_from_spec`).
    pub arch: Vec<LayerSpec>,
}

impl SurrogateMeta {
    fn from_json(j: &Json) -> Result<Self, String> {
        let num = |name: &str| -> Result<f64, String> {
            j.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("surrogate record missing number field {name:?}"))
        };
        Ok(SurrogateMeta {
            rows: num("rows")? as usize,
            cols: num("cols")? as usize,
            g_min: num("g_min")?,
            g_max: num("g_max")?,
            v_read: num("v_read")?,
            val_max_err: num("val_max_err")?,
            val_rms_err: num("val_rms_err")?,
            train_pairs: num("train_pairs")? as usize,
            seed: num("seed")? as u64,
            arch: spec_from_json(j.get("arch").ok_or("surrogate record missing \"arch\"")?)?,
        })
    }
}

/// Which optional tier payloads follow the `W'` tensor block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TierFlags {
    ideal: bool,
    surrogate_model: bool,
}

/// A full fidelity-tier artifact: the exact `W'` model plus the optional
/// ideal (software) weights, the surrogate-folded `W''` weights, and the
/// serialized surrogate net itself.
#[derive(Debug, Clone)]
pub struct ArtifactBundle {
    /// The exact-solver-mapped `W'` network (always present).
    pub model: Sequential,
    /// Mapping provenance, statistics, and the surrogate record.
    pub meta: ArtifactMeta,
    /// The pre-mapping software network (the `ideal` serving tier).
    pub ideal_model: Option<Sequential>,
    /// The surrogate-folded `W''` network (the `surrogate` serving tier).
    pub surrogate_model: Option<Sequential>,
    /// The surrogate net whose fold produced `surrogate_model`; its
    /// architecture and validation errors live in `meta.surrogate`.
    pub surrogate_net: Option<Sequential>,
}

impl ArtifactBundle {
    /// Wraps a plain mapped model with no optional tier payloads.
    pub fn exact_only(model: Sequential, meta: ArtifactMeta) -> Self {
        Self {
            model,
            meta,
            ideal_model: None,
            surrogate_model: None,
            surrogate_net: None,
        }
    }
}

/// Descriptive metadata persisted with (and restored from) an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMeta {
    /// Free-form model label (e.g. `"VGG11 CIFAR10-like C/F s=0.8"`).
    pub label: String,
    /// Number of output classes.
    pub num_classes: usize,
    /// Expected input shape per example, `[C, H, W]`.
    pub input_shape: Vec<usize>,
    /// Crossbar rows of the mapping run.
    pub rows: usize,
    /// Crossbar columns of the mapping run.
    pub cols: usize,
    /// Pruning/`T`-transformation method (display form, e.g. `"C/F"`).
    pub method: String,
    /// `R` column rearrangement, if any (debug form).
    pub rearrange: Option<String>,
    /// Weight→conductance scale (debug form).
    pub scale: String,
    /// Circuit solver (debug form).
    pub solve: String,
    /// Device-variation seed of the mapping run.
    pub seed: u64,
    /// Total crossbar tiles the model occupied.
    pub crossbar_count: usize,
    /// Mean non-ideality factor over all mapped tiles.
    pub mean_nf: f64,
    /// Total circuit-solver iterations spent producing `W'`.
    pub solver_iterations: u64,
    /// Tiles that needed the non-convergence fallback.
    pub non_converged: usize,
    /// Software (pre-mapping) test accuracy, if measured.
    pub software_accuracy: Option<f64>,
    /// Non-ideal (mapped) test accuracy, if measured.
    pub crossbar_accuracy: Option<f64>,
    /// Stuck devices found by the read-verify pass.
    pub stuck_cells: usize,
    /// Faulty columns remapped onto spare columns.
    pub repaired_columns: usize,
    /// Stuck cells digitally corrected in the periphery.
    pub corrected_cells: usize,
    /// Tiles still above the fault threshold after repair — non-zero means
    /// the server reports degraded health while continuing to serve.
    pub degraded_tiles: usize,
    /// Worst post-repair tile fault score.
    pub max_fault_score: f64,
    /// Embedded-surrogate record (tile shape, normalization, held-out
    /// validation error); `None` for artifacts without a surrogate.
    pub surrogate: Option<SurrogateMeta>,
    /// Test accuracy of the surrogate-folded `W''` model, if measured.
    pub surrogate_accuracy: Option<f64>,
}

impl ArtifactMeta {
    /// Builds metadata from a mapping run's configuration and report.
    pub fn from_mapping(label: impl Into<String>, cfg: &MapConfig, report: &MapReport) -> Self {
        Self {
            label: label.into(),
            num_classes: 0,
            input_shape: vec![3, 32, 32],
            rows: cfg.params.rows,
            cols: cfg.params.cols,
            method: cfg.method.to_string(),
            rearrange: cfg.rearrange.map(|r| format!("{r:?}")),
            scale: format!("{:?}", cfg.scale),
            solve: format!("{:?}", cfg.solve),
            seed: cfg.seed,
            crossbar_count: report.crossbar_count(),
            mean_nf: report.mean_nf(),
            solver_iterations: report.solver_iterations(),
            non_converged: report.non_converged(),
            software_accuracy: None,
            crossbar_accuracy: None,
            stuck_cells: report.stuck_cells(),
            repaired_columns: report.repaired_columns(),
            corrected_cells: report.corrected_cells(),
            degraded_tiles: report.degraded_tiles(),
            max_fault_score: report.max_fault_score(),
            surrogate: None,
            surrogate_accuracy: None,
        }
    }

    /// Whether the mapped model carries tiles that stayed faulty past the
    /// repair threshold.
    pub fn is_degraded(&self) -> bool {
        self.degraded_tiles > 0
    }

    /// Elements of one input example (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// JSON object used by the server's classify responses (a compact echo
    /// of the mapping provenance).
    pub fn summary_json(&self) -> Json {
        let mut fields = vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("cols".into(), Json::Num(self.cols as f64)),
            ("method".into(), Json::Str(self.method.clone())),
            ("mean_nf".into(), Json::Num(self.mean_nf)),
            (
                "crossbar_count".into(),
                Json::Num(self.crossbar_count as f64),
            ),
            (
                "crossbar_accuracy".into(),
                self.crossbar_accuracy.map_or(Json::Null, Json::Num),
            ),
            ("stuck_cells".into(), Json::Num(self.stuck_cells as f64)),
            (
                "repaired_columns".into(),
                Json::Num(self.repaired_columns as f64),
            ),
            (
                "degraded_tiles".into(),
                Json::Num(self.degraded_tiles as f64),
            ),
        ];
        if let Some(s) = &self.surrogate {
            fields.push((
                "surrogate".into(),
                Json::Obj(vec![
                    ("val_max_err".into(), Json::Num(s.val_max_err)),
                    ("val_rms_err".into(), Json::Num(s.val_rms_err)),
                    ("train_pairs".into(), Json::Num(s.train_pairs as f64)),
                ]),
            ));
            if let Some(acc) = self.surrogate_accuracy {
                fields.push(("surrogate_accuracy".into(), Json::Num(acc)));
            }
        }
        Json::Obj(fields)
    }

    fn to_json(&self, spec: &[LayerSpec], tiers: TierFlags) -> Json {
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        let mut fields = vec![
            ("format".into(), Json::Str("XBARMDL1".into())),
            ("label".into(), Json::Str(self.label.clone())),
            ("num_classes".into(), Json::Num(self.num_classes as f64)),
            (
                "input_shape".into(),
                Json::Arr(
                    self.input_shape
                        .iter()
                        .map(|&d| Json::Num(d as f64))
                        .collect(),
                ),
            ),
            ("arch".into(), spec_to_json(spec)),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("cols".into(), Json::Num(self.cols as f64)),
            ("method".into(), Json::Str(self.method.clone())),
            (
                "rearrange".into(),
                self.rearrange
                    .as_ref()
                    .map_or(Json::Null, |r| Json::Str(r.clone())),
            ),
            ("scale".into(), Json::Str(self.scale.clone())),
            ("solve".into(), Json::Str(self.solve.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "crossbar_count".into(),
                Json::Num(self.crossbar_count as f64),
            ),
            ("mean_nf".into(), Json::Num(self.mean_nf)),
            (
                "solver_iterations".into(),
                Json::Num(self.solver_iterations as f64),
            ),
            ("non_converged".into(), Json::Num(self.non_converged as f64)),
            ("software_accuracy".into(), opt_num(self.software_accuracy)),
            ("crossbar_accuracy".into(), opt_num(self.crossbar_accuracy)),
            ("stuck_cells".into(), Json::Num(self.stuck_cells as f64)),
            (
                "repaired_columns".into(),
                Json::Num(self.repaired_columns as f64),
            ),
            (
                "corrected_cells".into(),
                Json::Num(self.corrected_cells as f64),
            ),
            (
                "degraded_tiles".into(),
                Json::Num(self.degraded_tiles as f64),
            ),
            ("max_fault_score".into(), Json::Num(self.max_fault_score)),
        ];
        // Tier payloads and the surrogate record are written only when
        // present, so surrogate-free artifacts stay byte-compatible with
        // what earlier writers produced.
        if tiers != TierFlags::default() {
            fields.push((
                "tiers".into(),
                Json::Obj(vec![
                    ("ideal".into(), Json::Bool(tiers.ideal)),
                    ("surrogate".into(), Json::Bool(tiers.surrogate_model)),
                ]),
            ));
        }
        if let Some(s) = &self.surrogate {
            fields.push((
                "surrogate".into(),
                Json::Obj(vec![
                    ("rows".into(), Json::Num(s.rows as f64)),
                    ("cols".into(), Json::Num(s.cols as f64)),
                    ("g_min".into(), Json::Num(s.g_min)),
                    ("g_max".into(), Json::Num(s.g_max)),
                    ("v_read".into(), Json::Num(s.v_read)),
                    ("val_max_err".into(), Json::Num(s.val_max_err)),
                    ("val_rms_err".into(), Json::Num(s.val_rms_err)),
                    ("train_pairs".into(), Json::Num(s.train_pairs as f64)),
                    ("seed".into(), Json::Num(s.seed as f64)),
                    ("arch".into(), spec_to_json(&s.arch)),
                ]),
            ));
        }
        if let Some(acc) = self.surrogate_accuracy {
            fields.push(("surrogate_accuracy".into(), Json::Num(acc)));
        }
        Json::Obj(fields)
    }

    fn from_json(j: &Json) -> Result<(Self, Vec<LayerSpec>, TierFlags), String> {
        let str_field = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("meta missing string field {name:?}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("meta missing integer field {name:?}"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            j.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("meta missing number field {name:?}"))
        };
        let opt_f64 = |name: &str| j.get(name).and_then(Json::as_f64);
        let opt_usize = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0) as usize;
        let spec = spec_from_json(j.get("arch").ok_or("meta missing \"arch\"")?)?;
        let input_shape = j
            .get("input_shape")
            .and_then(Json::as_arr)
            .ok_or("meta missing \"input_shape\"")?
            .iter()
            .map(|d| d.as_u64().map(|v| v as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or("\"input_shape\" must be non-negative integers")?;
        let meta = ArtifactMeta {
            label: str_field("label")?,
            num_classes: u64_field("num_classes")? as usize,
            input_shape,
            rows: u64_field("rows")? as usize,
            cols: u64_field("cols")? as usize,
            method: str_field("method")?,
            rearrange: j
                .get("rearrange")
                .and_then(Json::as_str)
                .map(str::to_string),
            scale: str_field("scale")?,
            solve: str_field("solve")?,
            seed: u64_field("seed")?,
            crossbar_count: u64_field("crossbar_count")? as usize,
            mean_nf: f64_field("mean_nf")?,
            solver_iterations: u64_field("solver_iterations")?,
            non_converged: u64_field("non_converged")? as usize,
            software_accuracy: opt_f64("software_accuracy"),
            crossbar_accuracy: opt_f64("crossbar_accuracy"),
            // Fault-tolerance fields are absent in artifacts written before
            // repair existed; default them to "no faults seen".
            stuck_cells: opt_usize("stuck_cells"),
            repaired_columns: opt_usize("repaired_columns"),
            corrected_cells: opt_usize("corrected_cells"),
            degraded_tiles: opt_usize("degraded_tiles"),
            max_fault_score: opt_f64("max_fault_score").unwrap_or(0.0),
            // The surrogate record and tier flags are absent in artifacts
            // written before fidelity tiers existed; default to "exact W'
            // only".
            surrogate: match j.get("surrogate") {
                None | Some(Json::Null) => None,
                Some(s) => Some(SurrogateMeta::from_json(s)?),
            },
            surrogate_accuracy: opt_f64("surrogate_accuracy"),
        };
        let tiers = match j.get("tiers") {
            None | Some(Json::Null) => TierFlags::default(),
            Some(t) => TierFlags {
                ideal: t.get("ideal").and_then(Json::as_bool).unwrap_or(false),
                surrogate_model: t.get("surrogate").and_then(Json::as_bool).unwrap_or(false),
            },
        };
        Ok((meta, spec, tiers))
    }
}

/// Writes the mapped model (`W'` network) and its metadata to `writer`.
///
/// The architecture spec is derived from the model itself; `meta.num_classes`
/// is derived from the final linear layer if left at zero.
///
/// # Errors
///
/// Returns [`ArtifactError::Io`] on write failure.
pub fn save_artifact<W: Write>(
    model: &mut Sequential,
    meta: &ArtifactMeta,
    mut writer: W,
) -> Result<(), ArtifactError> {
    write_header(model, meta, TierFlags::default(), &mut writer)?;
    let tensors = model.state_tensors_mut();
    write_tensor_block(writer, tensors.iter().map(|t| &**t))?;
    Ok(())
}

/// Writes magic + meta (with `num_classes` derived from the final linear
/// layer if left at zero), validating any surrogate record against the
/// model's partition first.
fn write_header<W: Write>(
    model: &Sequential,
    meta: &ArtifactMeta,
    tiers: TierFlags,
    writer: &mut W,
) -> Result<(), ArtifactError> {
    let spec = spec_of(model);
    let mut meta = meta.clone();
    if meta.num_classes == 0 {
        meta.num_classes = model
            .layers()
            .iter()
            .rev()
            .find_map(|l| l.as_linear())
            .map(|l| l.out_features())
            .unwrap_or(0);
    }
    if let Some(s) = &meta.surrogate {
        validate_surrogate_record(s, &meta)?;
    }
    let meta_bytes = meta.to_json(&spec, tiers).to_json().into_bytes();
    writer.write_all(MAGIC)?;
    writer.write_all(&(meta_bytes.len() as u64).to_le_bytes())?;
    writer.write_all(&meta_bytes)?;
    Ok(())
}

/// Rejects a surrogate record whose tile shape or net geometry disagrees
/// with the mapped model's partition — a surrogate trained for a different
/// crossbar would silently serve wrong currents.
fn validate_surrogate_record(s: &SurrogateMeta, meta: &ArtifactMeta) -> Result<(), ArtifactError> {
    if (s.rows, s.cols) != (meta.rows, meta.cols) {
        return Err(ArtifactError::Mismatch(format!(
            "embedded surrogate was trained for {}×{} tiles but the model was \
             partitioned onto {}×{} crossbars; retrain the surrogate for this \
             tile shape",
            s.rows, s.cols, meta.rows, meta.cols
        )));
    }
    let in_dim = surrogate_input_dim(s.rows, s.cols);
    let first_in = s.arch.iter().find_map(|l| match l {
        LayerSpec::Linear { in_f, .. } => Some(*in_f),
        _ => None,
    });
    let last_out = s.arch.iter().rev().find_map(|l| match l {
        LayerSpec::Linear { out_f, .. } => Some(*out_f),
        _ => None,
    });
    if first_in != Some(in_dim) || last_out != Some(s.cols) {
        return Err(ArtifactError::Mismatch(format!(
            "embedded surrogate net maps {:?} → {:?} features but {}×{} tiles \
             need {} → {}; the surrogate block does not fit the declared tile \
             shape",
            first_in, last_out, s.rows, s.cols, in_dim, s.cols
        )));
    }
    Ok(())
}

/// Writes a full fidelity-tier bundle: the `W'` model plus any optional
/// ideal/surrogate payloads, each flagged in the meta so a reader knows
/// which tensor blocks follow.
///
/// # Errors
///
/// * [`ArtifactError::Io`] on write failure;
/// * [`ArtifactError::Mismatch`] when the surrogate net is present without
///   its meta record (or vice versa), or when the record disagrees with the
///   mapped model's partition.
pub fn save_artifact_bundle<W: Write>(
    bundle: &mut ArtifactBundle,
    mut writer: W,
) -> Result<(), ArtifactError> {
    if bundle.surrogate_net.is_some() != bundle.meta.surrogate.is_some() {
        return Err(ArtifactError::Mismatch(
            "bundle carries a surrogate net without its meta record (or a \
             record without the net); both or neither must be present"
                .into(),
        ));
    }
    let tiers = TierFlags {
        ideal: bundle.ideal_model.is_some(),
        surrogate_model: bundle.surrogate_model.is_some(),
    };
    write_header(&bundle.model, &bundle.meta, tiers, &mut writer)?;
    let tensors = bundle.model.state_tensors_mut();
    write_tensor_block(&mut writer, tensors.iter().map(|t| &**t))?;
    for m in [&mut bundle.ideal_model, &mut bundle.surrogate_model]
        .into_iter()
        .flatten()
    {
        let tensors = m.state_tensors_mut();
        write_tensor_block(&mut writer, tensors.iter().map(|t| &**t))?;
    }
    if let Some(net) = &mut bundle.surrogate_net {
        let tensors = net.state_tensors_mut();
        write_tensor_block(&mut writer, tensors.iter().map(|t| &**t))?;
    }
    Ok(())
}

/// Reads an artifact, rebuilding the model from the embedded architecture
/// spec and restoring its full inference state.
///
/// # Errors
///
/// * [`ArtifactError::Io`] on read failure;
/// * [`ArtifactError::Malformed`] for bad magic, truncation, or unparsable
///   metadata;
/// * [`ArtifactError::Mismatch`] when the tensor block does not fit the
///   declared architecture (names the offending tensor and sizes).
pub fn load_artifact<R: Read>(mut reader: R) -> Result<(Sequential, ArtifactMeta), ArtifactError> {
    let (model, meta, _tiers) = read_header_and_model(&mut reader)?;
    Ok((model, meta))
}

/// Shared front half of the two loaders: magic, meta, and the `W'` tensor
/// block. Returns the tier flags so [`load_artifact_bundle`] knows which
/// optional blocks follow; [`load_artifact`] ignores them, which is exactly
/// how legacy readers stay compatible with bundle files.
fn read_header_and_model<R: Read>(
    reader: &mut R,
) -> Result<(Sequential, ArtifactMeta, TierFlags), ArtifactError> {
    let mut magic = [0u8; 8];
    read_exact_or_truncated(&mut *reader, &mut magic, || "reading magic".into())?;
    if &magic != MAGIC {
        return Err(ArtifactError::Malformed(format!(
            "bad magic {:?} (not an XBARMDL1 artifact)",
            String::from_utf8_lossy(&magic)
        )));
    }
    let mut len8 = [0u8; 8];
    read_exact_or_truncated(&mut *reader, &mut len8, || "reading metadata length".into())?;
    let meta_len = u64::from_le_bytes(len8);
    if meta_len > MAX_META_BYTES {
        return Err(ArtifactError::Malformed(format!(
            "metadata length {meta_len} exceeds the {MAX_META_BYTES}-byte limit"
        )));
    }
    let mut meta_bytes = vec![0u8; meta_len as usize];
    read_exact_or_truncated(&mut *reader, &mut meta_bytes, || "reading metadata".into())?;
    let meta_text = String::from_utf8(meta_bytes)
        .map_err(|_| ArtifactError::Malformed("metadata is not UTF-8".into()))?;
    let json = Json::parse(&meta_text)
        .map_err(|e| ArtifactError::Malformed(format!("metadata JSON: {e}")))?;
    let (meta, spec, tiers) = ArtifactMeta::from_json(&json).map_err(ArtifactError::Malformed)?;
    if let Some(s) = &meta.surrogate {
        validate_surrogate_record(s, &meta)?;
    }
    let mut model = build_from_spec(&spec);
    read_block_into_model(&mut *reader, &mut model, "serving model")?;
    Ok((model, meta, tiers))
}

fn read_block_into_model<R: Read>(
    reader: R,
    model: &mut Sequential,
    which: &str,
) -> Result<(), ArtifactError> {
    let mut slots = model.state_tensors_mut();
    read_tensor_block_into(reader, &mut slots).map_err(|e| match e {
        TensorBlockError::Mismatch(detail) => ArtifactError::Mismatch(format!(
            "{detail} — the {which} tensor block disagrees with the \
             architecture the artifact declares; the file is corrupt or was \
             produced by an incompatible writer"
        )),
        other => other.into(),
    })
}

/// Reads a full fidelity-tier bundle. Optional payloads are read only when
/// the meta's tier flags / surrogate record say they are present, so legacy
/// artifacts (no flags) load with every optional slot `None`.
///
/// # Errors
///
/// Same as [`load_artifact`], plus [`ArtifactError::Mismatch`] when the
/// embedded surrogate record disagrees with the mapped model's partition
/// or an optional tensor block does not fit its declared architecture.
pub fn load_artifact_bundle<R: Read>(mut reader: R) -> Result<ArtifactBundle, ArtifactError> {
    let (model, meta, tiers) = read_header_and_model(&mut reader)?;
    let spec = spec_of(&model);
    let mut ideal_model = None;
    if tiers.ideal {
        let mut m = build_from_spec(&spec);
        read_block_into_model(&mut reader, &mut m, "ideal-tier model")?;
        ideal_model = Some(m);
    }
    let mut surrogate_model = None;
    if tiers.surrogate_model {
        let mut m = build_from_spec(&spec);
        read_block_into_model(&mut reader, &mut m, "surrogate-tier model")?;
        surrogate_model = Some(m);
    }
    let mut surrogate_net = None;
    if let Some(s) = &meta.surrogate {
        let mut net = build_from_spec(&s.arch);
        read_block_into_model(&mut reader, &mut net, "surrogate net")?;
        surrogate_net = Some(net);
    }
    Ok(ArtifactBundle {
        model,
        meta,
        ideal_model,
        surrogate_model,
        surrogate_net,
    })
}

/// Saves an artifact to a file (see [`save_artifact`]).
///
/// # Errors
///
/// Propagates [`save_artifact`] errors.
pub fn save_artifact_to_file(
    model: &mut Sequential,
    meta: &ArtifactMeta,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactError> {
    // Crash-safe: temp file + atomic rename, so an interrupted save never
    // leaves a truncated artifact for a server to trip over.
    xbar_nn::serialize::write_file_atomic(path, |writer| save_artifact(model, meta, writer))
}

/// Loads an artifact from a file (see [`load_artifact`]).
///
/// # Errors
///
/// Propagates [`load_artifact`] errors.
pub fn load_artifact_from_file(
    path: impl AsRef<Path>,
) -> Result<(Sequential, ArtifactMeta), ArtifactError> {
    let file = std::fs::File::open(path)?;
    load_artifact(io::BufReader::new(file))
}

/// Saves a fidelity-tier bundle to a file (see [`save_artifact_bundle`]).
///
/// # Errors
///
/// Propagates [`save_artifact_bundle`] errors.
pub fn save_artifact_bundle_to_file(
    bundle: &mut ArtifactBundle,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactError> {
    xbar_nn::serialize::write_file_atomic(path, |writer| save_artifact_bundle(bundle, writer))
}

/// Loads a fidelity-tier bundle from a file (see [`load_artifact_bundle`]).
///
/// # Errors
///
/// Propagates [`load_artifact_bundle`] errors.
pub fn load_artifact_bundle_from_file(
    path: impl AsRef<Path>,
) -> Result<ArtifactBundle, ArtifactError> {
    let file = std::fs::File::open(path)?;
    load_artifact_bundle(io::BufReader::new(file))
}

/// Loads a fidelity-tier bundle by memory-mapping the file and parsing the
/// tensor blocks straight out of the page cache — no read-side copies of
/// the (potentially large) weight payload. Behaviour is byte-for-byte
/// identical to [`load_artifact_bundle_from_file`]; only the I/O path
/// differs.
///
/// # Errors
///
/// Propagates mapping failures as [`ArtifactError::Io`], plus the usual
/// [`load_artifact_bundle`] errors.
pub fn load_artifact_bundle_mmap(path: impl AsRef<Path>) -> Result<ArtifactBundle, ArtifactError> {
    let map = crate::mmap::MappedFile::open(path)?;
    load_artifact_bundle(map.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::map_to_crossbars;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::train::{evaluate, DataRef};
    use xbar_nn::{Layer, Mode};
    use xbar_sim::params::CrossbarParams;
    use xbar_tensor::Tensor;

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8 * 4 * 4, 4, 2)),
        ])
    }

    fn mapped() -> (Sequential, ArtifactMeta) {
        let model = tiny_model();
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0;
        let cfg = MapConfig {
            params,
            ..Default::default()
        };
        let (noisy, report) = map_to_crossbars(&model, &cfg).unwrap();
        let mut meta = ArtifactMeta::from_mapping("tiny test model", &cfg, &report);
        meta.input_shape = vec![1, 8, 8];
        (noisy, meta)
    }

    fn save_to_vec(model: &mut Sequential, meta: &ArtifactMeta) -> Vec<u8> {
        let mut buf = Vec::new();
        save_artifact(model, meta, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bit_identical_and_metadata_survives() {
        let (mut noisy, meta) = mapped();
        let buf = save_to_vec(&mut noisy, &meta);
        let (mut loaded, loaded_meta) = load_artifact(buf.as_slice()).unwrap();
        let a: Vec<Tensor> = noisy
            .state_tensors_mut()
            .into_iter()
            .map(|t| t.clone())
            .collect();
        let b: Vec<Tensor> = loaded
            .state_tensors_mut()
            .into_iter()
            .map(|t| t.clone())
            .collect();
        assert_eq!(a, b, "W' tensors must round-trip bit-identically");
        assert_eq!(loaded_meta.label, "tiny test model");
        assert_eq!(loaded_meta.rows, 16);
        assert_eq!(loaded_meta.num_classes, 4, "derived from the final linear");
        assert_eq!(loaded_meta.input_len(), 64);
        assert!(loaded_meta.crossbar_count > 0);
    }

    #[test]
    fn round_trip_preserves_eval_outputs_exactly() {
        let (mut noisy, meta) = mapped();
        let x = Tensor::from_fn(&[6, 1, 8, 8], |i| ((i * 37) % 11) as f32 / 11.0 - 0.5);
        let before = noisy.forward(&x, Mode::Eval).unwrap();
        let buf = save_to_vec(&mut noisy, &meta);
        let (mut loaded, _) = load_artifact(buf.as_slice()).unwrap();
        let after = loaded.forward(&x, Mode::Eval).unwrap();
        assert_eq!(before, after, "identical logits ⇒ identical accuracy");
        // And identical accuracy on a labelled set, the acceptance check.
        let labels: Vec<usize> = (0..6).map(|i| i % 4).collect();
        let data = DataRef::new(&x, &labels).unwrap();
        let acc_before = evaluate(&mut noisy, data, 3).unwrap();
        let data = DataRef::new(&x, &labels).unwrap();
        let acc_after = evaluate(&mut loaded, data, 3).unwrap();
        assert_eq!(acc_before, acc_after);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_artifact(&b"NOTMODEL........."[..]).unwrap_err();
        assert!(matches!(err, ArtifactError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_artifact_rejected_with_description() {
        let (mut noisy, meta) = mapped();
        let mut buf = save_to_vec(&mut noisy, &meta);
        buf.truncate(buf.len() - 9);
        let err = load_artifact(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Malformed(_)), "{msg}");
        assert!(msg.contains("tensor"), "{msg}");
    }

    #[test]
    fn shape_mismatched_tensor_block_rejected_clearly() {
        let (mut noisy, meta) = mapped();
        let buf = save_to_vec(&mut noisy, &meta);
        // Corrupt the declared architecture: claim the final linear is
        // wider than the stored tensors.
        let text = String::from_utf8_lossy(&buf).into_owned();
        let patched = text.replacen("\"out\":4", "\"out\":5", 1);
        assert_ne!(text, patched, "meta should contain the linear spec");
        // Rebuild the byte stream with the patched meta (length changed).
        let meta_start = 16;
        let old_meta_len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let new_meta = &patched.as_bytes()[meta_start..meta_start + old_meta_len];
        let mut out = Vec::new();
        out.extend_from_slice(&buf[..8]);
        out.extend_from_slice(&(new_meta.len() as u64).to_le_bytes());
        out.extend_from_slice(new_meta);
        out.extend_from_slice(&buf[meta_start + old_meta_len..]);
        let err = load_artifact(out.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Mismatch(_)), "{msg}");
        assert!(msg.contains("saved values"), "{msg}");
    }

    #[test]
    fn pre_fault_tolerance_artifacts_still_load() {
        // Artifacts written before the fault-tolerance fields existed carry
        // no stuck_cells/…/max_fault_score keys; they must load with the
        // fields defaulted, not be rejected.
        let (mut noisy, meta) = mapped();
        let mut buf = save_to_vec(&mut noisy, &meta);
        let old_meta_len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let text = String::from_utf8(buf[16..16 + old_meta_len].to_vec()).unwrap();
        let stripped = text
            .replacen(",\"stuck_cells\":0", "", 1)
            .replacen(",\"repaired_columns\":0", "", 1)
            .replacen(",\"corrected_cells\":0", "", 1)
            .replacen(",\"degraded_tiles\":0", "", 1)
            .replacen(",\"max_fault_score\":0", "", 1);
        assert_ne!(stripped, text, "fields should have been present to strip");
        let mut out = Vec::new();
        out.extend_from_slice(&buf[..8]);
        out.extend_from_slice(&(stripped.len() as u64).to_le_bytes());
        out.extend_from_slice(stripped.as_bytes());
        out.extend_from_slice(&buf[16 + old_meta_len..]);
        buf = out;
        let (_, loaded) = load_artifact(buf.as_slice()).unwrap();
        assert_eq!(loaded.stuck_cells, 0);
        assert_eq!(loaded.degraded_tiles, 0);
        assert!(!loaded.is_degraded());
        assert_eq!(loaded.max_fault_score, 0.0);
    }

    /// Surrogate record + freshly initialised net matching `mapped()`'s
    /// 16×16 crossbars.
    fn surrogate_parts(meta: &ArtifactMeta) -> (SurrogateMeta, Sequential) {
        let in_dim = surrogate_input_dim(meta.rows, meta.cols);
        let arch = vec![
            LayerSpec::Linear {
                in_f: in_dim,
                out_f: 32,
            },
            LayerSpec::ReLU,
            LayerSpec::Linear {
                in_f: 32,
                out_f: meta.cols,
            },
        ];
        let net = build_from_spec(&arch);
        let record = SurrogateMeta {
            rows: meta.rows,
            cols: meta.cols,
            g_min: 1e-6,
            g_max: 1e-4,
            v_read: 0.25,
            val_max_err: 0.011,
            val_rms_err: 0.002,
            train_pairs: 512,
            seed: 7,
            arch,
        };
        (record, net)
    }

    #[test]
    fn bundle_round_trip_is_byte_identical_and_legacy_reader_copes() {
        let (noisy, mut meta) = mapped();
        let (record, net) = surrogate_parts(&meta);
        meta.surrogate = Some(record);
        meta.surrogate_accuracy = Some(0.75);
        let mut bundle = ArtifactBundle {
            ideal_model: Some(tiny_model()),
            surrogate_model: Some(noisy.clone()),
            surrogate_net: Some(net),
            model: noisy,
            meta,
        };
        let mut buf = Vec::new();
        save_artifact_bundle(&mut bundle, &mut buf).unwrap();

        let mut loaded = load_artifact_bundle(buf.as_slice()).unwrap();
        assert!(loaded.ideal_model.is_some());
        assert!(loaded.surrogate_model.is_some());
        assert!(loaded.surrogate_net.is_some());
        let s = loaded.meta.surrogate.as_ref().unwrap();
        assert_eq!((s.rows, s.cols), (loaded.meta.rows, loaded.meta.cols));
        assert_eq!(s.val_max_err, 0.011);
        assert_eq!(loaded.meta.surrogate_accuracy, Some(0.75));

        // Byte-identical second save: the format round-trips exactly.
        let mut buf2 = Vec::new();
        save_artifact_bundle(&mut loaded, &mut buf2).unwrap();
        assert_eq!(buf, buf2, "save → load → save must be byte-identical");

        // A legacy reader ignores the tier flags and the trailing blocks but
        // still gets the exact-tier model and full meta.
        let (mut legacy_model, legacy_meta) = load_artifact(buf.as_slice()).unwrap();
        assert!(legacy_meta.surrogate.is_some());
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 13) as f32 / 13.0);
        let want = bundle.model.forward(&x, Mode::Eval).unwrap();
        let got = legacy_model.forward(&x, Mode::Eval).unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn mmap_bundle_load_matches_the_buffered_file_load() {
        let (noisy, mut meta) = mapped();
        let (record, net) = surrogate_parts(&meta);
        meta.surrogate = Some(record);
        let mut bundle = ArtifactBundle {
            ideal_model: Some(tiny_model()),
            surrogate_model: Some(noisy.clone()),
            surrogate_net: Some(net),
            model: noisy,
            meta,
        };
        let dir = std::env::temp_dir().join(format!("xbar_artifact_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.xbarmdl");
        save_artifact_bundle_to_file(&mut bundle, &path).unwrap();

        let mut buffered = load_artifact_bundle_from_file(&path).unwrap();
        let mut mapped = load_artifact_bundle_mmap(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // Both paths must produce the same models: re-serialize each and
        // compare bytes — exact equality, weights and meta alike.
        let mut via_file = Vec::new();
        save_artifact_bundle(&mut buffered, &mut via_file).unwrap();
        let mut via_mmap = Vec::new();
        save_artifact_bundle(&mut mapped, &mut via_mmap).unwrap();
        assert_eq!(via_file, via_mmap, "mmap load must equal buffered load");
    }

    #[test]
    fn legacy_artifact_without_surrogate_loads_as_exact_only_bundle() {
        let (mut noisy, meta) = mapped();
        let buf = save_to_vec(&mut noisy, &meta);
        let bundle = load_artifact_bundle(buf.as_slice()).unwrap();
        assert!(bundle.meta.surrogate.is_none());
        assert!(bundle.ideal_model.is_none());
        assert!(bundle.surrogate_model.is_none());
        assert!(bundle.surrogate_net.is_none());
    }

    #[test]
    fn surrogate_tile_shape_mismatch_rejected_on_save_and_load() {
        let (noisy, mut meta) = mapped();
        let (mut record, net) = surrogate_parts(&meta);

        // Save-side: record claims 8×8 tiles, mapping used 16×16.
        record.rows = 8;
        record.cols = 8;
        meta.surrogate = Some(record.clone());
        let mut bundle = ArtifactBundle {
            surrogate_net: Some(net),
            model: noisy,
            meta: meta.clone(),
            ideal_model: None,
            surrogate_model: None,
        };
        let err = save_artifact_bundle(&mut bundle, &mut Vec::new()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Mismatch(_)), "{msg}");
        assert!(msg.contains("8×8") && msg.contains("16×16"), "{msg}");

        // Load-side: hand-craft a header carrying the bad record, so a file
        // from a buggy or hostile writer is rejected too.
        let spec = spec_of(&bundle.model);
        let meta_bytes = meta
            .to_json(&spec, TierFlags::default())
            .to_json()
            .into_bytes();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(meta_bytes.len() as u64).to_le_bytes());
        buf.extend_from_slice(&meta_bytes);
        let err = load_artifact(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Mismatch(_)), "{msg}");
        assert!(msg.contains("partitioned onto"), "{msg}");

        // Geometry-mismatched net (wrong input width for the tile shape).
        let (mut record, net) = surrogate_parts(&bundle.meta);
        record.arch[0] = LayerSpec::Linear { in_f: 3, out_f: 32 };
        bundle.meta.surrogate = Some(record);
        bundle.surrogate_net = Some(net);
        let err = save_artifact_bundle(&mut bundle, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn surrogate_net_without_record_is_rejected() {
        let (noisy, meta) = mapped();
        let (_, net) = surrogate_parts(&meta);
        let mut bundle = ArtifactBundle {
            surrogate_net: Some(net),
            model: noisy,
            meta,
            ideal_model: None,
            surrogate_model: None,
        };
        let err = save_artifact_bundle(&mut bundle, &mut Vec::new()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Mismatch(_)), "{msg}");
        assert!(msg.contains("both or neither"), "{msg}");
    }

    #[test]
    fn file_helpers_round_trip() {
        let dir = std::env::temp_dir().join(format!("xbar_artifact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.xbarmdl");
        let (mut noisy, meta) = mapped();
        save_artifact_to_file(&mut noisy, &meta, &path).unwrap();
        let (_, loaded_meta) = load_artifact_from_file(&path).unwrap();
        assert_eq!(loaded_meta.label, meta.label);
        std::fs::remove_dir_all(&dir).ok();
    }
}
