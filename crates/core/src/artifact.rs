//! Persisted mapped-model artifacts (`XBARMDL1`).
//!
//! The paper's Fig. 2 pipeline is expensive: every tile of every layer is a
//! circuit solve. [`save_artifact`] persists the *result* — the non-ideal
//! `W'` network produced by [`crate::pipeline::map_to_crossbars`] together
//! with the mapping configuration and statistics — so inference serving
//! (`xbar-serve`) can amortise the mapping across millions of requests, the
//! way RxNN/GENIEx-style flows evaluate circuits once and reuse them.
//!
//! ## Layout
//!
//! ```text
//! magic   b"XBARMDL1"                     (8 bytes)
//! meta    u64 length + UTF-8 JSON object  (architecture spec, mapping
//!                                          summary, stats, accuracies)
//! tensors u64 count + per tensor          (u64 element count + LE f32 data;
//!                                          the model's full inference state
//!                                          incl. BatchNorm statistics, see
//!                                          xbar_nn::serialize)
//! ```
//!
//! Unlike a training checkpoint the artifact is self-contained: the JSON
//! meta embeds the layer-by-layer [`LayerSpec`] so a server can rebuild the
//! architecture without knowing the training scenario.

use crate::pipeline::{MapConfig, MapReport};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use xbar_nn::arch::{build_from_spec, spec_from_json, spec_of, spec_to_json, LayerSpec};
use xbar_nn::serialize::{
    read_exact_or_truncated, read_tensor_block_into, write_tensor_block, TensorBlockError,
};
use xbar_nn::Sequential;
use xbar_obs::json::Json;

const MAGIC: &[u8; 8] = b"XBARMDL1";
/// Refuse absurd meta blobs (corrupt length prefix) before allocating.
const MAX_META_BYTES: u64 = 64 << 20;

/// Error from artifact save/load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an artifact, truncated, or unparsable metadata.
    Malformed(String),
    /// The stored tensors do not fit the architecture the artifact itself
    /// declares (a corrupt or internally inconsistent file), or the model
    /// does not match a caller-supplied expectation.
    Mismatch(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
            ArtifactError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            ArtifactError::Mismatch(detail) => {
                write!(f, "artifact does not fit its declared model: {detail}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<TensorBlockError> for ArtifactError {
    fn from(e: TensorBlockError) -> Self {
        match e {
            TensorBlockError::Io(e) => ArtifactError::Io(e),
            TensorBlockError::Truncated(what) => ArtifactError::Malformed(what),
            TensorBlockError::Mismatch(detail) => ArtifactError::Mismatch(detail),
        }
    }
}

/// Descriptive metadata persisted with (and restored from) an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMeta {
    /// Free-form model label (e.g. `"VGG11 CIFAR10-like C/F s=0.8"`).
    pub label: String,
    /// Number of output classes.
    pub num_classes: usize,
    /// Expected input shape per example, `[C, H, W]`.
    pub input_shape: Vec<usize>,
    /// Crossbar rows of the mapping run.
    pub rows: usize,
    /// Crossbar columns of the mapping run.
    pub cols: usize,
    /// Pruning/`T`-transformation method (display form, e.g. `"C/F"`).
    pub method: String,
    /// `R` column rearrangement, if any (debug form).
    pub rearrange: Option<String>,
    /// Weight→conductance scale (debug form).
    pub scale: String,
    /// Circuit solver (debug form).
    pub solve: String,
    /// Device-variation seed of the mapping run.
    pub seed: u64,
    /// Total crossbar tiles the model occupied.
    pub crossbar_count: usize,
    /// Mean non-ideality factor over all mapped tiles.
    pub mean_nf: f64,
    /// Total circuit-solver iterations spent producing `W'`.
    pub solver_iterations: u64,
    /// Tiles that needed the non-convergence fallback.
    pub non_converged: usize,
    /// Software (pre-mapping) test accuracy, if measured.
    pub software_accuracy: Option<f64>,
    /// Non-ideal (mapped) test accuracy, if measured.
    pub crossbar_accuracy: Option<f64>,
    /// Stuck devices found by the read-verify pass.
    pub stuck_cells: usize,
    /// Faulty columns remapped onto spare columns.
    pub repaired_columns: usize,
    /// Stuck cells digitally corrected in the periphery.
    pub corrected_cells: usize,
    /// Tiles still above the fault threshold after repair — non-zero means
    /// the server reports degraded health while continuing to serve.
    pub degraded_tiles: usize,
    /// Worst post-repair tile fault score.
    pub max_fault_score: f64,
}

impl ArtifactMeta {
    /// Builds metadata from a mapping run's configuration and report.
    pub fn from_mapping(label: impl Into<String>, cfg: &MapConfig, report: &MapReport) -> Self {
        Self {
            label: label.into(),
            num_classes: 0,
            input_shape: vec![3, 32, 32],
            rows: cfg.params.rows,
            cols: cfg.params.cols,
            method: cfg.method.to_string(),
            rearrange: cfg.rearrange.map(|r| format!("{r:?}")),
            scale: format!("{:?}", cfg.scale),
            solve: format!("{:?}", cfg.solve),
            seed: cfg.seed,
            crossbar_count: report.crossbar_count(),
            mean_nf: report.mean_nf(),
            solver_iterations: report.solver_iterations(),
            non_converged: report.non_converged(),
            software_accuracy: None,
            crossbar_accuracy: None,
            stuck_cells: report.stuck_cells(),
            repaired_columns: report.repaired_columns(),
            corrected_cells: report.corrected_cells(),
            degraded_tiles: report.degraded_tiles(),
            max_fault_score: report.max_fault_score(),
        }
    }

    /// Whether the mapped model carries tiles that stayed faulty past the
    /// repair threshold.
    pub fn is_degraded(&self) -> bool {
        self.degraded_tiles > 0
    }

    /// Elements of one input example (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// JSON object used by the server's classify responses (a compact echo
    /// of the mapping provenance).
    pub fn summary_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("cols".into(), Json::Num(self.cols as f64)),
            ("method".into(), Json::Str(self.method.clone())),
            ("mean_nf".into(), Json::Num(self.mean_nf)),
            (
                "crossbar_count".into(),
                Json::Num(self.crossbar_count as f64),
            ),
            (
                "crossbar_accuracy".into(),
                self.crossbar_accuracy.map_or(Json::Null, Json::Num),
            ),
            ("stuck_cells".into(), Json::Num(self.stuck_cells as f64)),
            (
                "repaired_columns".into(),
                Json::Num(self.repaired_columns as f64),
            ),
            (
                "degraded_tiles".into(),
                Json::Num(self.degraded_tiles as f64),
            ),
        ])
    }

    fn to_json(&self, spec: &[LayerSpec]) -> Json {
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        Json::Obj(vec![
            ("format".into(), Json::Str("XBARMDL1".into())),
            ("label".into(), Json::Str(self.label.clone())),
            ("num_classes".into(), Json::Num(self.num_classes as f64)),
            (
                "input_shape".into(),
                Json::Arr(
                    self.input_shape
                        .iter()
                        .map(|&d| Json::Num(d as f64))
                        .collect(),
                ),
            ),
            ("arch".into(), spec_to_json(spec)),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("cols".into(), Json::Num(self.cols as f64)),
            ("method".into(), Json::Str(self.method.clone())),
            (
                "rearrange".into(),
                self.rearrange
                    .as_ref()
                    .map_or(Json::Null, |r| Json::Str(r.clone())),
            ),
            ("scale".into(), Json::Str(self.scale.clone())),
            ("solve".into(), Json::Str(self.solve.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "crossbar_count".into(),
                Json::Num(self.crossbar_count as f64),
            ),
            ("mean_nf".into(), Json::Num(self.mean_nf)),
            (
                "solver_iterations".into(),
                Json::Num(self.solver_iterations as f64),
            ),
            ("non_converged".into(), Json::Num(self.non_converged as f64)),
            ("software_accuracy".into(), opt_num(self.software_accuracy)),
            ("crossbar_accuracy".into(), opt_num(self.crossbar_accuracy)),
            ("stuck_cells".into(), Json::Num(self.stuck_cells as f64)),
            (
                "repaired_columns".into(),
                Json::Num(self.repaired_columns as f64),
            ),
            (
                "corrected_cells".into(),
                Json::Num(self.corrected_cells as f64),
            ),
            (
                "degraded_tiles".into(),
                Json::Num(self.degraded_tiles as f64),
            ),
            ("max_fault_score".into(), Json::Num(self.max_fault_score)),
        ])
    }

    fn from_json(j: &Json) -> Result<(Self, Vec<LayerSpec>), String> {
        let str_field = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("meta missing string field {name:?}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("meta missing integer field {name:?}"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            j.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("meta missing number field {name:?}"))
        };
        let opt_f64 = |name: &str| j.get(name).and_then(Json::as_f64);
        let opt_usize = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0) as usize;
        let spec = spec_from_json(j.get("arch").ok_or("meta missing \"arch\"")?)?;
        let input_shape = j
            .get("input_shape")
            .and_then(Json::as_arr)
            .ok_or("meta missing \"input_shape\"")?
            .iter()
            .map(|d| d.as_u64().map(|v| v as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or("\"input_shape\" must be non-negative integers")?;
        let meta = ArtifactMeta {
            label: str_field("label")?,
            num_classes: u64_field("num_classes")? as usize,
            input_shape,
            rows: u64_field("rows")? as usize,
            cols: u64_field("cols")? as usize,
            method: str_field("method")?,
            rearrange: j
                .get("rearrange")
                .and_then(Json::as_str)
                .map(str::to_string),
            scale: str_field("scale")?,
            solve: str_field("solve")?,
            seed: u64_field("seed")?,
            crossbar_count: u64_field("crossbar_count")? as usize,
            mean_nf: f64_field("mean_nf")?,
            solver_iterations: u64_field("solver_iterations")?,
            non_converged: u64_field("non_converged")? as usize,
            software_accuracy: opt_f64("software_accuracy"),
            crossbar_accuracy: opt_f64("crossbar_accuracy"),
            // Fault-tolerance fields are absent in artifacts written before
            // repair existed; default them to "no faults seen".
            stuck_cells: opt_usize("stuck_cells"),
            repaired_columns: opt_usize("repaired_columns"),
            corrected_cells: opt_usize("corrected_cells"),
            degraded_tiles: opt_usize("degraded_tiles"),
            max_fault_score: opt_f64("max_fault_score").unwrap_or(0.0),
        };
        Ok((meta, spec))
    }
}

/// Writes the mapped model (`W'` network) and its metadata to `writer`.
///
/// The architecture spec is derived from the model itself; `meta.num_classes`
/// is derived from the final linear layer if left at zero.
///
/// # Errors
///
/// Returns [`ArtifactError::Io`] on write failure.
pub fn save_artifact<W: Write>(
    model: &mut Sequential,
    meta: &ArtifactMeta,
    mut writer: W,
) -> Result<(), ArtifactError> {
    let spec = spec_of(model);
    let mut meta = meta.clone();
    if meta.num_classes == 0 {
        meta.num_classes = model
            .layers()
            .iter()
            .rev()
            .find_map(|l| l.as_linear())
            .map(|l| l.out_features())
            .unwrap_or(0);
    }
    let meta_bytes = meta.to_json(&spec).to_json().into_bytes();
    writer.write_all(MAGIC)?;
    writer.write_all(&(meta_bytes.len() as u64).to_le_bytes())?;
    writer.write_all(&meta_bytes)?;
    let tensors = model.state_tensors_mut();
    write_tensor_block(writer, tensors.iter().map(|t| &**t))?;
    Ok(())
}

/// Reads an artifact, rebuilding the model from the embedded architecture
/// spec and restoring its full inference state.
///
/// # Errors
///
/// * [`ArtifactError::Io`] on read failure;
/// * [`ArtifactError::Malformed`] for bad magic, truncation, or unparsable
///   metadata;
/// * [`ArtifactError::Mismatch`] when the tensor block does not fit the
///   declared architecture (names the offending tensor and sizes).
pub fn load_artifact<R: Read>(mut reader: R) -> Result<(Sequential, ArtifactMeta), ArtifactError> {
    let mut magic = [0u8; 8];
    read_exact_or_truncated(&mut reader, &mut magic, || "reading magic".into())?;
    if &magic != MAGIC {
        return Err(ArtifactError::Malformed(format!(
            "bad magic {:?} (not an XBARMDL1 artifact)",
            String::from_utf8_lossy(&magic)
        )));
    }
    let mut len8 = [0u8; 8];
    read_exact_or_truncated(&mut reader, &mut len8, || "reading metadata length".into())?;
    let meta_len = u64::from_le_bytes(len8);
    if meta_len > MAX_META_BYTES {
        return Err(ArtifactError::Malformed(format!(
            "metadata length {meta_len} exceeds the {MAX_META_BYTES}-byte limit"
        )));
    }
    let mut meta_bytes = vec![0u8; meta_len as usize];
    read_exact_or_truncated(&mut reader, &mut meta_bytes, || "reading metadata".into())?;
    let meta_text = String::from_utf8(meta_bytes)
        .map_err(|_| ArtifactError::Malformed("metadata is not UTF-8".into()))?;
    let json = Json::parse(&meta_text)
        .map_err(|e| ArtifactError::Malformed(format!("metadata JSON: {e}")))?;
    let (meta, spec) = ArtifactMeta::from_json(&json).map_err(ArtifactError::Malformed)?;
    let mut model = build_from_spec(&spec);
    let mut slots = model.state_tensors_mut();
    read_tensor_block_into(reader, &mut slots).map_err(|e| match e {
        TensorBlockError::Mismatch(detail) => ArtifactError::Mismatch(format!(
            "{detail} — the tensor block disagrees with the architecture the \
             artifact declares; the file is corrupt or was produced by an \
             incompatible writer"
        )),
        other => other.into(),
    })?;
    Ok((model, meta))
}

/// Saves an artifact to a file (see [`save_artifact`]).
///
/// # Errors
///
/// Propagates [`save_artifact`] errors.
pub fn save_artifact_to_file(
    model: &mut Sequential,
    meta: &ArtifactMeta,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactError> {
    // Crash-safe: temp file + atomic rename, so an interrupted save never
    // leaves a truncated artifact for a server to trip over.
    xbar_nn::serialize::write_file_atomic(path, |writer| save_artifact(model, meta, writer))
}

/// Loads an artifact from a file (see [`load_artifact`]).
///
/// # Errors
///
/// Propagates [`load_artifact`] errors.
pub fn load_artifact_from_file(
    path: impl AsRef<Path>,
) -> Result<(Sequential, ArtifactMeta), ArtifactError> {
    let file = std::fs::File::open(path)?;
    load_artifact(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::map_to_crossbars;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::train::{evaluate, DataRef};
    use xbar_nn::{Layer, Mode};
    use xbar_sim::params::CrossbarParams;
    use xbar_tensor::Tensor;

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8 * 4 * 4, 4, 2)),
        ])
    }

    fn mapped() -> (Sequential, ArtifactMeta) {
        let model = tiny_model();
        let mut params = CrossbarParams::with_size(16);
        params.sigma_variation = 0.0;
        let cfg = MapConfig {
            params,
            ..Default::default()
        };
        let (noisy, report) = map_to_crossbars(&model, &cfg).unwrap();
        let mut meta = ArtifactMeta::from_mapping("tiny test model", &cfg, &report);
        meta.input_shape = vec![1, 8, 8];
        (noisy, meta)
    }

    fn save_to_vec(model: &mut Sequential, meta: &ArtifactMeta) -> Vec<u8> {
        let mut buf = Vec::new();
        save_artifact(model, meta, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bit_identical_and_metadata_survives() {
        let (mut noisy, meta) = mapped();
        let buf = save_to_vec(&mut noisy, &meta);
        let (mut loaded, loaded_meta) = load_artifact(buf.as_slice()).unwrap();
        let a: Vec<Tensor> = noisy
            .state_tensors_mut()
            .into_iter()
            .map(|t| t.clone())
            .collect();
        let b: Vec<Tensor> = loaded
            .state_tensors_mut()
            .into_iter()
            .map(|t| t.clone())
            .collect();
        assert_eq!(a, b, "W' tensors must round-trip bit-identically");
        assert_eq!(loaded_meta.label, "tiny test model");
        assert_eq!(loaded_meta.rows, 16);
        assert_eq!(loaded_meta.num_classes, 4, "derived from the final linear");
        assert_eq!(loaded_meta.input_len(), 64);
        assert!(loaded_meta.crossbar_count > 0);
    }

    #[test]
    fn round_trip_preserves_eval_outputs_exactly() {
        let (mut noisy, meta) = mapped();
        let x = Tensor::from_fn(&[6, 1, 8, 8], |i| ((i * 37) % 11) as f32 / 11.0 - 0.5);
        let before = noisy.forward(&x, Mode::Eval).unwrap();
        let buf = save_to_vec(&mut noisy, &meta);
        let (mut loaded, _) = load_artifact(buf.as_slice()).unwrap();
        let after = loaded.forward(&x, Mode::Eval).unwrap();
        assert_eq!(before, after, "identical logits ⇒ identical accuracy");
        // And identical accuracy on a labelled set, the acceptance check.
        let labels: Vec<usize> = (0..6).map(|i| i % 4).collect();
        let data = DataRef::new(&x, &labels).unwrap();
        let acc_before = evaluate(&mut noisy, data, 3).unwrap();
        let data = DataRef::new(&x, &labels).unwrap();
        let acc_after = evaluate(&mut loaded, data, 3).unwrap();
        assert_eq!(acc_before, acc_after);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_artifact(&b"NOTMODEL........."[..]).unwrap_err();
        assert!(matches!(err, ArtifactError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_artifact_rejected_with_description() {
        let (mut noisy, meta) = mapped();
        let mut buf = save_to_vec(&mut noisy, &meta);
        buf.truncate(buf.len() - 9);
        let err = load_artifact(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Malformed(_)), "{msg}");
        assert!(msg.contains("tensor"), "{msg}");
    }

    #[test]
    fn shape_mismatched_tensor_block_rejected_clearly() {
        let (mut noisy, meta) = mapped();
        let buf = save_to_vec(&mut noisy, &meta);
        // Corrupt the declared architecture: claim the final linear is
        // wider than the stored tensors.
        let text = String::from_utf8_lossy(&buf).into_owned();
        let patched = text.replacen("\"out\":4", "\"out\":5", 1);
        assert_ne!(text, patched, "meta should contain the linear spec");
        // Rebuild the byte stream with the patched meta (length changed).
        let meta_start = 16;
        let old_meta_len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let new_meta = &patched.as_bytes()[meta_start..meta_start + old_meta_len];
        let mut out = Vec::new();
        out.extend_from_slice(&buf[..8]);
        out.extend_from_slice(&(new_meta.len() as u64).to_le_bytes());
        out.extend_from_slice(new_meta);
        out.extend_from_slice(&buf[meta_start + old_meta_len..]);
        let err = load_artifact(out.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ArtifactError::Mismatch(_)), "{msg}");
        assert!(msg.contains("saved values"), "{msg}");
    }

    #[test]
    fn pre_fault_tolerance_artifacts_still_load() {
        // Artifacts written before the fault-tolerance fields existed carry
        // no stuck_cells/…/max_fault_score keys; they must load with the
        // fields defaulted, not be rejected.
        let (mut noisy, meta) = mapped();
        let mut buf = save_to_vec(&mut noisy, &meta);
        let old_meta_len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let text = String::from_utf8(buf[16..16 + old_meta_len].to_vec()).unwrap();
        let stripped = text
            .replacen(",\"stuck_cells\":0", "", 1)
            .replacen(",\"repaired_columns\":0", "", 1)
            .replacen(",\"corrected_cells\":0", "", 1)
            .replacen(",\"degraded_tiles\":0", "", 1)
            .replacen(",\"max_fault_score\":0", "", 1);
        assert_ne!(stripped, text, "fields should have been present to strip");
        let mut out = Vec::new();
        out.extend_from_slice(&buf[..8]);
        out.extend_from_slice(&(stripped.len() as u64).to_le_bytes());
        out.extend_from_slice(stripped.as_bytes());
        out.extend_from_slice(&buf[16 + old_meta_len..]);
        buf = out;
        let (_, loaded) = load_artifact(buf.as_slice()).unwrap();
        assert_eq!(loaded.stuck_cells, 0);
        assert_eq!(loaded.degraded_tiles, 0);
        assert!(!loaded.is_degraded());
        assert_eq!(loaded.max_fault_score, 0.0);
    }

    #[test]
    fn file_helpers_round_trip() {
        let dir = std::env::temp_dir().join(format!("xbar_artifact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.xbarmdl");
        let (mut noisy, meta) = mapped();
        save_artifact_to_file(&mut noisy, &meta, &path).unwrap();
        let (_, loaded_meta) = load_artifact_from_file(&path).unwrap();
        assert_eq!(loaded_meta.label, meta.label);
        std::fs::remove_dir_all(&dir).ok();
    }
}
