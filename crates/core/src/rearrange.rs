//! The R transformation: crossbar-column rearrangement (paper Section VI-A).
//!
//! For each panel, the score `(μ·σ)^½` is computed per column from the
//! absolute weight values; columns are then reordered so that low-score
//! (low-conductance) columns share crossbar tiles, raising the proportion of
//! near-`Gmin` synapses per tile and cutting NF where it matters. The
//! permutation is recorded so `R⁻¹` can restore column order after the
//! non-ideal weights come back from the crossbar simulation.

use xbar_tensor::stats::mu_sigma_score;
use xbar_tensor::Tensor;

/// Column placement policy after sorting by `(μ·σ)^½`.
///
/// Two effects are in play (see the A3 ablation in `xbar-bench`):
///
/// * **grouping** — putting similar-score columns in the same tile raises
///   the proportion of low-conductance synapses in most tiles (the paper's
///   stated mechanism);
/// * **within-tile position** — the row wire runs from the driver across the
///   tile's columns, so a high-current (dark) column placed far from the
///   driver drags its own large current across every wire segment. Placing
///   dark columns *near* the driver minimises the cumulative IR drop.
///
/// `GroupedDescending` combines both and is the strongest policy in our
/// circuit model; `Ascending` and `CenterOut` realise the orderings the
/// paper describes/visualises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnOrder {
    /// Ascending score order: low-conductance columns pack into the leading
    /// tiles; within a tile, dark columns sit far from the driver.
    Ascending,
    /// Descending score order: dark columns near the driver everywhere, at
    /// the cost of mixing tiles less cleanly at tile boundaries.
    Descending,
    /// Low-score columns at the centre, high-score at the peripheries — the
    /// layout visualised in the paper's Fig. 3(f) heatmaps.
    CenterOut,
    /// Ascending grouping into tiles of `tile_cols`, then descending within
    /// each tile: low-G tiles stay grouped *and* every tile's darkest
    /// columns sit next to the driver.
    GroupedDescending,
}

/// A recorded column permutation (R and its inverse R⁻¹).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rearrangement {
    /// `perm[new_col] = old_col`.
    perm: Vec<usize>,
}

impl Rearrangement {
    /// Computes the rearrangement for a matrix under the given policy.
    /// `tile_cols` is the crossbar tile width (used by
    /// [`ColumnOrder::GroupedDescending`]; ignored otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `matrix` is not 2-D or `tile_cols` is zero.
    pub fn compute(matrix: &Tensor, order: ColumnOrder, tile_cols: usize) -> Self {
        assert!(tile_cols > 0, "tile width must be non-zero");
        let cols = matrix.cols();
        let scores: Vec<f64> = (0..cols).map(|c| mu_sigma_score(&matrix.col(c))).collect();
        let mut ascending: Vec<usize> = (0..cols).collect();
        ascending.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("NaN column score")
                .then(a.cmp(&b))
        });
        let perm = match order {
            ColumnOrder::Ascending => ascending,
            ColumnOrder::Descending => {
                let mut desc = ascending;
                desc.reverse();
                desc
            }
            ColumnOrder::GroupedDescending => {
                let mut grouped = Vec::with_capacity(cols);
                for chunk in ascending.chunks(tile_cols) {
                    grouped.extend(chunk.iter().rev());
                }
                grouped
            }
            ColumnOrder::CenterOut => {
                // Place ascending scores from the centre outward: smallest
                // in the middle, growing toward both edges. Exact placement:
                // positions sorted by distance from centre.
                let centre = cols / 2;
                let mut by_distance: Vec<usize> = (0..cols).collect();
                by_distance.sort_by_key(|&p| {
                    let d = p as isize - centre as isize;
                    (d.abs(), d) // ties: left of centre first
                });
                let mut perm = vec![0usize; cols];
                for (k, &pos) in by_distance.iter().enumerate() {
                    perm[pos] = ascending[k];
                }
                perm
            }
        };
        Self { perm }
    }

    /// Identity rearrangement for `cols` columns.
    pub fn identity(cols: usize) -> Self {
        Self {
            perm: (0..cols).collect(),
        }
    }

    /// The permutation: `perm()[new_col] = old_col`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Applies R: returns the matrix with columns reordered.
    ///
    /// # Panics
    ///
    /// Panics if the column count disagrees with the recorded permutation.
    pub fn apply(&self, matrix: &Tensor) -> Tensor {
        assert_eq!(matrix.cols(), self.perm.len(), "column count mismatch");
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let mut out = Tensor::zeros(&[rows, cols]);
        for (new_c, &old_c) in self.perm.iter().enumerate() {
            for r in 0..rows {
                out.set2(r, new_c, matrix.at2(r, old_c));
            }
        }
        out
    }

    /// Applies R⁻¹: restores original column order.
    ///
    /// # Panics
    ///
    /// Panics if the column count disagrees with the recorded permutation.
    pub fn invert(&self, matrix: &Tensor) -> Tensor {
        assert_eq!(matrix.cols(), self.perm.len(), "column count mismatch");
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let mut out = Tensor::zeros(&[rows, cols]);
        for (new_c, &old_c) in self.perm.iter().enumerate() {
            for r in 0..rows {
                out.set2(r, old_c, matrix.at2(r, new_c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graded_matrix() -> Tensor {
        // Column c has constant magnitude c+jitter so scores order 0..4, with
        // within-column spread so σ is non-zero.
        Tensor::from_fn(&[4, 5], |i| {
            let c = i % 5;
            let r = i / 5;
            (c as f32 + 1.0) * (1.0 + 0.1 * r as f32)
        })
    }

    #[test]
    fn ascending_orders_by_score() {
        let m = graded_matrix();
        let r = Rearrangement::compute(&m, ColumnOrder::Ascending, 32);
        assert_eq!(r.perm(), &[0, 1, 2, 3, 4]);
        // Reversed input gives reversed permutation.
        let rev = Tensor::from_fn(&[4, 5], |i| {
            let c = i % 5;
            let r = i / 5;
            (5.0 - c as f32) * (1.0 + 0.1 * r as f32)
        });
        let r = Rearrangement::compute(&rev, ColumnOrder::Ascending, 32);
        assert_eq!(r.perm(), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn apply_then_invert_is_identity() {
        let m = graded_matrix();
        for order in [
            ColumnOrder::Ascending,
            ColumnOrder::Descending,
            ColumnOrder::CenterOut,
            ColumnOrder::GroupedDescending,
        ] {
            let r = Rearrangement::compute(&m, order, 2);
            let back = r.invert(&r.apply(&m));
            assert_eq!(back, m, "{order:?}");
        }
    }

    #[test]
    fn descending_reverses_ascending() {
        let m = graded_matrix();
        let r = Rearrangement::compute(&m, ColumnOrder::Descending, 2);
        assert_eq!(r.perm(), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn grouped_descending_groups_then_reverses_within_tiles() {
        let m = graded_matrix(); // ascending scores 0..4, tile width 2
        let r = Rearrangement::compute(&m, ColumnOrder::GroupedDescending, 2);
        // Ascending chunks [0,1][2,3][4] reversed within: [1,0][3,2][4].
        assert_eq!(r.perm(), &[1, 0, 3, 2, 4]);
    }

    #[test]
    fn perm_is_a_permutation() {
        let m = graded_matrix();
        for order in [
            ColumnOrder::Ascending,
            ColumnOrder::Descending,
            ColumnOrder::CenterOut,
            ColumnOrder::GroupedDescending,
        ] {
            let r = Rearrangement::compute(&m, order, 2);
            let mut sorted = r.perm().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "{order:?}");
        }
    }

    #[test]
    fn center_out_puts_smallest_score_in_middle() {
        let m = graded_matrix(); // scores ascend with column id
        let r = Rearrangement::compute(&m, ColumnOrder::CenterOut, 32);
        let centre = 5 / 2;
        assert_eq!(r.perm()[centre], 0, "smallest-score column at the centre");
        // Largest score lands at a periphery.
        let pos_of_largest = r.perm().iter().position(|&c| c == 4).unwrap();
        assert!(pos_of_largest == 0 || pos_of_largest == 4);
    }

    #[test]
    fn ascending_groups_low_columns_into_leading_tile() {
        // 6 columns, tile width 3: after R the three smallest-score columns
        // share the first tile.
        let m = Tensor::from_fn(&[2, 6], |i| {
            let c = i % 6;
            let mag = [5.0f32, 0.1, 4.0, 0.2, 3.0, 0.3][c];
            mag * (1.0 + 0.2 * (i / 6) as f32)
        });
        let r = Rearrangement::compute(&m, ColumnOrder::Ascending, 32);
        let rearranged = r.apply(&m);
        let first_tile_max: f32 = (0..3)
            .map(|c| {
                rearranged
                    .col(c)
                    .iter()
                    .fold(0.0f32, |a, &v| a.max(v.abs()))
            })
            .fold(0.0, f32::max);
        let second_tile_min: f32 = (3..6)
            .map(|c| {
                rearranged
                    .col(c)
                    .iter()
                    .fold(f32::MAX, |a, &v| a.min(v.abs()))
            })
            .fold(f32::MAX, f32::min);
        assert!(first_tile_max < second_tile_min);
    }

    #[test]
    fn identity_is_noop() {
        let m = graded_matrix();
        let r = Rearrangement::identity(5);
        assert_eq!(r.apply(&m), m);
        assert_eq!(r.invert(&m), m);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn apply_checks_width() {
        let r = Rearrangement::identity(3);
        r.apply(&Tensor::zeros(&[2, 4]));
    }
}
