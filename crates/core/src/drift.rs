//! Whole-model retention-drift state.
//!
//! [`ModelDriftState`] wraps a mapped model the way the physical accelerator
//! holds it: every weighted layer's unrolled `fan_in × fan_out` matrix is
//! programmed onto a differential conductance pair
//! ([`xbar_sim::drift::ProgrammedPair`]), and the per-device retention
//! clocks advance only through an explicit [`advance_time`]
//! (`ModelDriftState::advance_time`) call. At any elapsed time the state can
//! be *snapshotted* back into a [`Sequential`] whose weights reflect the
//! decayed conductances — the model a serving process would actually be
//! running — and the mitigation ladder operates directly on the programmed
//! pairs:
//!
//! 1. [`refresh`](ModelDriftState::refresh) — program-and-verify rewrite of
//!    cells whose decay exceeds a tolerance (same physical devices, same τ);
//! 2. [`remap_worst_columns`](ModelDriftState::remap_worst_columns) — the
//!    spare-column path: the most-decayed columns are relocated onto fresh
//!    devices with newly drawn retention constants;
//! 3. [`reprogram_all`](ModelDriftState::reprogram_all) — the full re-map
//!    backing a hot artifact swap.
//!
//! [`advance_time`]: ModelDriftState::advance_time

use xbar_nn::Sequential;
use xbar_prune::unroll::{unrolled_matrices, write_back};
use xbar_sim::conductance::{
    conductances_to_weights, weights_to_conductances, ConductanceMatrix, MappingScale,
};
use xbar_sim::drift::ProgrammedPair;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::{NonIdealSolver, SolveMethod};

pub use xbar_sim::drift::DriftModel;

/// Odd constant deriving independent per-layer seeds (splitmix-style).
const LAYER_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A point-in-time summary of the drift state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStatus {
    /// Seconds since initial programming.
    pub elapsed: f64,
    /// Mean per-cell decay fraction across every programmed device.
    pub mean_decay: f64,
    /// Worst per-cell decay fraction.
    pub max_decay: f64,
}

#[derive(Debug, Clone)]
struct DriftLayer {
    layer_index: usize,
    pair: ProgrammedPair,
}

/// The programmed conductance state of every weighted layer of a model,
/// with per-device retention clocks.
#[derive(Debug, Clone)]
pub struct ModelDriftState {
    base: Sequential,
    layers: Vec<DriftLayer>,
    params: CrossbarParams,
    elapsed: f64,
}

impl ModelDriftState {
    /// Programs `model`'s weighted layers onto differential pairs governed
    /// by `params.drift`, deterministically from `seed` (each layer gets an
    /// independent derived stream).
    ///
    /// # Errors
    ///
    /// Returns a description if `params.drift` is inconsistent.
    pub fn new(
        model: &Sequential,
        params: &CrossbarParams,
        seed: u64,
    ) -> std::result::Result<Self, String> {
        params.drift.validate()?;
        let mut layers = Vec::new();
        for ul in unrolled_matrices(model) {
            let abs_max = ul.matrix.abs_max();
            let pair =
                weights_to_conductances(&ul.matrix, MappingScale::PerLayerMax, abs_max, params);
            let layer_seed = seed ^ (ul.layer_index as u64 + 1).wrapping_mul(LAYER_SEED_MIX);
            layers.push(DriftLayer {
                layer_index: ul.layer_index,
                pair: ProgrammedPair::new(pair, params.drift, params.g_min(), layer_seed)?,
            });
        }
        Ok(Self {
            base: model.clone(),
            layers,
            params: *params,
            elapsed: 0.0,
        })
    }

    /// [`ModelDriftState::new`] over the default device parameters with the
    /// given drift model — the serving-side entry point, where no explicit
    /// [`CrossbarParams`] exist.
    ///
    /// # Errors
    ///
    /// Returns a description if `drift` is inconsistent.
    pub fn with_defaults(
        model: &Sequential,
        drift: DriftModel,
        seed: u64,
    ) -> std::result::Result<Self, String> {
        let params = CrossbarParams {
            drift,
            ..CrossbarParams::default()
        };
        Self::new(model, &params, seed)
    }

    /// Seconds since initial programming.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Total programmed devices across all layers (both arrays).
    pub fn cell_count(&self) -> usize {
        self.layers.iter().map(|l| l.pair.cell_count()).sum()
    }

    /// Advances every layer's retention clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn advance_time(&mut self, dt: f64) {
        for l in &mut self.layers {
            l.pair.advance_time(dt);
        }
        self.elapsed += dt;
    }

    /// Cell-weighted mean decay fraction over the whole model.
    pub fn mean_decay(&self) -> f64 {
        let total = self.cell_count();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.pair.mean_decay() * l.pair.cell_count() as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Worst per-cell decay fraction over the whole model.
    pub fn max_decay(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.pair.max_decay())
            .fold(0.0, f64::max)
    }

    /// Summary of the current drift state.
    pub fn status(&self) -> DriftStatus {
        DriftStatus {
            elapsed: self.elapsed,
            mean_decay: self.mean_decay(),
            max_decay: self.max_decay(),
        }
    }

    /// Rung 1 — program-and-verify refresh: rewrites every cell whose decay
    /// fraction exceeds `tol`. Returns the number of cells rewritten.
    pub fn refresh(&mut self, tol: f64) -> usize {
        self.layers
            .iter_mut()
            .map(|l| l.pair.refresh_drifted(tol))
            .sum()
    }

    /// Rung 2 — spare-column remap: every column whose mean decay exceeds
    /// `col_decay_threshold` is relocated onto fresh devices (new retention
    /// constants drawn deterministically from `salt`). Returns the number of
    /// columns remapped.
    pub fn remap_worst_columns(&mut self, col_decay_threshold: f64, salt: u64) -> usize {
        let mut remapped = 0;
        for l in &mut self.layers {
            let worst: Vec<usize> = l
                .pair
                .column_decay()
                .iter()
                .enumerate()
                .filter(|(_, d)| **d > col_decay_threshold)
                .map(|(c, _)| c)
                .collect();
            remapped += l.pair.remap_columns(&worst, salt);
        }
        remapped
    }

    /// Rung 3 — full re-map: every cell is rewritten to its programmed
    /// value. Returns the cell count.
    pub fn reprogram_all(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.pair.reprogram_all()).sum()
    }

    /// Whether every device currently reads back its programmed value.
    pub fn is_pristine(&self) -> bool {
        self.layers.iter().all(|l| l.pair.is_pristine())
    }

    /// Circuit-level drift probe: a deterministic micro-batch of
    /// `probe_count` read-voltage vectors drives a tile-sized slice of the
    /// first weighted layer's programmed pair — once against the pristine
    /// target conductances and once against the drifted current ones — with
    /// each array's whole micro-batch going through one
    /// [`NonIdealSolver::column_currents_batch`] call. Returns the summed
    /// relative deviation of the differential column currents: `0` on
    /// pristine devices, growing with physical decay, independent of the
    /// model's logits (which can saturate and hide drift).
    ///
    /// # Errors
    ///
    /// Propagates circuit-solver failures as a description.
    pub fn circuit_probe_deviation(
        &self,
        probe_count: usize,
        seed: u64,
    ) -> std::result::Result<f64, String> {
        let Some(layer) = self.layers.first() else {
            return Ok(0.0);
        };
        let target = layer.pair.target().clone();
        let current = layer.pair.current();
        let rows = self.params.rows.min(target.pos.rows());
        let cols = self.params.cols.min(target.pos.cols());
        if rows == 0 || cols == 0 {
            return Ok(0.0);
        }
        let tile = |g: &ConductanceMatrix| {
            let mut s = ConductanceMatrix::filled(rows, cols, 0.0);
            for i in 0..rows {
                for j in 0..cols {
                    s.set(i, j, g.at(i, j));
                }
            }
            s
        };
        let mut rng = seed | 1;
        let probes: Vec<Vec<f64>> = (0..probe_count.max(1))
            .map(|_| {
                (0..rows)
                    .map(|_| {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        (rng % 1000) as f64 / 999.0 * self.params.v_read
                    })
                    .collect()
            })
            .collect();
        let solver = NonIdealSolver::new(self.params, SolveMethod::LineRelaxation);
        let solve = |g: &ConductanceMatrix| {
            solver
                .column_currents_batch(&tile(g), &probes)
                .map_err(|e| format!("circuit probe solve failed: {e}"))
        };
        let (tp, tn) = (solve(&target.pos)?, solve(&target.neg)?);
        let (cp, cn) = (solve(&current.pos)?, solve(&current.neg)?);
        let mut dev = 0.0f64;
        let mut norm = 0.0f64;
        for k in 0..probes.len() {
            for j in 0..cols {
                let pristine = tp[k][j] - tn[k][j];
                let drifted = cp[k][j] - cn[k][j];
                dev += (drifted - pristine).abs();
                norm += pristine.abs();
            }
        }
        Ok(if norm > 0.0 { dev / norm } else { 0.0 })
    }

    /// The model as it reads at the current elapsed time: decayed
    /// conductances inverted back into weights and written into a clone of
    /// the programmed model. When no device has drifted this is a
    /// bit-identical clone of the base model.
    pub fn snapshot_model(&self) -> Sequential {
        let mut model = self.base.clone();
        if self.is_pristine() {
            return model;
        }
        for l in &self.layers {
            let weights = conductances_to_weights(&l.pair.current(), &self.params);
            write_back(&mut model, l.layer_index, &weights);
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::Layer;

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8 * 4 * 4, 4, 2)),
        ])
    }

    fn drifting_params() -> CrossbarParams {
        let mut p = CrossbarParams::with_size(16);
        p.drift = DriftModel::new(10.0, 1e5);
        p
    }

    fn weights_of(model: &Sequential) -> Vec<f32> {
        unrolled_matrices(model)
            .iter()
            .flat_map(|ul| ul.matrix.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn pristine_snapshot_is_bit_identical() {
        let model = tiny_model();
        let state = ModelDriftState::new(&model, &drifting_params(), 7).unwrap();
        assert!(state.is_pristine());
        assert_eq!(weights_of(&state.snapshot_model()), weights_of(&model));
        assert_eq!(state.mean_decay(), 0.0);
    }

    #[test]
    fn drift_shrinks_weight_magnitudes_and_refresh_recovers() {
        let model = tiny_model();
        let params = drifting_params();
        let mut state = ModelDriftState::new(&model, &params, 7).unwrap();
        state.advance_time(params.drift.horizon_for_decay(0.5));
        assert!(!state.is_pristine());
        assert!(state.mean_decay() > 0.3);
        let orig = weights_of(&model);
        let drifted = weights_of(&state.snapshot_model());
        let norm = |v: &[f32]| v.iter().map(|w| w.abs() as f64).sum::<f64>();
        assert!(
            norm(&drifted) < 0.9 * norm(&orig),
            "drift toward G_off must shrink the differential weights"
        );
        let rewritten = state.refresh(0.0);
        assert_eq!(rewritten, state.cell_count());
        assert_eq!(state.refresh(0.0), 0, "refresh is idempotent");
        assert!(state.is_pristine());
        assert_eq!(weights_of(&state.snapshot_model()), orig);
    }

    #[test]
    fn remap_targets_only_worst_columns() {
        let model = tiny_model();
        let params = drifting_params();
        let mut state = ModelDriftState::new(&model, &params, 3).unwrap();
        state.advance_time(params.drift.horizon_for_decay(0.2));
        let all_cols: usize = unrolled_matrices(&model)
            .iter()
            .map(|ul| ul.matrix.cols())
            .sum();
        let remapped = state.remap_worst_columns(0.3, 1);
        assert!(remapped > 0, "some columns must exceed the threshold");
        assert!(remapped < all_cols, "not every column should be remapped");
        // Remapping alone leaves the untouched columns drifted.
        assert!(!state.is_pristine());
    }

    #[test]
    fn reprogram_all_restores_base() {
        let model = tiny_model();
        let params = drifting_params();
        let mut state = ModelDriftState::new(&model, &params, 3).unwrap();
        state.advance_time(1e4);
        assert_eq!(state.reprogram_all(), state.cell_count());
        assert_eq!(weights_of(&state.snapshot_model()), weights_of(&model));
    }

    #[test]
    fn circuit_probe_deviation_tracks_physical_drift() {
        let model = tiny_model();
        let params = drifting_params();
        let mut state = ModelDriftState::new(&model, &params, 7).unwrap();
        assert_eq!(state.circuit_probe_deviation(4, 11).unwrap(), 0.0);
        state.advance_time(params.drift.horizon_for_decay(0.5));
        let drifted = state.circuit_probe_deviation(4, 11).unwrap();
        assert!(
            drifted > 0.05,
            "decay must show in the probe currents: {drifted}"
        );
        // Deterministic in (probe_count, seed), so sweeps are comparable.
        assert_eq!(drifted, state.circuit_probe_deviation(4, 11).unwrap());
        state.reprogram_all();
        assert_eq!(state.circuit_probe_deviation(4, 11).unwrap(), 0.0);
    }

    #[test]
    fn seed_determinism_across_states() {
        let model = tiny_model();
        let params = drifting_params();
        let mut a = ModelDriftState::new(&model, &params, 9).unwrap();
        let mut b = ModelDriftState::new(&model, &params, 9).unwrap();
        a.advance_time(5e3);
        b.advance_time(5e3);
        assert_eq!(
            weights_of(&a.snapshot_model()),
            weights_of(&b.snapshot_model())
        );
        let mut c = ModelDriftState::new(&model, &params, 10).unwrap();
        c.advance_time(5e3);
        assert_ne!(
            weights_of(&a.snapshot_model()),
            weights_of(&c.snapshot_model())
        );
    }
}
