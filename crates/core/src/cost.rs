//! Area and energy cost model for crossbar-mapped DNNs.
//!
//! The paper motivates structured pruning by hardware resource-efficiency:
//! fewer crossbars mean less array area, fewer peripherals and less energy.
//! This module turns the mapping's crossbar counts into first-order area and
//! energy estimates, so the trade-off the paper describes — efficiency up,
//! accuracy down — can be quantified on both axes (the `tradeoff` binary in
//! `xbar-bench` prints it).
//!
//! The constants follow the ISAAC/PUMA line of accelerator papers at a 32 nm
//! feature size; they are first-order (no wire/buffer modelling) and only
//! relative numbers are meaningful — which is all the trade-off needs.

use crate::pipeline::MapConfig;
use xbar_nn::{Layer, Sequential};
use xbar_prune::transform::transform;
use xbar_prune::unroll::unrolled_matrices;

/// First-order device/peripheral cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Feature size, nm.
    pub feature_nm: f64,
    /// Memristor cell area in F² (4F² for a crosspoint cell).
    pub cell_area_f2: f64,
    /// Per-cell read energy per MAC, fJ.
    pub cell_read_energy_fj: f64,
    /// ADC energy per column conversion, pJ.
    pub adc_energy_pj: f64,
    /// DAC/driver energy per row activation, pJ.
    pub dac_energy_pj: f64,
    /// Peripheral (ADC + DAC + mux) area per crossbar tile, µm².
    pub peripheral_area_um2: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            feature_nm: 32.0,
            cell_area_f2: 4.0,
            cell_read_energy_fj: 1.0,
            adc_energy_pj: 2.0,
            dac_energy_pj: 0.5,
            peripheral_area_um2: 1500.0,
        }
    }
}

/// Cost estimate for one mapped model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Crossbar tiles used (differential pairs count once; the factor 2 is
    /// inside the area/energy numbers).
    pub crossbars: usize,
    /// Total array + peripheral area, µm².
    pub area_um2: f64,
    /// Energy per inference (one 32×32 image), µJ.
    pub energy_uj: f64,
}

impl CostEstimate {
    /// Ratio of another estimate's area to this one's.
    pub fn area_saving_vs(&self, other: &CostEstimate) -> f64 {
        other.area_um2 / self.area_um2.max(f64::MIN_POSITIVE)
    }

    /// Ratio of another estimate's energy to this one's.
    pub fn energy_saving_vs(&self, other: &CostEstimate) -> f64 {
        other.energy_uj / self.energy_uj.max(f64::MIN_POSITIVE)
    }
}

/// Walks a model over a `32×32` input and estimates the mapped area and
/// per-inference energy under `cfg`'s crossbar size and pruning method.
///
/// Each weighted layer contributes:
/// * area: `tiles × 2 × rows × cols × cell_area + tiles × peripheral_area`;
/// * energy: every tile is activated once per output position
///   (`out_h·out_w` for convs, once for linears); each activation reads
///   `2·rows·cols` cells, drives `rows` DACs and converts `cols` ADC
///   samples.
pub fn estimate_cost(model: &Sequential, cfg: &MapConfig, cost: &CostModel) -> CostEstimate {
    let f_um = cost.feature_nm * 1e-3; // nm → µm
    let cell_area_um2 = cost.cell_area_f2 * f_um * f_um;
    let (rows, cols) = (cfg.params.rows, cfg.params.cols);
    let tile_array_area = 2.0 * (rows * cols) as f64 * cell_area_um2;

    // Walk spatial dims to know each conv's activation count.
    let mut h = 32usize;
    let mut w = 32usize;
    let mut estimate = CostEstimate::default();
    let unrolled = unrolled_matrices(model);
    let mut next_unrolled = unrolled.iter().peekable();
    for layer in model.layers() {
        let activations = match layer {
            Layer::Conv2d(conv) => {
                let geom = xbar_tensor::conv::ConvGeom {
                    in_c: conv.in_channels(),
                    h,
                    w,
                    kh: conv.kernel_size(),
                    kw: conv.kernel_size(),
                    stride: 1,
                    pad: 1,
                };
                let acts = geom.out_h() * geom.out_w();
                h = geom.out_h();
                w = geom.out_w();
                Some(acts)
            }
            Layer::Linear(_) => Some(1),
            Layer::MaxPool2d(p) => {
                h /= p.kernel_size();
                w /= p.kernel_size();
                None
            }
            _ => None,
        };
        let Some(activations) = activations else {
            continue;
        };
        let ul = next_unrolled.next().expect("weighted layers in sync");
        let t = transform(&ul.matrix, cfg.method, rows, cols);
        let tiles: usize = t
            .panels
            .iter()
            .map(|p| p.matrix.rows().div_ceil(rows) * p.matrix.cols().div_ceil(cols))
            .sum();
        estimate.crossbars += tiles;
        estimate.area_um2 += tiles as f64 * (tile_array_area + cost.peripheral_area_um2);
        let per_activation_pj = 2.0 * (rows * cols) as f64 * cost.cell_read_energy_fj * 1e-3
            + cols as f64 * cost.adc_energy_pj
            + rows as f64 * cost.dac_energy_pj;
        estimate.energy_uj += tiles as f64 * activations as f64 * per_activation_pj * 1e-6;
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MapConfig;
    use xbar_nn::vgg::{VggConfig, VggVariant};
    use xbar_prune::cf::prune_cf;
    use xbar_prune::PruneMethod;
    use xbar_sim::params::CrossbarParams;

    fn model() -> Sequential {
        VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(1)
    }

    #[test]
    fn dense_cost_is_positive_and_counts_match_compression_module() {
        let m = model();
        let cfg = MapConfig {
            params: CrossbarParams::with_size(32),
            ..Default::default()
        };
        let est = estimate_cost(&m, &cfg, &CostModel::default());
        assert!(est.area_um2 > 0.0 && est.energy_uj > 0.0);
        let expected = xbar_prune::compression::model_crossbar_count(&m, PruneMethod::None, 32, 32);
        assert_eq!(est.crossbars, expected);
    }

    #[test]
    fn pruning_saves_area_and_energy() {
        let mut m = model();
        let masks = prune_cf(&m, 0.7);
        masks.apply_to(&mut m);
        let dense_cfg = MapConfig {
            params: CrossbarParams::with_size(32),
            ..Default::default()
        };
        let pruned_cfg = MapConfig {
            method: PruneMethod::ChannelFilter,
            ..dense_cfg
        };
        let cost = CostModel::default();
        let dense = estimate_cost(&m, &dense_cfg, &cost);
        let pruned = estimate_cost(&m, &pruned_cfg, &cost);
        assert!(pruned.crossbars < dense.crossbars);
        assert!(pruned.area_saving_vs(&dense) > 1.0);
        assert!(pruned.energy_saving_vs(&dense) > 1.0);
    }

    #[test]
    fn bigger_tiles_fewer_crossbars_but_pricier_each() {
        let m = model();
        let cost = CostModel::default();
        let small = estimate_cost(
            &m,
            &MapConfig {
                params: CrossbarParams::with_size(16),
                ..Default::default()
            },
            &cost,
        );
        let large = estimate_cost(
            &m,
            &MapConfig {
                params: CrossbarParams::with_size(64),
                ..Default::default()
            },
            &cost,
        );
        assert!(large.crossbars < small.crossbars);
        // Peripheral sharing means large tiles win on area for dense layers.
        assert!(large.area_um2 < small.area_um2);
    }

    #[test]
    fn energy_scales_with_activation_count() {
        // A conv layer is activated per output pixel; the same weights as a
        // linear layer would be activated once.
        let mut conv_model = Sequential::new(vec![xbar_nn::Layer::Conv2d(
            xbar_nn::layers::Conv2d::new(3, 8, 3, 1, 1, 1),
        )]);
        let lin_model = Sequential::new(vec![xbar_nn::Layer::Linear(
            xbar_nn::layers::Linear::new(27, 8, 1),
        )]);
        let cfg = MapConfig {
            params: CrossbarParams::with_size(32),
            ..Default::default()
        };
        let cost = CostModel::default();
        let conv_cost = estimate_cost(&conv_model, &cfg, &cost);
        let lin_cost = estimate_cost(&lin_model, &cfg, &cost);
        assert_eq!(conv_cost.crossbars, lin_cost.crossbars);
        assert!(conv_cost.energy_uj > 100.0 * lin_cost.energy_uj);
        let _ = conv_model.num_params();
    }
}
