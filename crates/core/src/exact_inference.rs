//! True per-input analog MAC: hardware-in-the-loop forward passes.
//!
//! The paper's framework (and [`crate::pipeline`]) folds non-idealities into
//! effective weights `W'` once, then runs software inference. This module
//! provides the ground-truth alternative for a single weight matrix: every
//! input vector is applied to the non-ideal crossbar circuit and the column
//! currents are solved exactly. Signed inputs split into positive/negative
//! phases (two read cycles, as differential-input schemes do in hardware),
//! and the differential weight pair contributes `I_pos − I_neg` per phase —
//! four circuit solves per tile per input.
//!
//! This is orders of magnitude slower than the folded model (a circuit
//! solve per tile *per input*), so it is a validation and research tool,
//! not an inference path: ablation A6 shows the folded model stays within
//! 1 % of it.

use crate::partition::partition;
use crate::pipeline::{MapConfig, MapError};
use xbar_sim::conductance::weights_to_conductances;
use xbar_sim::solve::NonIdealSolver;
use xbar_sim::variation::apply_variation;
use xbar_tensor::{ShapeError, Tensor};

/// Computes `Y = X · W` through exact non-ideal crossbar solves, where `W`
/// is a `fan_in × fan_out` weight matrix and `X` is `[n, fan_in]` with
/// arbitrary-signed activations scaled so that `|x| ≤ 1` maps to the read
/// voltage.
///
/// # Errors
///
/// Returns [`MapError`] on shape mismatch or circuit-solver failure.
pub fn exact_matmul(weights: &Tensor, x: &Tensor, cfg: &MapConfig) -> Result<Tensor, MapError> {
    if weights.ndim() != 2 || x.ndim() != 2 {
        return Err(MapError::Shape(ShapeError::new(
            "exact_matmul expects 2-D weights and inputs",
        )));
    }
    let (fan_in, fan_out) = (weights.rows(), weights.cols());
    if x.cols() != fan_in {
        return Err(MapError::Shape(ShapeError::mismatch(
            "exact_matmul",
            &[x.rows(), fan_in],
            x.shape(),
        )));
    }
    cfg.params
        .validate()
        .map_err(|e| MapError::InvalidConfig(e.to_string()))?;
    let params = cfg.params;
    let solver = NonIdealSolver::new(params, cfg.solve);
    let x_abs_max = x.abs_max().max(f32::MIN_POSITIVE);
    let w_abs_max = weights.abs_max();
    let tiles = partition(weights, params.rows, params.cols);
    let mut out = Tensor::zeros(&[x.rows(), fan_out]);
    for (t_idx, tile) in tiles.iter().enumerate() {
        // Program the differential pair once per tile (with variation).
        let mut pair = weights_to_conductances(&tile.weights, cfg.scale, w_abs_max, &params);
        let g_min = params.g_min();
        apply_variation(
            &mut pair.pos,
            params.sigma_variation,
            g_min,
            cfg.seed.wrapping_add(t_idx as u64),
        );
        apply_variation(
            &mut pair.neg,
            params.sigma_variation,
            g_min,
            cfg.seed.wrapping_add(0x5EED ^ t_idx as u64),
        );
        let span = params.g_max() - g_min;
        // Current → weight-units conversion for this tile.
        let current_scale = (pair.w_ref as f64) * (x_abs_max as f64) / (span * params.v_read);
        // Gather every active input phase of every sample: each phase vector
        // drives both arrays, so one pass collects the whole batch and two
        // batched solves replace 2 × phases single solves against the same
        // programmed pair (bit-identical to the one-at-a-time path).
        let mut phase_vs: Vec<Vec<f64>> = Vec::with_capacity(2 * x.rows());
        let mut phase_of: Vec<(usize, f64)> = Vec::with_capacity(2 * x.rows());
        for sample in 0..x.rows() {
            let mut v_pos = vec![0.0f64; params.rows];
            let mut v_neg = vec![0.0f64; params.rows];
            let mut any_pos = false;
            let mut any_neg = false;
            for (r, (vp, vn)) in v_pos.iter_mut().zip(v_neg.iter_mut()).enumerate() {
                let src = tile.row_start + r;
                if src >= fan_in {
                    break;
                }
                let xv = x.at2(sample, src) / x_abs_max; // in [-1, 1]
                if xv > 0.0 {
                    *vp = xv as f64 * params.v_read;
                    any_pos = true;
                } else if xv < 0.0 {
                    *vn = -xv as f64 * params.v_read;
                    any_neg = true;
                }
            }
            for (v, active, sign) in [(v_pos, any_pos, 1.0f64), (v_neg, any_neg, -1.0)] {
                if active {
                    phase_vs.push(v);
                    phase_of.push((sample, sign));
                }
            }
        }
        let i_pos = xbar_sim::solve_currents_batch(&solver, &pair.pos, &phase_vs)?;
        let i_neg = xbar_sim::solve_currents_batch(&solver, &pair.neg, &phase_vs)?;
        // Per-sample f64 accumulators keep the fold order of the
        // one-solve-at-a-time path: both phases sum in f64, then one f32
        // round-trip per output cell.
        let mut acc = vec![vec![0.0f64; params.cols]; x.rows()];
        for ((&(sample, sign), ip), in_) in phase_of.iter().zip(&i_pos).zip(&i_neg) {
            // Subtract the Gmin baseline both arrays share: with every
            // device at Gmin the differential current is ~0, so the pos
            // and neg array baselines cancel in (i_pos - i_neg).
            for (a, (p, n)) in acc[sample].iter_mut().zip(ip.iter().zip(in_)) {
                *a += sign * (p - n);
            }
        }
        for (sample, row) in acc.iter().enumerate() {
            for (c, &current) in row.iter().enumerate() {
                let dst = tile.col_start + c;
                if dst >= fan_out {
                    break;
                }
                let prev = out.at2(sample, dst);
                out.set2(sample, dst, prev + (current * current_scale) as f32);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_sim::params::CrossbarParams;

    fn rand_matrix(r: usize, c: usize, seed: u64) -> Tensor {
        let mut s = seed | 1;
        Tensor::from_fn(&[r, c], |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 1000.0
        })
    }

    fn ideal_cfg(n: usize) -> MapConfig {
        MapConfig {
            params: CrossbarParams::with_size(n).ideal(),
            ..Default::default()
        }
    }

    #[test]
    fn ideal_circuit_matches_software_matmul() {
        let w = rand_matrix(10, 6, 1);
        let x = rand_matrix(3, 10, 2);
        let cfg = ideal_cfg(8); // forces multi-tile partitioning
        let hw = exact_matmul(&w, &x, &cfg).unwrap();
        let sw = x.matmul(&w).unwrap();
        for (a, b) in hw.as_slice().iter().zip(sw.as_slice()) {
            assert!((a - b).abs() < 2e-3 * sw.abs_max().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn signed_inputs_are_handled_by_two_phases() {
        let w = rand_matrix(4, 4, 3);
        // All-negative inputs exercise the negative phase alone.
        let x = rand_matrix(2, 4, 4).map(|v| -v.abs() - 0.1);
        let cfg = ideal_cfg(4);
        let hw = exact_matmul(&w, &x, &cfg).unwrap();
        let sw = x.matmul(&w).unwrap();
        for (a, b) in hw.as_slice().iter().zip(sw.as_slice()) {
            assert!((a - b).abs() < 2e-3 * sw.abs_max().max(1.0));
        }
    }

    #[test]
    fn non_ideal_circuit_loses_magnitude() {
        let w = rand_matrix(16, 16, 5).map(|v| v.abs()); // positive weights
        let x = Tensor::ones(&[1, 16]);
        let mut cfg = MapConfig {
            params: CrossbarParams::with_size(16),
            ..Default::default()
        };
        cfg.params.sigma_variation = 0.0;
        let hw = exact_matmul(&w, &x, &cfg).unwrap();
        let sw = x.matmul(&w).unwrap();
        for (a, b) in hw.as_slice().iter().zip(sw.as_slice()) {
            assert!(*a < *b, "non-ideal output must be below ideal: {a} vs {b}");
            assert!(*a > 0.7 * b, "loss should be bounded: {a} vs {b}");
        }
    }

    #[test]
    fn folded_model_tracks_exact_inference() {
        // The pipeline's W'-folding should match exact per-input solves to
        // a few percent (model-level version of ablation A6).
        let w = rand_matrix(24, 8, 7);
        let x = rand_matrix(4, 24, 8).map(|v| v.max(0.0)); // ReLU-like inputs
        let mut cfg = MapConfig {
            params: CrossbarParams::with_size(16),
            ..Default::default()
        };
        cfg.params.sigma_variation = 0.0;
        let exact = exact_matmul(&w, &x, &cfg).unwrap();
        // Folded: map a single-linear model and multiply in software.
        use xbar_nn::layers::Linear;
        use xbar_nn::{Layer, Sequential};
        let mut lin = Linear::new(24, 8, 0);
        lin.weight_mut().value = w.transpose();
        lin.bias_mut().value = xbar_tensor::Tensor::zeros(&[8]);
        let model = Sequential::new(vec![Layer::Linear(lin)]);
        let (mut folded, _) = crate::pipeline::map_to_crossbars(&model, &cfg).unwrap();
        let approx = folded.forward(&x, xbar_nn::Mode::Eval).unwrap();
        let scale = exact.abs_max().max(1e-6);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!(
                (a - b).abs() < 0.08 * scale,
                "folded vs exact: {a} vs {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn shape_errors() {
        let w = rand_matrix(4, 4, 9);
        let x = rand_matrix(2, 5, 10);
        assert!(exact_matmul(&w, &x, &ideal_cfg(4)).is_err());
    }
}
