//! BatchNorm recalibration after crossbar mapping — an extension mitigation
//! beyond the paper.
//!
//! The non-ideal weights `W'` systematically shrink activations (every
//! crossbar loses a fraction NF of its dot-product current), so the
//! BatchNorm running statistics estimated during software training no longer
//! match the mapped network's activation distribution. Re-estimating those
//! statistics with a few forward passes of calibration data — no weight
//! updates, so it is as hardware-cheap as the R transformation — recovers a
//! large part of the non-ideality-induced loss. Quantified in the A4
//! ablation of `xbar-bench`.

use xbar_nn::train::DataRef;
use xbar_nn::{Layer, Mode, Sequential};
use xbar_tensor::ShapeError;

/// Re-estimates every BatchNorm layer's running statistics from
/// `calibration` data using cumulative averaging (momentum `1/(k+1)` on
/// batch `k`). Weights are untouched. Returns the number of batches used.
///
/// # Errors
///
/// Returns [`ShapeError`] if the calibration data does not fit the model.
pub fn recalibrate_batchnorm(
    model: &mut Sequential,
    calibration: DataRef<'_>,
    batch_size: usize,
    max_batches: usize,
) -> Result<usize, ShapeError> {
    let n = calibration.len();
    if n == 0 || max_batches == 0 {
        return Ok(0);
    }
    for layer in model.layers_mut() {
        if let Layer::BatchNorm2d(bn) = layer {
            bn.reset_running_stats();
        }
    }
    let indices: Vec<usize> = (0..n).collect();
    let mut used = 0usize;
    for (k, chunk) in indices.chunks(batch_size.max(2)).enumerate() {
        if k >= max_batches || chunk.len() < 2 {
            break;
        }
        let momentum = 1.0 / (k as f32 + 1.0);
        for layer in model.layers_mut() {
            if let Layer::BatchNorm2d(bn) = layer {
                bn.set_momentum(momentum);
            }
        }
        let (images, _) = calibration.gather(chunk);
        model.forward(&images, Mode::Train)?;
        used += 1;
    }
    // Restore the conventional momentum in case the model is trained again.
    for layer in model.layers_mut() {
        if let Layer::BatchNorm2d(bn) = layer {
            bn.set_momentum(0.1);
        }
    }
    Ok(used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{map_to_crossbars, MapConfig};
    use xbar_nn::layers::{BatchNorm2d, Conv2d, Flatten, Linear, ReLU};
    use xbar_nn::train::{evaluate, train, TrainConfig};
    use xbar_sim::params::CrossbarParams;
    use xbar_tensor::Tensor;

    fn toy_data() -> (Tensor, Vec<usize>) {
        let n = 64;
        let mut data = Vec::with_capacity(n * 2 * 16);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let v = if class == 0 { 1.0f32 } else { -1.0 };
            for k in 0..32 {
                let jitter = (((i * 31 + k * 7) % 11) as f32 - 5.0) / 25.0;
                data.push(v + jitter);
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 2, 4, 4]).unwrap(), labels)
    }

    fn toy_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(2, 4, 3, 1, 1, 1)),
            Layer::BatchNorm2d(BatchNorm2d::new(4)),
            Layer::ReLU(ReLU::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(64, 2, 2)),
        ])
    }

    #[test]
    fn recalibration_runs_and_counts_batches() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let used = recalibrate_batchnorm(&mut model, data, 16, 3).unwrap();
        assert_eq!(used, 3);
        assert_eq!(recalibrate_batchnorm(&mut model, data, 16, 0).unwrap(), 0);
    }

    #[test]
    fn recalibration_does_not_change_weights() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let before = model.layers()[0].as_conv().unwrap().weight().value.clone();
        recalibrate_batchnorm(&mut model, data, 16, 4).unwrap();
        let after = model.layers()[0].as_conv().unwrap().weight().value.clone();
        assert_eq!(before, after);
    }

    #[test]
    fn recalibration_recovers_accuracy_on_mapped_model() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        train(&mut model, data, &cfg, None).unwrap();
        let software = evaluate(&mut model, data, 32).unwrap();
        assert!(software > 0.9, "toy task should be learnable: {software}");
        // Map onto strongly non-ideal crossbars.
        let mut params = CrossbarParams::with_size(64);
        params.r_driver *= 4.0;
        params.r_sense *= 4.0;
        params.sigma_variation = 0.0;
        let map_cfg = MapConfig {
            params,
            ..Default::default()
        };
        let (mut mapped, _) = map_to_crossbars(&model, &map_cfg).unwrap();
        let degraded = evaluate(&mut mapped, data, 32).unwrap();
        let mut recal = mapped.clone();
        recalibrate_batchnorm(&mut recal, data, 16, 4).unwrap();
        let recovered = evaluate(&mut recal, data, 32).unwrap();
        assert!(
            recovered >= degraded,
            "recalibration must not hurt: {degraded} -> {recovered}"
        );
    }
}
