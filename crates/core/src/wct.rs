//! Weight-Constrained-Training (WCT), paper Section VI-B.
//!
//! From the trained model's weight distribution a cut-off `W_cut` is chosen
//! (a high quantile of `|W|` across all synaptic layers); weights are
//! transformed as `W = min{|W|, W_cut}·sign(W)` and the model is retrained
//! for a couple of epochs with the clamp (and any pruning masks) enforced
//! after every step. Mapped with a **fixed** conductance scale equal to the
//! *pre-clamp* `max|W|`, the constrained network occupies a greater
//! proportion of low conductance states, which reduces NF (see `DESIGN.md`
//! for why the scale choice matters).

use xbar_nn::train::{train, ClampConstraint, DataRef, TrainConfig, WeightConstraint};
use xbar_nn::Sequential;
use xbar_sim::MappingScale;
use xbar_tensor::stats::abs_quantile;
use xbar_tensor::ShapeError;

/// WCT hyper-parameters.
#[derive(Debug, Clone)]
pub struct WctConfig {
    /// Quantile of `|W|` (across all synaptic weights) used as `W_cut`.
    /// The default 0.97 clips only the outlier tail: aggressive cut-offs
    /// push every weight into the `Gmin` device-variation noise floor and
    /// trade the IR-drop gain back away (measured in the A1 ablation).
    pub quantile: f64,
    /// Constrained retraining schedule; the paper uses 2 epochs to stay
    /// iso-accuracy with the baseline.
    pub train: TrainConfig,
}

impl Default for WctConfig {
    fn default() -> Self {
        let mut train = TrainConfig {
            epochs: 2,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        train.sgd.lr = 0.01;
        Self {
            quantile: 0.97,
            train,
        }
    }
}

/// Outcome of a WCT pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WctOutcome {
    /// The cut-off applied.
    pub w_cut: f32,
    /// `max|W|` over synaptic weights *before* clamping — the fixed
    /// weight→conductance reference scale to map the WCT model with.
    pub pre_clamp_abs_max: f32,
}

impl WctOutcome {
    /// The mapping scale that realises the low-conductance benefit.
    pub fn mapping_scale(&self) -> MappingScale {
        MappingScale::Fixed(self.pre_clamp_abs_max)
    }
}

/// Maximum `|W|` over all synaptic (conv/linear) weights.
pub fn synaptic_abs_max(model: &mut Sequential) -> f32 {
    model
        .params_mut()
        .iter()
        .filter(|p| p.kind.is_synaptic())
        .map(|p| p.value.abs_max())
        .fold(0.0, f32::max)
}

/// Determines `W_cut` as the `quantile` of `|W|` pooled across every
/// synaptic layer, ignoring exact zeros (pruned weights would otherwise drag
/// the quantile down on sparse models).
///
/// # Panics
///
/// Panics if `quantile` is outside `[0, 1]`.
pub fn determine_w_cut(model: &mut Sequential, quantile: f64) -> f32 {
    let mut all: Vec<f32> = Vec::new();
    for p in model.params_mut() {
        if p.kind.is_synaptic() {
            all.extend(p.value.as_slice().iter().copied().filter(|w| *w != 0.0));
        }
    }
    abs_quantile(&all, quantile)
}

/// A constraint stack: applies each inner constraint in order (e.g. pruning
/// masks, then the WCT clamp).
pub struct CombinedConstraint<'a> {
    constraints: Vec<&'a dyn WeightConstraint>,
}

impl<'a> CombinedConstraint<'a> {
    /// Builds a stack from the given constraints.
    pub fn new(constraints: Vec<&'a dyn WeightConstraint>) -> Self {
        Self { constraints }
    }
}

impl WeightConstraint for CombinedConstraint<'_> {
    fn apply(&self, model: &mut Sequential) {
        for c in &self.constraints {
            c.apply(model);
        }
    }
}

/// Applies WCT to a trained model in place: determines `W_cut`, clamps, and
/// retrains under the clamp combined with `extra` (typically the pruning
/// masks). Returns the cut-off and the pre-clamp scale for mapping.
///
/// # Errors
///
/// Returns [`ShapeError`] if training data and model disagree.
pub fn apply_wct(
    model: &mut Sequential,
    data: DataRef<'_>,
    cfg: &WctConfig,
    extra: Option<&dyn WeightConstraint>,
) -> Result<WctOutcome, ShapeError> {
    let pre_clamp_abs_max = synaptic_abs_max(model);
    let w_cut = determine_w_cut(model, cfg.quantile);
    let clamp = ClampConstraint { limit: w_cut };
    let mut stack: Vec<&dyn WeightConstraint> = Vec::new();
    if let Some(extra) = extra {
        stack.push(extra);
    }
    stack.push(&clamp);
    let combined = CombinedConstraint::new(stack);
    // `train` applies the constraint before the first step, which performs
    // the initial W = min{|W|, W_cut}·sign(W) transformation.
    train(model, data, &cfg.train, Some(&combined))?;
    Ok(WctOutcome {
        w_cut,
        pre_clamp_abs_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Flatten, Linear};
    use xbar_nn::Layer;
    use xbar_prune::mask::{LayerMask, MaskSet};
    use xbar_tensor::Tensor;

    fn toy_data() -> (Tensor, Vec<usize>) {
        let n = 32;
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let v = if class == 0 { 1.0 } else { -1.0 };
            data.extend_from_slice(&[v, v * 0.5, -v, v]);
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 1, 2, 2]).unwrap(), labels)
    }

    fn toy_model() -> Sequential {
        Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4, 2, 7)),
        ])
    }

    #[test]
    fn w_cut_is_quantile_of_nonzero_weights() {
        let mut m = toy_model();
        {
            let w = &mut m.layers_mut()[1]
                .as_linear_mut()
                .unwrap()
                .weight_mut()
                .value;
            w.as_mut_slice()
                .copy_from_slice(&[0.0, 0.1, 0.2, 0.3, -0.4, 0.5, 0.6, 0.0]);
        }
        // Non-zero |w| = [.1 .2 .3 .4 .5 .6]; median = 0.35.
        let cut = determine_w_cut(&mut m, 0.5);
        assert!((cut - 0.35).abs() < 1e-6, "cut {cut}");
    }

    #[test]
    fn wct_clamps_and_keeps_masks() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        // Mask out the first output row.
        let mut mask = Tensor::ones(&[2, 4]);
        mask.row_mut(0).fill(0.0);
        let mut set = MaskSet::new();
        set.push(LayerMask {
            layer_index: 1,
            mask,
        });
        set.apply_to(&mut model);
        let cfg = WctConfig::default();
        let outcome = apply_wct(&mut model, data, &cfg, Some(&set)).unwrap();
        let w = &model.layers()[1].as_linear().unwrap().weight().value;
        assert!(w.abs_max() <= outcome.w_cut + 1e-6);
        assert!(w.row(0).iter().all(|&x| x == 0.0), "mask survives WCT");
        assert!(outcome.pre_clamp_abs_max >= outcome.w_cut);
    }

    #[test]
    fn mapping_scale_is_fixed_pre_clamp() {
        let out = WctOutcome {
            w_cut: 0.2,
            pre_clamp_abs_max: 0.7,
        };
        match out.mapping_scale() {
            MappingScale::Fixed(w) => assert_eq!(w, 0.7),
            other => panic!("unexpected scale {other:?}"),
        }
    }

    #[test]
    fn combined_constraint_applies_in_order() {
        let mut model = toy_model();
        let clamp_small = ClampConstraint { limit: 0.1 };
        let clamp_big = ClampConstraint { limit: 10.0 };
        let combined = CombinedConstraint::new(vec![&clamp_big, &clamp_small]);
        combined.apply(&mut model);
        let w = &model.layers()[1].as_linear().unwrap().weight().value;
        assert!(w.abs_max() <= 0.1 + 1e-6);
    }

    #[test]
    fn wct_keeps_toy_accuracy() {
        let (images, labels) = toy_data();
        let data = DataRef::new(&images, &labels).unwrap();
        let mut model = toy_model();
        // Train unconstrained first.
        let mut pre = TrainConfig {
            epochs: 10,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        pre.sgd.weight_decay = 0.0;
        train(&mut model, data, &pre, None).unwrap();
        let base = xbar_nn::train::evaluate(&mut model, data, 8).unwrap();
        let cfg = WctConfig::default();
        apply_wct(&mut model, data, &cfg, None).unwrap();
        let after = xbar_nn::train::evaluate(&mut model, data, 8).unwrap();
        assert!(
            after >= base - 0.1,
            "WCT should be near iso-accuracy: {base} -> {after}"
        );
    }
}
