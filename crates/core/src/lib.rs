//! # xbar-core
//!
//! The paper's hardware evaluation framework (Fig. 2) and its two
//! non-ideality mitigation strategies, built on the workspace substrates:
//!
//! 1. **Unroll** — every conv/linear layer becomes a `fan_in × fan_out`
//!    weight matrix (`xbar_prune::unroll`);
//! 2. **T transformation** — pruning structure is eliminated before mapping
//!    (`xbar_prune::transform`);
//! 3. **R transformation** ([`rearrange`]) — optional crossbar-column
//!    rearrangement: columns ordered by `(μ·σ)^½` so low-conductance columns
//!    share tiles (Section VI-A);
//! 4. **Partition** ([`partition`]) — panels are tiled into crossbar
//!    instances, zero-padded at the edges;
//! 5. **Functional modelling** — each tile is simulated on a non-ideal
//!    differential crossbar pair (`xbar_sim`), producing non-ideal weights
//!    `W'` and NF statistics;
//! 6. **Inverse transformations** — `R⁻¹` and `T⁻¹` reassemble each layer,
//!    and the perturbed weights are written back into a clone of the model
//!    for inference ([`pipeline`]).
//!
//! [`wct`] implements Weight-Constrained-Training (Section VI-B): a cut-off
//! `W_cut` from the trained weight distribution, clamping, and a short
//! constrained retrain; mapped with a *fixed* conductance scale so the
//! clamped network genuinely occupies low conductances (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use xbar_core::pipeline::{map_to_crossbars, MapConfig};
//! use xbar_nn::vgg::{VggConfig, VggVariant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = VggConfig::new(VggVariant::Vgg11, 10)
//!     .width_multiplier(0.125)
//!     .build(0);
//! let cfg = MapConfig::default();
//! let (noisy, report) = map_to_crossbars(&model, &cfg)?;
//! assert_eq!(noisy.len(), model.len());
//! assert!(report.mean_nf() >= 0.0);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod cost;
pub mod drift;
pub mod evaluate;
pub mod exact_inference;
pub mod heatmap;
pub mod mmap;
pub mod partition;
pub mod pipeline;
pub mod rearrange;
pub mod recalibrate;
pub mod repair;
pub mod wct;

pub use artifact::{
    load_artifact_bundle_from_file, load_artifact_bundle_mmap, load_artifact_from_file,
    save_artifact_bundle_to_file, save_artifact_to_file, ArtifactBundle, ArtifactMeta,
    SurrogateMeta,
};
pub use drift::{DriftModel, DriftStatus, ModelDriftState};
pub use mmap::MappedFile;
pub use pipeline::{map_to_crossbars, MapConfig, MapError, MapReport};
pub use rearrange::{ColumnOrder, Rearrangement};
pub use repair::RepairConfig;
