//! Convenience evaluation of models on non-ideal crossbars.

use crate::pipeline::{map_to_crossbars, MapConfig, MapError, MapReport};
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::Sequential;

/// Result of one non-ideal inference evaluation.
#[derive(Debug, Clone)]
pub struct CrossbarEvaluation {
    /// Software (pre-mapping) accuracy.
    pub software_accuracy: f64,
    /// Accuracy of the crossbar-mapped (non-ideal) model.
    pub crossbar_accuracy: f64,
    /// Mapping statistics.
    pub report: MapReport,
}

impl CrossbarEvaluation {
    /// Accuracy lost to non-idealities (positive = degradation).
    pub fn degradation(&self) -> f64 {
        self.software_accuracy - self.crossbar_accuracy
    }
}

/// Maps `model` onto non-ideal crossbars per `cfg` and evaluates both the
/// software model and the non-ideal model on `data`.
///
/// # Errors
///
/// Returns [`MapError`] on mapping failure or shape mismatch during
/// evaluation.
pub fn evaluate_on_crossbars(
    model: &Sequential,
    cfg: &MapConfig,
    data: DataRef<'_>,
    batch_size: usize,
) -> Result<CrossbarEvaluation, MapError> {
    let mut software = model.clone();
    let software_accuracy = evaluate(&mut software, data, batch_size)?;
    let (mut noisy, report) = map_to_crossbars(model, cfg)?;
    let crossbar_accuracy = evaluate(&mut noisy, data, batch_size)?;
    Ok(CrossbarEvaluation {
        software_accuracy,
        crossbar_accuracy,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Flatten, Linear};
    use xbar_nn::train::{train, TrainConfig};
    use xbar_nn::Layer;
    use xbar_sim::params::CrossbarParams;
    use xbar_tensor::Tensor;

    fn toy() -> (Sequential, Tensor, Vec<usize>) {
        let n = 64;
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let v = if class == 0 { 1.0 } else { -1.0 };
            let j = ((i * 13) % 7) as f32 / 20.0;
            data.extend_from_slice(&[v + j, -v, v, v - j]);
            labels.push(class);
        }
        let images = Tensor::from_vec(data, &[n, 1, 2, 2]).unwrap();
        let mut model = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4, 2, 1)),
        ]);
        let mut cfg = TrainConfig {
            epochs: 15,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        cfg.sgd.weight_decay = 0.0;
        let dref = DataRef::new(&images, &labels).unwrap();
        train(&mut model, dref, &cfg, None).unwrap();
        (model, images, labels)
    }

    #[test]
    fn ideal_crossbars_preserve_accuracy() {
        let (model, images, labels) = toy();
        let data = DataRef::new(&images, &labels).unwrap();
        let cfg = MapConfig {
            params: CrossbarParams::with_size(16).ideal(),
            ..Default::default()
        };
        let eval = evaluate_on_crossbars(&model, &cfg, data, 16).unwrap();
        assert!(eval.software_accuracy > 0.9);
        assert!((eval.degradation()).abs() < 1e-9);
    }

    #[test]
    fn non_ideal_crossbars_cannot_gain_much() {
        let (model, images, labels) = toy();
        let data = DataRef::new(&images, &labels).unwrap();
        let cfg = MapConfig {
            params: CrossbarParams::with_size(16),
            ..Default::default()
        };
        let eval = evaluate_on_crossbars(&model, &cfg, data, 16).unwrap();
        // On a trivially separable task mild noise rarely helps; mostly we
        // check the plumbing returns sane numbers.
        assert!(eval.crossbar_accuracy <= 1.0 && eval.crossbar_accuracy >= 0.0);
        assert!(eval.report.crossbar_count() > 0);
    }
}
