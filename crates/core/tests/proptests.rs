//! Property-based tests for fault-tolerant tile mapping.
//!
//! The repair path promises monotonicity by construction: a spare-column
//! remap is only accepted when it reduces the tile's total weight error,
//! and digital correction is applied per cell only where the read-back
//! actually improves. These properties pin that down across random tiles,
//! fault rates, and seeds — repair must never leave a tile *less* accurate
//! than not repairing it.

use proptest::prelude::*;
use xbar_core::repair::{map_tile_with_repair, RepairConfig};
use xbar_sim::faults::FaultModel;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::SolveMethod;
use xbar_sim::MappingScale;
use xbar_tensor::Tensor;

fn weight_tile() -> impl Strategy<Value = Tensor> {
    (3usize..9, 3usize..7).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1.2f32..1.2, rows * cols)
            .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]).expect("consistent"))
    })
}

fn params_with_faults(rate: f64) -> CrossbarParams {
    let mut p = CrossbarParams::with_size(8).ideal();
    p.faults = FaultModel {
        stuck_at_gmin: rate * 0.6,
        stuck_at_gmax: rate * 0.4,
    };
    p
}

/// Per-column absolute weight error of `mapped` vs the ideal `tile`.
fn column_errors(tile: &Tensor, mapped: &Tensor) -> Vec<f64> {
    (0..tile.cols())
        .map(|c| {
            (0..tile.rows())
                .map(|r| f64::from((tile.at2(r, c) - mapped.at2(r, c)).abs()))
                .sum()
        })
        .collect()
}

/// The same physical layout as repaired mapping but with every repair
/// mechanism disabled: spares exist (so the geometry matches) yet no column
/// ever qualifies for one and no correction runs.
fn no_repair_cfg(cfg: &RepairConfig) -> RepairConfig {
    RepairConfig {
        column_threshold: f64::INFINITY,
        digital_correction: false,
        ..*cfg
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Repair never decreases accuracy versus no-repair, at any fault rate
    /// (including zero): the summed column-level weight error of the
    /// repaired tile is bounded by the unrepaired one, and the reported
    /// fault score never rises.
    #[test]
    fn repair_is_never_worse_than_no_repair(
        tile in weight_tile(),
        // 0 covers the fault-free edge; 6% is past the paper's 5% sweep.
        rate in 0.0f64..0.06,
        seed in 0u64..500,
    ) {
        let params = params_with_faults(rate);
        let cfg = RepairConfig {
            column_threshold: 0.01,
            ..RepairConfig::default()
        };
        let plain = map_tile_with_repair(
            &tile, MappingScale::PerTileMax, 1.0, &params,
            SolveMethod::LineRelaxation, seed, &no_repair_cfg(&cfg),
        ).unwrap();
        let repaired = map_tile_with_repair(
            &tile, MappingScale::PerTileMax, 1.0, &params,
            SolveMethod::LineRelaxation, seed, &cfg,
        ).unwrap();

        let e_plain: f64 = column_errors(&tile, &plain.weights).iter().sum();
        let e_rep: f64 = column_errors(&tile, &repaired.weights).iter().sum();
        prop_assert!(
            e_rep <= e_plain + 1e-9,
            "rate {rate}, seed {seed}: repair worsened weight error {e_rep} vs {e_plain}"
        );

        let r = repaired.repair.as_ref().expect("repair verdict present");
        prop_assert!(
            r.fault_score <= r.pre_fault_score + 1e-12,
            "fault score rose from {} to {}", r.pre_fault_score, r.fault_score
        );
        // With no faults, repair must be a no-op.
        if rate == 0.0 {
            prop_assert!(r.remapped.is_empty());
            prop_assert_eq!(r.corrected_cells, 0);
            prop_assert_eq!(r.fault_score, 0.0);
        }
    }

    /// The repaired tile keeps the logical shape the pipeline reassembles:
    /// repair works in physical (padded) space but must hand back exactly
    /// `rows × active` weights.
    #[test]
    fn repair_preserves_logical_tile_shape(
        tile in weight_tile(),
        rate in 0.0f64..0.06,
        seed in 0u64..500,
    ) {
        let params = params_with_faults(rate);
        let mapped = map_tile_with_repair(
            &tile, MappingScale::PerTileMax, 1.0, &params,
            SolveMethod::LineRelaxation, seed, &RepairConfig::default(),
        ).unwrap();
        prop_assert_eq!(mapped.weights.shape(), tile.shape());
    }
}
