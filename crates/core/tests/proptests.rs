//! Property-based tests for fault-tolerant tile mapping and the solve
//! cache.
//!
//! The repair path promises monotonicity by construction: a spare-column
//! remap is only accepted when it reduces the tile's total weight error,
//! and digital correction is applied per cell only where the read-back
//! actually improves. These properties pin that down across random tiles,
//! fault rates, and seeds — repair must never leave a tile *less* accurate
//! than not repairing it.
//!
//! The solve cache promises invisibility: memoising tile circuit solves by
//! content hash may only skip work, never change a single bit of the mapped
//! weights — across variation seeds, circuit parameters and cache modes.

use proptest::prelude::*;
use std::sync::Mutex;
use xbar_core::pipeline::{map_to_crossbars, MapConfig};
use xbar_core::repair::{map_tile_with_repair, RepairConfig};
use xbar_sim::faults::FaultModel;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::SolveMethod;
use xbar_sim::{simulate_tile, CacheMode, MappingScale};
use xbar_tensor::Tensor;

/// Serialises tests that flip the process-global solve-cache mode.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn weight_tile() -> impl Strategy<Value = Tensor> {
    (3usize..9, 3usize..7).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1.2f32..1.2, rows * cols)
            .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]).expect("consistent"))
    })
}

fn params_with_faults(rate: f64) -> CrossbarParams {
    let mut p = CrossbarParams::with_size(8).ideal();
    p.faults = FaultModel {
        stuck_at_gmin: rate * 0.6,
        stuck_at_gmax: rate * 0.4,
    };
    p
}

/// Per-column absolute weight error of `mapped` vs the ideal `tile`.
fn column_errors(tile: &Tensor, mapped: &Tensor) -> Vec<f64> {
    (0..tile.cols())
        .map(|c| {
            (0..tile.rows())
                .map(|r| f64::from((tile.at2(r, c) - mapped.at2(r, c)).abs()))
                .sum()
        })
        .collect()
}

/// The same physical layout as repaired mapping but with every repair
/// mechanism disabled: spares exist (so the geometry matches) yet no column
/// ever qualifies for one and no correction runs.
fn no_repair_cfg(cfg: &RepairConfig) -> RepairConfig {
    RepairConfig {
        column_threshold: f64::INFINITY,
        digital_correction: false,
        ..*cfg
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Repair never decreases accuracy versus no-repair, at any fault rate
    /// (including zero): the summed column-level weight error of the
    /// repaired tile is bounded by the unrepaired one, and the reported
    /// fault score never rises.
    #[test]
    fn repair_is_never_worse_than_no_repair(
        tile in weight_tile(),
        // 0 covers the fault-free edge; 6% is past the paper's 5% sweep.
        rate in 0.0f64..0.06,
        seed in 0u64..500,
    ) {
        let params = params_with_faults(rate);
        let cfg = RepairConfig {
            column_threshold: 0.01,
            ..RepairConfig::default()
        };
        let plain = map_tile_with_repair(
            &tile, MappingScale::PerTileMax, 1.0, &params,
            SolveMethod::LineRelaxation, seed, &no_repair_cfg(&cfg),
        ).unwrap();
        let repaired = map_tile_with_repair(
            &tile, MappingScale::PerTileMax, 1.0, &params,
            SolveMethod::LineRelaxation, seed, &cfg,
        ).unwrap();

        let e_plain: f64 = column_errors(&tile, &plain.weights).iter().sum();
        let e_rep: f64 = column_errors(&tile, &repaired.weights).iter().sum();
        prop_assert!(
            e_rep <= e_plain + 1e-9,
            "rate {rate}, seed {seed}: repair worsened weight error {e_rep} vs {e_plain}"
        );

        let r = repaired.repair.as_ref().expect("repair verdict present");
        prop_assert!(
            r.fault_score <= r.pre_fault_score + 1e-12,
            "fault score rose from {} to {}", r.pre_fault_score, r.fault_score
        );
        // With no faults, repair must be a no-op.
        if rate == 0.0 {
            prop_assert!(r.remapped.is_empty());
            prop_assert_eq!(r.corrected_cells, 0);
            prop_assert_eq!(r.fault_score, 0.0);
        }
    }

    /// The repaired tile keeps the logical shape the pipeline reassembles:
    /// repair works in physical (padded) space but must hand back exactly
    /// `rows × active` weights.
    #[test]
    fn repair_preserves_logical_tile_shape(
        tile in weight_tile(),
        rate in 0.0f64..0.06,
        seed in 0u64..500,
    ) {
        let params = params_with_faults(rate);
        let mapped = map_tile_with_repair(
            &tile, MappingScale::PerTileMax, 1.0, &params,
            SolveMethod::LineRelaxation, seed, &RepairConfig::default(),
        ).unwrap();
        prop_assert_eq!(mapped.weights.shape(), tile.shape());
    }

    /// The solve cache must be invisible: simulating random tiles under
    /// differing variation seeds and circuit parameters, with the cache
    /// warm from *other* (seed, params) combinations, is bit-identical to
    /// simulating with the cache off. A mis-keyed cache (one that ignored
    /// the conductance content, the parasitics, or the voltage vector)
    /// would hand a tile some other tile's solution and fail this within a
    /// case or two.
    #[test]
    fn solve_cache_is_keyed_correctly_across_seeds_and_params(
        tile in weight_tile(),
        seed_a in 0u64..200,
        seed_b in 200u64..400,
        wire_scale in 1u32..4,
    ) {
        let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut params_a = CrossbarParams::with_size(8);
        params_a.sigma_variation = 0.05;
        let mut params_b = params_a;
        params_b.r_wire_row *= f64::from(wire_scale);
        let combos = [
            (seed_a, params_a), (seed_b, params_a),
            (seed_a, params_b), (seed_b, params_b),
        ];
        let run_all = || -> Vec<Tensor> {
            combos
                .iter()
                .map(|(seed, params)| {
                    simulate_tile(
                        &tile, MappingScale::PerTileMax, 1.0, params,
                        SolveMethod::LineRelaxation, *seed,
                    )
                    .unwrap()
                    .weights
                })
                .collect()
        };
        xbar_sim::set_solve_cache_mode(CacheMode::Off);
        let cold = run_all();
        // Populate the cache with every combination, then replay: each
        // combination must hit its own entry, not a neighbour's.
        xbar_sim::set_solve_cache_mode(CacheMode::Full);
        xbar_sim::clear_solve_cache();
        let populate = run_all();
        let replay = run_all();
        xbar_sim::set_solve_cache_mode(CacheMode::Off);
        for (k, ((c, p), r)) in cold.iter().zip(&populate).zip(&replay).enumerate() {
            prop_assert_eq!(c, p, "combo {} differed while populating", k);
            prop_assert_eq!(c, r, "combo {} differed on cache replay", k);
        }
        // Different seeds genuinely produce different devices — the cache
        // had real discrimination work to do above.
        prop_assert!(cold[0] != cold[1], "different seeds must differ");
    }
}

/// Builds a small two-layer model with deterministic pseudo-random weights.
fn tiny_model(seed: u64) -> xbar_nn::Sequential {
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::Layer;
    xbar_nn::Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, seed)),
        Layer::ReLU(ReLU::new()),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(8 * 4 * 4, 4, seed.wrapping_add(1))),
    ])
}

fn layer_weights(model: &xbar_nn::Sequential) -> Vec<&Tensor> {
    let mut out = Vec::new();
    for layer in model.layers() {
        if let Some(conv) = layer.as_conv() {
            out.push(&conv.weight().value);
        }
        if let Some(lin) = layer.as_linear() {
            out.push(&lin.weight().value);
        }
    }
    out
}

/// The acceptance-criterion equivalence test: a full model mapping run with
/// the solve cache in any mode — cold (`Off`), replayed (`Full`), or
/// warm-started (`Seed`) — produces bit-identical mapped weights.
#[test]
fn mapping_is_bit_identical_across_cache_modes() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let model = tiny_model(11);
    let mut params = CrossbarParams::with_size(16);
    params.sigma_variation = 0.05;
    let cfg = MapConfig {
        params,
        seed: 3,
        ..Default::default()
    };
    let run = || map_to_crossbars(&model, &cfg).unwrap();

    xbar_sim::set_solve_cache_mode(CacheMode::Off);
    let (cold, cold_report) = run();

    xbar_sim::set_solve_cache_mode(CacheMode::Full);
    xbar_sim::clear_solve_cache();
    let (populate, _) = run();
    let (full_hit, full_report) = run();

    xbar_sim::set_solve_cache_mode(CacheMode::Seed);
    let (seed_hit, seed_report) = run();
    xbar_sim::set_solve_cache_mode(CacheMode::Off);

    let reference = layer_weights(&cold);
    for (name, mapped) in [
        ("populate", &populate),
        ("full-hit", &full_hit),
        ("seed-hit", &seed_hit),
    ] {
        let weights = layer_weights(mapped);
        assert_eq!(weights.len(), reference.len());
        for (i, (a, b)) in reference.iter().zip(&weights).enumerate() {
            assert_eq!(a, b, "{name}: layer weight {i} not bit-identical");
        }
    }
    // Full replays the stored stats; Seed honestly reports ~1 verifying
    // sweep per array and must therefore be cheaper than cold.
    assert_eq!(
        full_report.solver_iterations(),
        cold_report.solver_iterations()
    );
    assert!(
        seed_report.solver_iterations() < cold_report.solver_iterations(),
        "warm-started mapping must do less solver work: {} vs {}",
        seed_report.solver_iterations(),
        cold_report.solver_iterations()
    );
}
