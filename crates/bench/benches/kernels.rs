//! Criterion benchmarks of the computational kernels underlying the
//! reproduction: matmul, convolution lowering, the linear solvers, and the
//! per-tile crossbar simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_linalg::dense::LuDecomposition;
use xbar_linalg::iterative::{conjugate_gradient, sor, IterOptions};
use xbar_sim::conductance::ConductanceMatrix;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::{NonIdealSolver, SolveMethod};
use xbar_sim::tile::simulate_tile;
use xbar_sim::MappingScale;
use xbar_tensor::conv::{im2col, ConvGeom};
use xbar_tensor::Tensor;

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut s = seed | 1;
    Tensor::from_fn(shape, |_| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s % 2000) as f32 - 1000.0) / 1000.0
    })
}

fn rand_conductances(n: usize, params: &CrossbarParams, seed: u64) -> ConductanceMatrix {
    let mut g = ConductanceMatrix::filled(n, n, 0.0);
    let mut s = seed | 1;
    for i in 0..n {
        for j in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let f = (s % 1000) as f64 / 1000.0;
            g.set(i, j, params.g_min() + f * (params.g_max() - params.g_min()));
        }
    }
    g
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = rand_tensor(&[n, n], 1);
        let b = rand_tensor(&[n, n], 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).expect("shapes agree"));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = ConvGeom {
        in_c: 64,
        h: 16,
        w: 16,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let img = rand_tensor(&[64, 16, 16], 3);
    c.bench_function("im2col_64c_16x16_k3", |b| {
        b.iter(|| im2col(&img, &geom).expect("geometry valid"));
    });
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_solve");
    group.sample_size(20);
    for n in [16usize, 32, 64] {
        let mut params = CrossbarParams::with_size(n);
        params.sigma_variation = 0.0;
        let g = rand_conductances(n, &params, 7);
        let v = vec![params.v_read; n];
        group.bench_with_input(BenchmarkId::new("line_relaxation", n), &n, |b, _| {
            let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
            b.iter(|| solver.effective_conductances(&g, &v).expect("solves"));
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("dense_exact", n), &n, |b, _| {
                let solver = NonIdealSolver::new(params, SolveMethod::DenseExact);
                b.iter(|| solver.effective_conductances(&g, &v).expect("solves"));
            });
        }
    }
    group.finish();
}

fn bench_sparse_iterative(c: &mut Criterion) {
    // Generic sparse solvers on a crossbar-like SPD system.
    use xbar_linalg::sparse::CooBuilder;
    let n = 512usize;
    let mut b = CooBuilder::new(n);
    let mut s = 5u64;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 1000) as f64 / 1000.0
    };
    for i in 0..n {
        for d in 1..=3usize {
            let j = (i + d * 11) % n;
            if i < j {
                b.stamp_conductance(Some(i), Some(j), 0.1 + rnd());
            }
        }
        b.stamp_conductance(Some(i), None, 0.5 + rnd());
    }
    let m = b.build();
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
    let mut group = c.benchmark_group("sparse_512");
    group.sample_size(20);
    group.bench_function("sor", |bch| {
        bch.iter(|| sor(&m, &rhs, None, &IterOptions::default()).expect("converges"));
    });
    group.bench_function("cg", |bch| {
        bch.iter(|| conjugate_gradient(&m, &rhs, &IterOptions::default()).expect("converges"));
    });
    group.bench_function("lu_dense", |bch| {
        let dense = m.to_dense();
        bch.iter(|| {
            LuDecomposition::new(&dense)
                .expect("nonsingular")
                .solve(&rhs)
                .expect("solves")
        });
    });
    group.finish();
}

fn bench_tile_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_sim");
    group.sample_size(20);
    for n in [16usize, 32, 64] {
        let params = CrossbarParams::with_size(n);
        let tile = rand_tensor(&[n, n], 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                simulate_tile(
                    &tile,
                    MappingScale::PerTileMax,
                    1.0,
                    &params,
                    SolveMethod::LineRelaxation,
                    0,
                )
                .expect("simulates")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_im2col,
    bench_solvers,
    bench_sparse_iterative,
    bench_tile_simulation
);
criterion_main!(benches);
