//! Criterion benchmarks of the per-experiment pipeline stages — one bench
//! per table/figure artifact, exercising the exact code path the experiment
//! binaries use (at smoke scale, so the benches finish in seconds). The
//! numeric regeneration of each artifact lives in the `table1`, `fig3`,
//! `fig4`, `heatmaps` and `ablation` binaries; these benches track the cost
//! of each stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_bench::runner::map_config;
use xbar_bench::{DatasetKind, ExperimentScale, Scenario};
use xbar_core::heatmap::Heatmap;
use xbar_core::pipeline::map_to_crossbars;
use xbar_core::rearrange::{ColumnOrder, Rearrangement};
use xbar_nn::vgg::VggVariant;
use xbar_prune::compression::compression_rate;
use xbar_prune::transform::transform;
use xbar_prune::unroll::unrolled_matrices;
use xbar_prune::PruneMethod;

fn smoke_model() -> xbar_bench::TrainedModel {
    let sc = Scenario::new(
        VggVariant::Vgg11,
        DatasetKind::Cifar10Like,
        PruneMethod::ChannelFilter,
        ExperimentScale::smoke(),
    );
    let data = sc.dataset();
    sc.train_model(&data)
}

/// Table I: the crossbar-compression-rate computation.
fn bench_table1_compression(c: &mut Criterion) {
    let tm = smoke_model();
    c.bench_function("table1_compression_rate_32x32", |b| {
        b.iter(|| compression_rate(&tm.model, PruneMethod::ChannelFilter, 32, 32));
    });
}

/// Fig 3(a-c): one full non-ideal mapping pass per crossbar size.
fn bench_fig3_mapping(c: &mut Criterion) {
    let tm = smoke_model();
    let mut group = c.benchmark_group("fig3_map_model");
    group.sample_size(10);
    for size in [16usize, 32, 64] {
        let cfg = map_config(&tm, size, 1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| map_to_crossbars(&tm.model, &cfg).expect("maps"));
        });
    }
    group.finish();
}

/// Fig 3(d): NF extraction is part of mapping; this isolates the T
/// transformation over all layers.
fn bench_fig3d_transform(c: &mut Criterion) {
    let tm = smoke_model();
    let unrolled = unrolled_matrices(&tm.model);
    c.bench_function("fig3d_transform_all_layers", |b| {
        b.iter(|| {
            unrolled
                .iter()
                .map(|ul| {
                    transform(&ul.matrix, PruneMethod::ChannelFilter, 32, 32).mapped_elements()
                })
                .sum::<usize>()
        });
    });
}

/// Fig 3(f): heatmap extraction for the weight-matrix visualisation.
fn bench_fig3f_heatmap(c: &mut Criterion) {
    let tm = smoke_model();
    let unrolled = unrolled_matrices(&tm.model);
    let panel = transform(&unrolled[2].matrix, PruneMethod::ChannelFilter, 32, 32)
        .panels
        .first()
        .expect("C/F yields one panel")
        .matrix
        .clone();
    c.bench_function("fig3f_heatmap_128", |b| {
        b.iter(|| Heatmap::from_matrix(&panel, 128, 128).to_csv().len());
    });
}

/// Fig 4(a-d): the R transformation (compute + apply + invert) on a panel.
fn bench_fig4_rearrange(c: &mut Criterion) {
    let tm = smoke_model();
    let unrolled = unrolled_matrices(&tm.model);
    let panel = transform(&unrolled[4].matrix, PruneMethod::ChannelFilter, 32, 32)
        .panels
        .first()
        .expect("C/F yields one panel")
        .matrix
        .clone();
    c.bench_function("fig4_rearrange_round_trip", |b| {
        b.iter(|| {
            let r = Rearrangement::compute(&panel, ColumnOrder::CenterOut, 32);
            r.invert(&r.apply(&panel))
        });
    });
}

/// Fig 4(e-f): the WCT cut-off determination over the whole model.
fn bench_fig4_wct_cut(c: &mut Criterion) {
    let tm = smoke_model();
    c.bench_function("fig4_wct_determine_cut", |b| {
        b.iter_batched(
            || tm.model.clone(),
            |mut m| xbar_core::wct::determine_w_cut(&mut m, 0.97),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_table1_compression,
    bench_fig3_mapping,
    bench_fig3d_transform,
    bench_fig3f_heatmap,
    bench_fig4_rearrange,
    bench_fig4_wct_cut
);
criterion_main!(benches);
